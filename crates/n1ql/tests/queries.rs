//! End-to-end N1QL tests: parse → plan → execute against a MemoryDatastore.

use cbs_index::IndexDef;
use cbs_json::Value;
use cbs_n1ql::{query, Datastore, MemoryDatastore, QueryOptions};

fn ds() -> MemoryDatastore {
    let ds = MemoryDatastore::new();
    ds.create_keyspace("profiles");
    ds.create_keyspace("orders");
    let profiles = [
        (
            "u1",
            r#"{"name":"Alice","age":30,"city":"SF","tags":["admin","beta"],"order_ids":["o1","o2"]}"#,
        ),
        ("u2", r#"{"name":"Bob","age":25,"city":"NY","tags":["beta"],"order_ids":["o3"]}"#),
        ("u3", r#"{"name":"Carol","age":35,"city":"SF","tags":[],"order_ids":[]}"#),
        ("u4", r#"{"name":"Dan","age":19,"city":"LA","tags":["new"],"order_ids":["o4"]}"#),
        ("u5", r#"{"name":"Eve","age":42,"city":"SF"}"#),
    ];
    ds.load("profiles", profiles.iter().map(|(k, v)| (k.to_string(), cbs_json::parse(v).unwrap())));
    let orders = [
        ("o1", r#"{"total":100,"item":"keyboard"}"#),
        ("o2", r#"{"total":250,"item":"monitor"}"#),
        ("o3", r#"{"total":50,"item":"mouse"}"#),
        ("o4", r#"{"total":75,"item":"hub"}"#),
    ];
    ds.load("orders", orders.iter().map(|(k, v)| (k.to_string(), cbs_json::parse(v).unwrap())));
    ds.create_index(IndexDef::primary("#primary", "profiles")).unwrap();
    ds.create_index(IndexDef::primary("#primary_o", "orders")).unwrap();
    ds.create_index(IndexDef::simple("age_idx", "profiles", "age")).unwrap();
    ds
}

fn run(ds: &MemoryDatastore, q: &str) -> Vec<Value> {
    query(ds, q, &QueryOptions::default()).unwrap_or_else(|e| panic!("{q}: {e}")).rows
}

fn names(rows: &[Value]) -> Vec<String> {
    rows.iter()
        .map(|r| r.get_field("name").and_then(Value::as_str).unwrap_or("?").to_string())
        .collect()
}

#[test]
fn use_keys_single_and_multi() {
    let ds = ds();
    let rows = run(&ds, "SELECT name FROM profiles USE KEYS 'u1'");
    assert_eq!(names(&rows), ["Alice"]);
    let rows = run(&ds, r#"SELECT name FROM profiles USE KEYS ["u1","u3","missing"]"#);
    assert_eq!(names(&rows), ["Alice", "Carol"]);
}

#[test]
fn where_filter_and_order() {
    let ds = ds();
    let rows = run(&ds, "SELECT name, age FROM profiles WHERE age >= 30 ORDER BY age DESC");
    assert_eq!(names(&rows), ["Eve", "Carol", "Alice"]);
    assert_eq!(rows[0].get_field("age"), Some(&Value::int(42)));
}

#[test]
fn index_scan_used_and_correct() {
    let ds = ds();
    // EXPLAIN confirms the planner picks the age index.
    let plan = run(&ds, "EXPLAIN SELECT name FROM profiles WHERE age > 24 AND age < 31");
    let text = plan[0].to_json_string();
    assert!(text.contains("IndexScan"), "{text}");
    assert!(text.contains("age_idx"), "{text}");
    // Results match a primary-scan evaluation of the same predicate.
    let via_index = run(&ds, "SELECT name FROM profiles WHERE age > 24 AND age < 31 ORDER BY name");
    let via_scan =
        run(&ds, "SELECT name FROM profiles WHERE age+0 > 24 AND age+0 < 31 ORDER BY name");
    assert_eq!(via_index, via_scan);
    assert_eq!(names(&via_index), ["Alice", "Bob"]);
}

#[test]
fn covering_index_no_fetch() {
    let ds = ds();
    let plan = run(&ds, "EXPLAIN SELECT age FROM profiles WHERE age >= 30");
    let text = plan[0].to_json_string();
    assert!(text.contains("\"covering\":true"), "{text}");
    assert!(!text.contains("Fetch"), "covering scan needs no Fetch: {text}");
    let rows = run(&ds, "SELECT age FROM profiles WHERE age >= 30 ORDER BY age");
    let ages: Vec<i64> =
        rows.iter().map(|r| r.get_field("age").unwrap().as_i64().unwrap()).collect();
    assert_eq!(ages, [30, 35, 42]);
}

#[test]
fn select_star_shape() {
    let ds = ds();
    let rows = run(&ds, "SELECT * FROM profiles USE KEYS 'u1'");
    // N1QL wraps each document under its keyspace alias.
    let doc = rows[0].get_field("profiles").expect("alias-wrapped");
    assert_eq!(doc.get_field("name"), Some(&Value::from("Alice")));
    // alias.* unwraps.
    let rows = run(&ds, "SELECT p.* FROM profiles p USE KEYS 'u1'");
    assert_eq!(rows[0].get_field("name"), Some(&Value::from("Alice")));
}

#[test]
fn meta_id_projection() {
    let ds = ds();
    let rows = run(&ds, "SELECT META().id AS id FROM profiles WHERE age > 40");
    assert_eq!(rows[0].get_field("id"), Some(&Value::from("u5")));
}

#[test]
fn key_join_inner_and_left() {
    let ds = ds();
    // Each profile joins each of its order ids (ON KEYS array).
    let rows = run(
        &ds,
        "SELECT p.name, o.total FROM profiles p JOIN orders o ON KEYS p.order_ids \
         WHERE p.city = 'SF' ORDER BY o.total",
    );
    // Alice: o1(100), o2(250); Carol: none; Eve: no order_ids.
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].get_field("total"), Some(&Value::int(100)));
    // LEFT OUTER keeps unmatched profiles.
    let rows = run(
        &ds,
        "SELECT p.name, o.total FROM profiles p LEFT OUTER JOIN orders o ON KEYS p.order_ids \
         WHERE p.city = 'SF' ORDER BY p.name",
    );
    assert_eq!(rows.len(), 4, "Alice×2 + Carol + Eve");
    let carol = rows.iter().find(|r| r.get_field("name") == Some(&Value::from("Carol"))).unwrap();
    assert_eq!(carol.get_field("total"), None, "no order: total MISSING");
}

#[test]
fn nest_collects_inner_docs() {
    let ds = ds();
    let rows = run(
        &ds,
        "SELECT p.name, orders_nested FROM profiles p \
         NEST orders orders_nested ON KEYS p.order_ids \
         WHERE p.name = 'Alice'",
    );
    assert_eq!(rows.len(), 1);
    let nested = rows[0].get_field("orders_nested").unwrap().as_array().unwrap();
    assert_eq!(nested.len(), 2, "both of Alice's orders nested into one array");
}

#[test]
fn unnest_flattens() {
    let ds = ds();
    // The paper's §3.2.3 UNNEST example shape.
    let rows =
        run(&ds, "SELECT DISTINCT tag FROM profiles UNNEST profiles.tags AS tag ORDER BY tag");
    let tags: Vec<&str> =
        rows.iter().map(|r| r.get_field("tag").unwrap().as_str().unwrap()).collect();
    assert_eq!(tags, ["admin", "beta", "new"]);
}

#[test]
fn group_by_aggregates() {
    let ds = ds();
    let rows = run(
        &ds,
        "SELECT city, COUNT(*) AS n, AVG(age) AS avg_age, MIN(age) AS lo, MAX(age) AS hi \
         FROM profiles GROUP BY city ORDER BY city",
    );
    assert_eq!(rows.len(), 3); // LA, NY, SF
    let sf = &rows[2];
    assert_eq!(sf.get_field("city"), Some(&Value::from("SF")));
    assert_eq!(sf.get_field("n"), Some(&Value::int(3)));
    assert_eq!(sf.get_field("lo"), Some(&Value::int(30)));
    assert_eq!(sf.get_field("hi"), Some(&Value::int(42)));
}

#[test]
fn having_filters_groups() {
    let ds = ds();
    let rows =
        run(&ds, "SELECT city, COUNT(*) AS n FROM profiles GROUP BY city HAVING COUNT(*) > 1");
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].get_field("city"), Some(&Value::from("SF")));
}

#[test]
fn global_aggregate_without_group_by() {
    let ds = ds();
    let rows = run(&ds, "SELECT COUNT(*) AS total, SUM(age) AS sum_age FROM profiles");
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].get_field("total"), Some(&Value::int(5)));
    assert_eq!(rows[0].get_field("sum_age"), Some(&Value::int(151)));
    // Empty input still yields one row with COUNT 0.
    let rows = run(&ds, "SELECT COUNT(*) AS n FROM profiles WHERE age > 1000");
    assert_eq!(rows[0].get_field("n"), Some(&Value::int(0)));
}

#[test]
fn count_distinct() {
    let ds = ds();
    let rows = run(&ds, "SELECT COUNT(DISTINCT city) AS cities FROM profiles");
    assert_eq!(rows[0].get_field("cities"), Some(&Value::int(3)));
}

#[test]
fn limit_offset_pagination() {
    let ds = ds();
    let all = run(&ds, "SELECT name FROM profiles ORDER BY name");
    let page2 = run(&ds, "SELECT name FROM profiles ORDER BY name LIMIT 2 OFFSET 2");
    assert_eq!(names(&page2), names(&all)[2..4].to_vec());
}

#[test]
fn parameters_positional_and_named() {
    let ds = ds();
    let mut opts = QueryOptions::with_args(vec![Value::int(28)]);
    opts.named_params.insert("city".to_string(), Value::from("SF"));
    let rows = query(
        &ds,
        "SELECT name FROM profiles WHERE age > $1 AND city = $city ORDER BY name",
        &opts,
    )
    .unwrap()
    .rows;
    assert_eq!(names(&rows), ["Alice", "Carol", "Eve"]);
}

#[test]
fn ycsb_workload_e_query() {
    // The appendix's exact workload E query (§10.1.2).
    let ds = ds();
    let opts = QueryOptions::with_args(vec![Value::from("u2"), Value::int(3)]);
    let res =
        query(&ds, "SELECT meta().id AS id FROM profiles WHERE meta().id >= $1 LIMIT $2", &opts)
            .unwrap();
    let ids: Vec<&str> =
        res.rows.iter().map(|r| r.get_field("id").unwrap().as_str().unwrap()).collect();
    assert_eq!(ids, ["u2", "u3", "u4"]);
    // Covered by the primary index: zero document fetches.
    assert_eq!(res.metrics.fetches, 0);
}

#[test]
fn dml_roundtrip() {
    let ds = ds();
    // INSERT.
    let res = query(
        &ds,
        r#"INSERT INTO profiles (KEY, VALUE) VALUES ("u9", {"name":"Zoe","age":28,"city":"NY"})"#,
        &QueryOptions::default(),
    )
    .unwrap();
    assert_eq!(res.metrics.mutation_count, 1);
    // Duplicate INSERT fails; UPSERT succeeds.
    assert!(query(
        &ds,
        r#"INSERT INTO profiles (KEY, VALUE) VALUES ("u9", {})"#,
        &QueryOptions::default()
    )
    .is_err());
    query(
        &ds,
        r#"UPSERT INTO profiles (KEY, VALUE) VALUES ("u9", {"name":"Zoe","age":29,"city":"NY"})"#,
        &QueryOptions::default(),
    )
    .unwrap();
    // UPDATE with sub-document SET (§3.2.2).
    let res = query(
        &ds,
        "UPDATE profiles USE KEYS 'u9' SET age = 30, extra.verified = true UNSET city",
        &QueryOptions::default(),
    )
    .unwrap();
    assert_eq!(res.metrics.mutation_count, 1);
    let rows = run(&ds, "SELECT p.* FROM profiles p USE KEYS 'u9'");
    assert_eq!(rows[0].get_field("age"), Some(&Value::int(30)));
    assert_eq!(rows[0].get_field("extra").unwrap().get_field("verified"), Some(&Value::Bool(true)));
    assert_eq!(rows[0].get_field("city"), None);
    // UPDATE ... WHERE over a scan.
    let res =
        query(&ds, "UPDATE profiles SET senior = true WHERE age >= 35", &QueryOptions::default())
            .unwrap();
    assert_eq!(res.metrics.mutation_count, 2); // Carol, Eve
                                               // DELETE.
    let res = query(&ds, "DELETE FROM profiles WHERE age < 20", &QueryOptions::default()).unwrap();
    assert_eq!(res.metrics.mutation_count, 1); // Dan
    assert!(run(&ds, "SELECT name FROM profiles WHERE name = 'Dan'").is_empty());
}

#[test]
fn ddl_via_n1ql() {
    let ds = ds();
    // The paper's §3.3.4 selective index.
    query(
        &ds,
        "CREATE INDEX over21 ON profiles(age) WHERE age > 21 USING GSI",
        &QueryOptions::default(),
    )
    .unwrap();
    assert!(ds.list_indexes("profiles").iter().any(|d| d.name == "over21"));
    // Deferred build flow (§3.3.3).
    query(
        &ds,
        r#"CREATE INDEX by_city ON profiles(city) WITH {"defer_build": true}"#,
        &QueryOptions::default(),
    )
    .unwrap();
    assert!(
        !ds.list_indexes("profiles").iter().any(|d| d.name == "by_city"),
        "deferred: not online"
    );
    query(&ds, "BUILD INDEX ON profiles(by_city)", &QueryOptions::default()).unwrap();
    assert!(ds.list_indexes("profiles").iter().any(|d| d.name == "by_city"));
    query(&ds, "DROP INDEX profiles.by_city", &QueryOptions::default()).unwrap();
    assert!(!ds.list_indexes("profiles").iter().any(|d| d.name == "by_city"));
}

#[test]
fn array_predicates() {
    let ds = ds();
    let rows = run(
        &ds,
        "SELECT name FROM profiles WHERE ANY t IN tags SATISFIES t = 'beta' END ORDER BY name",
    );
    assert_eq!(names(&rows), ["Alice", "Bob"]);
}

#[test]
fn expression_only_select() {
    let ds = MemoryDatastore::new();
    let rows = run(&ds, "SELECT 1 + 2 * 3 AS x, 'hi' || ' there' AS s");
    assert_eq!(rows[0].get_field("x"), Some(&Value::int(7)));
    assert_eq!(rows[0].get_field("s"), Some(&Value::from("hi there")));
}

#[test]
fn missing_fields_omitted_from_projection() {
    let ds = ds();
    // u5 (Eve) has no tags field.
    let rows = run(&ds, "SELECT name, tags FROM profiles WHERE age > 40");
    assert_eq!(rows[0].get_field("name"), Some(&Value::from("Eve")));
    assert_eq!(rows[0].get_field("tags"), None);
}

#[test]
fn distinct_rows() {
    let ds = ds();
    let rows = run(&ds, "SELECT DISTINCT city FROM profiles ORDER BY city");
    assert_eq!(rows.len(), 3);
}

#[test]
fn explain_shows_pipeline() {
    let ds = ds();
    // A selective predicate (2 of 5 rows), so the cost model keeps the
    // index scan; `age > 20` would select ~everything and the optimizer
    // rightly prefers a PrimaryScan for that.
    let plan = run(
        &ds,
        "EXPLAIN SELECT city, COUNT(*) FROM profiles WHERE age > 34 GROUP BY city ORDER BY city LIMIT 5",
    );
    let text = plan[0].to_json_string();
    for op in
        ["IndexScan", "Filter", "Group", "Sort", "Limit", "FinalProject", "cost", "cardinality"]
    {
        assert!(text.contains(op), "missing {op} in {text}");
    }
}

#[test]
fn errors_are_informative() {
    let ds = ds();
    assert!(query(&ds, "SELECT * FROM nope", &QueryOptions::default()).is_err());
    assert!(query(&ds, "SELECT * FROM", &QueryOptions::default()).is_err());
    // No index: keyspace without primary index rejects scans.
    ds.create_keyspace("bare");
    let err = query(&ds, "SELECT * FROM bare", &QueryOptions::default()).unwrap_err();
    assert!(err.to_string().contains("no index available"));
    // But USE KEYS works without any index (§5.1.1).
    assert!(query(&ds, "SELECT * FROM bare USE KEYS 'x'", &QueryOptions::default()).is_ok());
}

#[test]
fn case_and_string_functions_in_queries() {
    let ds = ds();
    let rows = run(
        &ds,
        "SELECT name, CASE WHEN age >= 35 THEN 'senior' ELSE 'junior' END AS tier, \
         UPPER(city) AS loc FROM profiles WHERE name = 'Carol'",
    );
    assert_eq!(rows[0].get_field("tier"), Some(&Value::from("senior")));
    assert_eq!(rows[0].get_field("loc"), Some(&Value::from("SF")));
}
