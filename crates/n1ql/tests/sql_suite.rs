//! Table-driven N1QL suite: each case is (query, expected JSON rows).
//!
//! Runs against a fixed fixture so results are golden. The fixture is the
//! same shape the paper's examples use: profiles with nested objects and
//! arrays, plus orders referenced by key.

use cbs_index::IndexDef;
use cbs_json::Value;
use cbs_n1ql::{query, Datastore, MemoryDatastore, QueryOptions};

fn fixture() -> MemoryDatastore {
    let ds = MemoryDatastore::new();
    ds.create_keyspace("p");
    ds.create_keyspace("o");
    let people = [
        (
            "p1",
            r#"{"name":"Ada","age":36,"city":"London","langs":["asm","math"],
                   "address":{"zip":"E1"},"vip":true,"order_ids":["o1"]}"#,
        ),
        (
            "p2",
            r#"{"name":"Bob","age":25,"city":"Paris","langs":["go"],
                   "address":{"zip":"75"},"vip":false,"order_ids":["o2","o3"]}"#,
        ),
        (
            "p3",
            r#"{"name":"Cyd","age":25,"city":"London","langs":[],
                   "address":{"zip":"N1"},"vip":false,"order_ids":[]}"#,
        ),
        (
            "p4",
            r#"{"name":"Dee","age":52,"city":"Berlin","langs":["rust","go"],
                   "vip":true}"#,
        ),
        ("p5", r#"{"name":"Eli","city":"Paris","langs":["rust"],"vip":null}"#),
    ];
    ds.load("p", people.iter().map(|(k, v)| (k.to_string(), cbs_json::parse(v).unwrap())));
    let orders = [
        ("o1", r#"{"total":10,"status":"shipped"}"#),
        ("o2", r#"{"total":20,"status":"open"}"#),
        ("o3", r#"{"total":30,"status":"shipped"}"#),
    ];
    ds.load("o", orders.iter().map(|(k, v)| (k.to_string(), cbs_json::parse(v).unwrap())));
    ds.create_index(IndexDef::primary("#p", "p")).unwrap();
    ds.create_index(IndexDef::primary("#o", "o")).unwrap();
    ds.create_index(IndexDef::simple("age", "p", "age")).unwrap();
    ds
}

/// Each case: (name, N1QL, expected rows as a JSON array literal).
const CASES: &[(&str, &str, &str)] = &[
    (
        "projection_and_order",
        "SELECT name FROM p WHERE city = 'London' ORDER BY name",
        r#"[{"name":"Ada"},{"name":"Cyd"}]"#,
    ),
    (
        "order_desc_with_limit",
        "SELECT name, age FROM p WHERE age IS VALUED ORDER BY age DESC, name LIMIT 2",
        r#"[{"name":"Dee","age":52},{"name":"Ada","age":36}]"#,
    ),
    ("missing_vs_null", "SELECT name FROM p WHERE age IS MISSING", r#"[{"name":"Eli"}]"#),
    ("is_null_only", "SELECT name FROM p WHERE vip IS NULL", r#"[{"name":"Eli"}]"#),
    (
        "nested_field_access",
        "SELECT address.zip AS zip FROM p WHERE name = 'Bob'",
        r#"[{"zip":"75"}]"#,
    ),
    (
        "array_subscript",
        "SELECT langs[0] AS first FROM p WHERE name = 'Dee'",
        r#"[{"first":"rust"}]"#,
    ),
    (
        "between",
        "SELECT name FROM p WHERE age BETWEEN 25 AND 36 ORDER BY name",
        r#"[{"name":"Ada"},{"name":"Bob"},{"name":"Cyd"}]"#,
    ),
    (
        "in_list",
        "SELECT name FROM p WHERE city IN ['Paris','Berlin'] ORDER BY name",
        r#"[{"name":"Bob"},{"name":"Dee"},{"name":"Eli"}]"#,
    ),
    (
        "like_patterns",
        "SELECT name FROM p WHERE name LIKE '_e%' ORDER BY name",
        r#"[{"name":"Dee"}]"#,
    ),
    (
        "boolean_fields_and_not",
        "SELECT name FROM p WHERE vip = true ORDER BY name",
        r#"[{"name":"Ada"},{"name":"Dee"}]"#,
    ),
    (
        "any_satisfies",
        "SELECT name FROM p WHERE ANY l IN langs SATISFIES l = 'go' END ORDER BY name",
        r#"[{"name":"Bob"},{"name":"Dee"}]"#,
    ),
    (
        "every_satisfies_vacuous_truth",
        "SELECT name FROM p WHERE EVERY l IN langs SATISFIES l = 'rust' END ORDER BY name",
        r#"[{"name":"Cyd"},{"name":"Eli"}]"#,
    ),
    (
        "array_comprehension",
        "SELECT ARRAY UPPER(l) FOR l IN langs END AS up FROM p WHERE name = 'Dee'",
        r#"[{"up":["RUST","GO"]}]"#,
    ),
    (
        "group_count_order",
        "SELECT city, COUNT(*) AS n FROM p GROUP BY city ORDER BY city",
        r#"[{"city":"Berlin","n":1},{"city":"London","n":2},{"city":"Paris","n":2}]"#,
    ),
    (
        "group_avg_having",
        "SELECT city, AVG(age) AS a FROM p WHERE age IS VALUED GROUP BY city \
         HAVING COUNT(*) >= 2 ORDER BY city",
        r#"[{"city":"London","a":30.5}]"#,
    ),
    (
        "global_min_max_sum",
        "SELECT MIN(age) AS lo, MAX(age) AS hi, SUM(age) AS s FROM p",
        r#"[{"lo":25,"hi":52,"s":138}]"#,
    ),
    ("count_distinct_cities", "SELECT COUNT(DISTINCT city) AS c FROM p", r#"[{"c":3}]"#),
    (
        "array_agg_sorted_input",
        "SELECT ARRAY_AGG(name) AS names FROM p WHERE age = 25",
        r#"[{"names":["Bob","Cyd"]}]"#,
    ),
    (
        "unnest_with_filter",
        "SELECT name, l FROM p UNNEST p.langs AS l WHERE l = 'rust' ORDER BY name",
        r#"[{"name":"Dee","l":"rust"},{"name":"Eli","l":"rust"}]"#,
    ),
    (
        "distinct_unnest",
        "SELECT DISTINCT l FROM p UNNEST p.langs AS l ORDER BY l",
        r#"[{"l":"asm"},{"l":"go"},{"l":"math"},{"l":"rust"}]"#,
    ),
    (
        "left_outer_unnest_keeps_empty",
        "SELECT name FROM p LEFT UNNEST p.langs AS l WHERE l IS MISSING ORDER BY name",
        r#"[{"name":"Cyd"}]"#,
    ),
    (
        "join_on_keys_array",
        "SELECT p.name, o.total FROM p JOIN o ON KEYS p.order_ids ORDER BY o.total",
        r#"[{"name":"Ada","total":10},{"name":"Bob","total":20},{"name":"Bob","total":30}]"#,
    ),
    (
        "left_join_keeps_unmatched",
        "SELECT p.name, o.total FROM p LEFT JOIN o ON KEYS p.order_ids \
         WHERE o.total IS MISSING ORDER BY p.name",
        r#"[{"name":"Cyd"},{"name":"Dee"},{"name":"Eli"}]"#,
    ),
    (
        "nest_aggregates_orders",
        "SELECT p.name, ARRAY_LENGTH(os) AS n FROM p NEST o os ON KEYS p.order_ids \
         WHERE p.name = 'Bob'",
        r#"[{"name":"Bob","n":2}]"#,
    ),
    (
        "case_expression",
        "SELECT name, CASE WHEN age >= 50 THEN 'senior' WHEN age >= 30 THEN 'mid' \
         ELSE 'young' END AS band FROM p WHERE age IS VALUED ORDER BY name",
        r#"[{"name":"Ada","band":"mid"},{"name":"Bob","band":"young"},
            {"name":"Cyd","band":"young"},{"name":"Dee","band":"senior"}]"#,
    ),
    (
        "string_functions",
        "SELECT UPPER(name) AS u, LENGTH(city) AS l, SUBSTR(city, 0, 3) AS pre \
         FROM p WHERE name = 'Ada'",
        r#"[{"u":"ADA","l":6,"pre":"Lon"}]"#,
    ),
    (
        "concat_and_arithmetic",
        "SELECT name || '!' AS bang, age * 2 + 1 AS x FROM p WHERE name = 'Bob'",
        r#"[{"bang":"Bob!","x":51}]"#,
    ),
    (
        "meta_id_and_use_keys",
        "SELECT META(d).id AS id, d.name FROM p d USE KEYS ['p4','p1'] ORDER BY id",
        r#"[{"id":"p1","name":"Ada"},{"id":"p4","name":"Dee"}]"#,
    ),
    (
        "offset_pagination",
        "SELECT name FROM p ORDER BY name LIMIT 2 OFFSET 2",
        r#"[{"name":"Cyd"},{"name":"Dee"}]"#,
    ),
    (
        "expression_only",
        "SELECT GREATEST(3, 1 + 1, 2) AS g, ARRAY_CONTAINS([1,2], 2) AS has",
        r#"[{"g":3,"has":true}]"#,
    ),
    (
        "ifmissing_fallbacks",
        "SELECT name, IFMISSING(age, -1) AS age2 FROM p WHERE city = 'Paris' ORDER BY name",
        r#"[{"name":"Bob","age2":25},{"name":"Eli","age2":-1}]"#,
    ),
    (
        "type_function",
        "SELECT TYPE(age) AS t_age, TYPE(langs) AS t_langs, TYPE(vip) AS t_vip \
         FROM p WHERE name = 'Eli'",
        r#"[{"t_age":"missing","t_langs":"array","t_vip":"null"}]"#,
    ),
    (
        "order_by_projected_alias",
        "SELECT age * 10 AS score FROM p WHERE age IS VALUED ORDER BY score DESC LIMIT 1",
        r#"[{"score":520}]"#,
    ),
    (
        "mixed_type_collation_order",
        "SELECT vip FROM p WHERE name != 'Eli' ORDER BY vip, name",
        r#"[{"vip":false},{"vip":false},{"vip":true},{"vip":true}]"#,
    ),
    (
        "not_and_parens",
        "SELECT name FROM p WHERE NOT (city = 'Paris' OR city = 'Berlin') ORDER BY name",
        r#"[{"name":"Ada"},{"name":"Cyd"}]"#,
    ),
];

#[test]
fn sql_suite_golden_results() {
    let ds = fixture();
    let opts = QueryOptions::default();
    let mut failures = Vec::new();
    for (name, sql, expected) in CASES {
        let got = match query(&ds, sql, &opts) {
            Ok(r) => Value::Array(r.rows),
            Err(e) => {
                failures.push(format!("{name}: query failed: {e}\n  {sql}"));
                continue;
            }
        };
        let want = cbs_json::parse(expected).unwrap();
        if got != want {
            failures.push(format!("{name}:\n  {sql}\n  want {want}\n  got  {got}"));
        }
    }
    assert!(failures.is_empty(), "{} case(s) failed:\n{}", failures.len(), failures.join("\n"));
}

#[test]
fn sql_suite_index_paths_agree_with_primary() {
    // Re-run every age-referencing case on a datastore WITHOUT the
    // secondary index: results must be identical (the index is purely an
    // access-path optimization).
    let with_index = fixture();
    let without_index = {
        let ds = fixture();
        ds.drop_index("p", "age").unwrap();
        ds
    };
    let opts = QueryOptions::default();
    for (name, sql, _) in CASES {
        let a = query(&with_index, sql, &opts).map(|r| r.rows);
        let b = query(&without_index, sql, &opts).map(|r| r.rows);
        match (a, b) {
            (Ok(x), Ok(y)) => assert_eq!(x, y, "{name} differs by access path"),
            (Err(_), Err(_)) => {}
            (x, y) => panic!("{name}: one path errored: {x:?} vs {y:?}"),
        }
    }
}
