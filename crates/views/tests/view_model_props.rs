//! Property test: a view query result always equals the naive
//! "map over all live documents, sort, reduce" computation.

use std::sync::Arc;

use cbs_common::Cas;
use cbs_json::Value;
use cbs_kv::{DataEngine, EngineConfig, MutateMode};
use cbs_views::{DesignDoc, MapExpr, MapFn, Reducer, Stale, ViewDef, ViewEngine, ViewQuery};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Put { key: u8, group: u8, amount: i64 },
    Del { key: u8 },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (any::<u8>(), 0u8..5, -100i64..100).prop_map(|(key, group, amount)| Op::Put {
                key: key % 30,
                group,
                amount
            }),
            any::<u8>().prop_map(|key| Op::Del { key: key % 30 }),
        ],
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn view_matches_naive_map_reduce(ops in arb_ops()) {
        let engine = DataEngine::new(EngineConfig::for_test(8)).unwrap();
        engine.activate_all();
        let ve = ViewEngine::new(Arc::clone(&engine));
        ve.create_design_doc(DesignDoc {
            name: "dd".to_string(),
            views: vec![(
                "by_group".to_string(),
                ViewDef {
                    map: MapFn {
                        when: vec![],
                        key: MapExpr::field("group"),
                        value: Some(MapExpr::field("amount")),
                    },
                    reduce: Some(Reducer::Sum),
                },
            )],
        })
        .unwrap();

        // Model: key → (group, amount) for live docs.
        let mut model: std::collections::BTreeMap<String, (i64, i64)> = Default::default();
        for op in &ops {
            match op {
                Op::Put { key, group, amount } => {
                    let k = format!("k{key}");
                    engine
                        .set(
                            &k,
                            Value::object([
                                ("group", Value::int(*group as i64)),
                                ("amount", Value::int(*amount)),
                            ]),
                            MutateMode::Upsert,
                            Cas::WILDCARD,
                            0,
                        )
                        .unwrap();
                    model.insert(k, (*group as i64, *amount));
                }
                Op::Del { key } => {
                    let k = format!("k{key}");
                    if model.remove(&k).is_some() {
                        engine.delete(&k, Cas::WILDCARD).unwrap();
                    }
                }
            }
        }

        // Row query (stale=false): one row per live doc, in (key, doc) order.
        let rows = ve
            .query("dd", "by_group", &ViewQuery { stale: Stale::False, ..Default::default() })
            .unwrap();
        prop_assert_eq!(rows.rows.len(), model.len());
        let mut expected: Vec<(i64, String, i64)> =
            model.iter().map(|(k, (g, a))| (*g, k.clone(), *a)).collect();
        expected.sort();
        let got: Vec<(i64, String, i64)> = rows
            .rows
            .iter()
            .map(|r| {
                (
                    r.key.as_i64().unwrap(),
                    r.id.clone().unwrap(),
                    r.value.as_i64().unwrap(),
                )
            })
            .collect();
        prop_assert_eq!(got, expected);

        // Grouped reduce equals the model's per-group sums.
        let reduced = ve
            .query(
                "dd",
                "by_group",
                &ViewQuery { stale: Stale::False, reduce: true, group: true, ..Default::default() },
            )
            .unwrap();
        let mut sums: std::collections::BTreeMap<i64, i64> = Default::default();
        for (g, a) in model.values() {
            *sums.entry(*g).or_default() += a;
        }
        prop_assert_eq!(reduced.rows.len(), sums.len());
        for row in &reduced.rows {
            let g = row.key.as_i64().unwrap();
            prop_assert_eq!(row.value.as_i64().unwrap(), sums[&g], "group {}", g);
        }
    }
}
