//! The view B+-tree: entries sorted by (emitted key, doc id) under N1QL
//! collation, with a pre-computed [`Reduction`] cached in every node.
//!
//! This is the structure §4.3.3 describes: "A key characteristic of a view
//! index is that it stores the pre-computed aggregates defined in the
//! Reduce function as a part of the index tree. This allows for very fast
//! aggregation at query time" — a range reduction combines cached subtree
//! aggregates and only descends into partially-overlapping nodes, i.e.
//! O(log n) combines instead of O(rows).
//!
//! Every entry is tagged with its source vBucket, reproducing "information
//! about vBuckets is stored in the view B-tree itself. Using this
//! information, parts of a B-tree can be deactivated as needed" — queries
//! filter through an active-vBucket set during rebalance/failover. (With a
//! partial set the cached aggregates can't be used, so reductions fall back
//! to leaf-level accumulation; scans always filter exactly.)
//!
//! Deletion keeps the tree correct but rebalances lazily (underfull nodes
//! are tolerated, empty nodes removed) — the same trade-off couchstore
//! makes by deferring cleanup to compaction.

use std::cmp::Ordering;

use cbs_common::VbId;
use cbs_json::{cmp_values, Value};

use crate::reduce::{Reducer, Reduction};

/// Maximum entries per leaf / children per internal node before a split.
const MAX_NODE: usize = 32;

/// One row of a view index.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewEntry {
    /// Emitted key.
    pub key: Value,
    /// Source document ID.
    pub doc_id: String,
    /// Emitted value.
    pub value: Value,
    /// vBucket the source document lives in.
    pub vb: VbId,
}

/// Key-range selector for scans and reductions (bounds compare on the
/// emitted key only).
#[derive(Debug, Clone, Default)]
pub struct KeyRange {
    /// Lower bound.
    pub start: Option<Value>,
    /// Lower bound inclusive?
    pub start_inclusive: bool,
    /// Upper bound.
    pub end: Option<Value>,
    /// Upper bound inclusive?
    pub end_inclusive: bool,
}

impl KeyRange {
    /// Everything.
    pub fn all() -> KeyRange {
        KeyRange::default()
    }

    /// Exactly one key.
    pub fn exact(key: Value) -> KeyRange {
        KeyRange {
            start: Some(key.clone()),
            start_inclusive: true,
            end: Some(key),
            end_inclusive: true,
        }
    }

    /// `[start, end]` inclusive both ends (the paper's "starting with the
    /// provided key A and stopping on the last instance of a key B").
    pub fn between(start: Value, end: Value) -> KeyRange {
        KeyRange { start: Some(start), start_inclusive: true, end: Some(end), end_inclusive: true }
    }

    fn contains_key(&self, k: &Value) -> bool {
        if let Some(s) = &self.start {
            match cmp_values(k, s) {
                Ordering::Less => return false,
                Ordering::Equal if !self.start_inclusive => return false,
                _ => {}
            }
        }
        if let Some(e) = &self.end {
            match cmp_values(k, e) {
                Ordering::Greater => return false,
                Ordering::Equal if !self.end_inclusive => return false,
                _ => {}
            }
        }
        true
    }

    fn entirely_below(&self, max_key: &Value) -> bool {
        // Is the whole range below keys > max_key? i.e. nothing beyond this
        // child can match: end bound < ... handled by caller via ordering.
        match &self.end {
            Some(e) => cmp_values(max_key, e) == Ordering::Greater,
            None => false,
        }
    }
}

fn entry_cmp(k1: &Value, d1: &str, k2: &Value, d2: &str) -> Ordering {
    cmp_values(k1, k2).then_with(|| d1.cmp(d2))
}

enum Node {
    Leaf { entries: Vec<ViewEntry>, red: Reduction },
    Internal { children: Vec<Node>, red: Reduction },
}

impl Node {
    fn red(&self) -> Reduction {
        match self {
            Node::Leaf { red, .. } | Node::Internal { red, .. } => *red,
        }
    }

    fn len(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => entries.len(),
            Node::Internal { children, .. } => children.iter().map(Node::len).sum(),
        }
    }

    fn min_entry(&self) -> Option<(&Value, &str)> {
        match self {
            Node::Leaf { entries, .. } => entries.first().map(|e| (&e.key, e.doc_id.as_str())),
            Node::Internal { children, .. } => children.first().and_then(Node::min_entry),
        }
    }

    fn max_entry(&self) -> Option<(&Value, &str)> {
        match self {
            Node::Leaf { entries, .. } => entries.last().map(|e| (&e.key, e.doc_id.as_str())),
            Node::Internal { children, .. } => children.last().and_then(Node::max_entry),
        }
    }

    fn recompute_red(&mut self, reducer: Reducer) {
        match self {
            Node::Leaf { entries, red } => {
                *red = entries
                    .iter()
                    .map(|e| reducer.of_value(&e.value))
                    .fold(reducer.empty(), Reduction::combine);
            }
            Node::Internal { children, red } => {
                *red = children.iter().map(Node::red).fold(reducer.empty(), Reduction::combine);
            }
        }
    }

    /// Insert/replace; returns a new right sibling if this node split.
    fn insert(&mut self, entry: ViewEntry, reducer: Reducer) -> Option<Node> {
        match self {
            Node::Leaf { entries, .. } => {
                match entries
                    .binary_search_by(|e| entry_cmp(&e.key, &e.doc_id, &entry.key, &entry.doc_id))
                {
                    Ok(pos) => entries[pos] = entry,
                    Err(pos) => entries.insert(pos, entry),
                }
                let split = if entries.len() > MAX_NODE {
                    let right = entries.split_off(entries.len() / 2);
                    let mut right_node = Node::Leaf { entries: right, red: reducer.empty() };
                    right_node.recompute_red(reducer);
                    Some(right_node)
                } else {
                    None
                };
                self.recompute_red(reducer);
                split
            }
            Node::Internal { children, .. } => {
                // Descend into the first child whose max >= entry, else last.
                let idx = children
                    .iter()
                    .position(|c| {
                        c.max_entry().is_some_and(|(k, d)| {
                            entry_cmp(k, d, &entry.key, &entry.doc_id) != Ordering::Less
                        })
                    })
                    .unwrap_or(children.len() - 1);
                if let Some(new_right) = children[idx].insert(entry, reducer) {
                    children.insert(idx + 1, new_right);
                }
                let split = if children.len() > MAX_NODE {
                    let right = children.split_off(children.len() / 2);
                    let mut right_node = Node::Internal { children: right, red: reducer.empty() };
                    right_node.recompute_red(reducer);
                    Some(right_node)
                } else {
                    None
                };
                self.recompute_red(reducer);
                split
            }
        }
    }

    /// Remove by (key, doc_id); returns true if an entry was removed.
    fn remove(&mut self, key: &Value, doc_id: &str, reducer: Reducer) -> bool {
        let removed = match self {
            Node::Leaf { entries, .. } => {
                match entries.binary_search_by(|e| entry_cmp(&e.key, &e.doc_id, key, doc_id)) {
                    Ok(pos) => {
                        entries.remove(pos);
                        true
                    }
                    Err(_) => false,
                }
            }
            Node::Internal { children, .. } => {
                let mut removed = false;
                for i in 0..children.len() {
                    let past = children[i]
                        .max_entry()
                        .is_none_or(|(k, d)| entry_cmp(k, d, key, doc_id) != Ordering::Less);
                    if past {
                        removed = children[i].remove(key, doc_id, reducer);
                        if children[i].len() == 0 && children.len() > 1 {
                            children.remove(i);
                        }
                        break;
                    }
                }
                removed
            }
        };
        if removed {
            self.recompute_red(reducer);
        }
        removed
    }

    fn scan_into(&self, range: &KeyRange, active: Option<&[bool]>, out: &mut Vec<ViewEntry>) {
        match self {
            Node::Leaf { entries, .. } => {
                for e in entries {
                    if range.contains_key(&e.key)
                        && active.is_none_or(|set| set.get(e.vb.index()).copied().unwrap_or(false))
                    {
                        out.push(e.clone());
                    }
                }
            }
            Node::Internal { children, .. } => {
                for c in children {
                    let (Some((min_k, _)), Some((max_k, _))) = (c.min_entry(), c.max_entry())
                    else {
                        continue;
                    };
                    // Prune children entirely outside the range.
                    if let Some(s) = &range.start {
                        if cmp_values(max_k, s) == Ordering::Less {
                            continue;
                        }
                    }
                    if let Some(e) = &range.end {
                        if cmp_values(min_k, e) == Ordering::Greater {
                            break;
                        }
                    }
                    c.scan_into(range, active, out);
                    // Early exit if this child already covers past the end.
                    if range.entirely_below(max_k) {
                        break;
                    }
                }
            }
        }
    }

    fn reduce_range(
        &self,
        range: &KeyRange,
        active: Option<&[bool]>,
        reducer: Reducer,
    ) -> Reduction {
        match self {
            Node::Leaf { entries, .. } => entries
                .iter()
                .filter(|e| {
                    range.contains_key(&e.key)
                        && active.is_none_or(|set| set.get(e.vb.index()).copied().unwrap_or(false))
                })
                .map(|e| reducer.of_value(&e.value))
                .fold(reducer.empty(), Reduction::combine),
            Node::Internal { children, .. } => {
                let mut acc = reducer.empty();
                for c in children {
                    let (Some((min_k, _)), Some((max_k, _))) = (c.min_entry(), c.max_entry())
                    else {
                        continue;
                    };
                    if let Some(s) = &range.start {
                        if cmp_values(max_k, s) == Ordering::Less {
                            continue;
                        }
                    }
                    if let Some(e) = &range.end {
                        if cmp_values(min_k, e) == Ordering::Greater {
                            break;
                        }
                    }
                    // Fast path: subtree fully inside the range, and no
                    // vBucket filtering — use the pre-computed aggregate.
                    let fully_inside = range.contains_key(min_k) && range.contains_key(max_k);
                    if fully_inside && active.is_none() {
                        acc = acc.combine(c.red());
                    } else {
                        acc = acc.combine(c.reduce_range(range, active, reducer));
                    }
                }
                acc
            }
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Internal { children, .. } => 1 + children.first().map(Node::depth).unwrap_or(0),
        }
    }
}

/// The view index tree for one view on one node.
pub struct ViewBTree {
    root: Node,
    reducer: Reducer,
    entries: usize,
}

impl ViewBTree {
    /// New empty tree maintaining aggregates under `reducer`. Views without
    /// a reduce function pass [`Reducer::Count`] (cheap, always valid).
    pub fn new(reducer: Reducer) -> ViewBTree {
        ViewBTree {
            root: Node::Leaf { entries: Vec::new(), red: reducer.empty() },
            reducer,
            entries: 0,
        }
    }

    /// Insert (or replace) a row.
    pub fn insert(&mut self, entry: ViewEntry) {
        let is_replace = self.contains(&entry.key, &entry.doc_id);
        if let Some(new_right) = self.root.insert(entry, self.reducer) {
            // Root split: grow the tree by one level.
            let old_root = std::mem::replace(
                &mut self.root,
                Node::Internal { children: Vec::new(), red: self.reducer.empty() },
            );
            if let Node::Internal { children, .. } = &mut self.root {
                children.push(old_root);
                children.push(new_right);
            }
            self.root.recompute_red(self.reducer);
        }
        if !is_replace {
            self.entries += 1;
        }
    }

    /// Remove a row; true if it existed.
    pub fn remove(&mut self, key: &Value, doc_id: &str) -> bool {
        let removed = self.root.remove(key, doc_id, self.reducer);
        if removed {
            self.entries -= 1;
            // Shrink the root when it has a single child.
            while let Node::Internal { children, .. } = &mut self.root {
                if children.len() == 1 {
                    let only = children.pop().unwrap();
                    self.root = only;
                } else {
                    break;
                }
            }
        }
        removed
    }

    /// Is (key, doc_id) present?
    pub fn contains(&self, key: &Value, doc_id: &str) -> bool {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { entries, .. } => {
                    return entries
                        .binary_search_by(|e| entry_cmp(&e.key, &e.doc_id, key, doc_id))
                        .is_ok();
                }
                Node::Internal { children, .. } => {
                    let next = children.iter().find(|c| {
                        c.max_entry()
                            .is_some_and(|(k, d)| entry_cmp(k, d, key, doc_id) != Ordering::Less)
                    });
                    match next {
                        Some(c) => node = c,
                        None => return false,
                    }
                }
            }
        }
    }

    /// Ordered range scan. `active` restricts results to entries from
    /// active vBuckets (rebalance consistency); `None` = no filtering.
    pub fn scan(&self, range: &KeyRange, active: Option<&[bool]>) -> Vec<ViewEntry> {
        let mut out = Vec::new();
        self.root.scan_into(range, active, &mut out);
        out
    }

    /// Range reduction using cached subtree aggregates where possible.
    pub fn reduce(&self, range: &KeyRange, active: Option<&[bool]>) -> Reduction {
        self.root.reduce_range(range, active, self.reducer)
    }

    /// Total aggregate (O(1): the root's cached reduction).
    pub fn total_reduction(&self) -> Reduction {
        self.root.red()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Tree depth (diagnostics).
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// The reducer this tree maintains.
    pub fn reducer(&self) -> Reducer {
        self.reducer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(k: i64, doc: &str, v: i64) -> ViewEntry {
        ViewEntry {
            key: Value::int(k),
            doc_id: doc.to_string(),
            value: Value::int(v),
            vb: VbId((k % 4) as u16),
        }
    }

    #[test]
    fn insert_scan_ordered() {
        let mut t = ViewBTree::new(Reducer::Count);
        for k in (0..200).rev() {
            t.insert(entry(k, &format!("d{k}"), k));
        }
        assert_eq!(t.len(), 200);
        assert!(t.depth() > 1, "should have split");
        let all = t.scan(&KeyRange::all(), None);
        let keys: Vec<i64> = all.iter().map(|e| e.key.as_i64().unwrap()).collect();
        let expected: Vec<i64> = (0..200).collect();
        assert_eq!(keys, expected);
    }

    #[test]
    fn range_scan_bounds() {
        let mut t = ViewBTree::new(Reducer::Count);
        for k in 0..100 {
            t.insert(entry(k, &format!("d{k}"), 1));
        }
        let r = t.scan(&KeyRange::between(Value::int(10), Value::int(20)), None);
        assert_eq!(r.len(), 11);
        let r = t.scan(
            &KeyRange {
                start: Some(Value::int(10)),
                start_inclusive: false,
                end: Some(Value::int(20)),
                end_inclusive: false,
            },
            None,
        );
        assert_eq!(r.len(), 9);
        let r = t.scan(&KeyRange::exact(Value::int(42)), None);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn replace_same_key_doc() {
        let mut t = ViewBTree::new(Reducer::Sum);
        t.insert(entry(1, "d", 10));
        t.insert(entry(1, "d", 99));
        assert_eq!(t.len(), 1);
        assert_eq!(t.total_reduction(), Reduction::Sum(99.0));
    }

    #[test]
    fn duplicate_keys_different_docs() {
        let mut t = ViewBTree::new(Reducer::Count);
        for i in 0..50 {
            t.insert(ViewEntry {
                key: Value::from("same"),
                doc_id: format!("d{i}"),
                value: Value::Null,
                vb: VbId(0),
            });
        }
        assert_eq!(t.scan(&KeyRange::exact(Value::from("same")), None).len(), 50);
    }

    #[test]
    fn remove_and_shrink() {
        let mut t = ViewBTree::new(Reducer::Count);
        for k in 0..300 {
            t.insert(entry(k, &format!("d{k}"), 1));
        }
        for k in 0..300 {
            assert!(t.remove(&Value::int(k), &format!("d{k}")), "remove {k}");
        }
        assert!(t.is_empty());
        assert_eq!(t.total_reduction(), Reduction::Count(0));
        assert!(!t.remove(&Value::int(0), "d0"), "double remove is false");
        // Tree still usable.
        t.insert(entry(5, "d5", 1));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn precomputed_range_reduce_matches_scan() {
        let mut t = ViewBTree::new(Reducer::Sum);
        for k in 0..500 {
            t.insert(entry(k, &format!("d{k}"), k));
        }
        let range = KeyRange::between(Value::int(100), Value::int(399));
        let fast = t.reduce(&range, None);
        let slow: f64 = t.scan(&range, None).iter().map(|e| e.value.as_f64().unwrap()).sum();
        assert_eq!(fast, Reduction::Sum(slow));
        assert_eq!(slow, (100..=399).sum::<i64>() as f64);
    }

    #[test]
    fn total_reduction_is_o1_and_correct() {
        let mut t = ViewBTree::new(Reducer::Stats);
        for k in 1..=100 {
            t.insert(entry(k, &format!("d{k}"), k));
        }
        match t.total_reduction() {
            Reduction::Stats { sum, count, min, max, .. } => {
                assert_eq!(sum, 5050.0);
                assert_eq!(count, 100);
                assert_eq!(min, Some(1.0));
                assert_eq!(max, Some(100.0));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn vbucket_filtering_on_scan_and_reduce() {
        let mut t = ViewBTree::new(Reducer::Count);
        for k in 0..100 {
            t.insert(entry(k, &format!("d{k}"), 1)); // vb = k % 4
        }
        // Only vb 0 and 2 active.
        let active = vec![true, false, true, false];
        let rows = t.scan(&KeyRange::all(), Some(&active));
        assert_eq!(rows.len(), 50);
        assert!(rows.iter().all(|e| e.vb.0 % 2 == 0));
        let red = t.reduce(&KeyRange::all(), Some(&active));
        assert_eq!(red, Reduction::Count(50));
        // Without filtering everything comes back.
        assert_eq!(t.reduce(&KeyRange::all(), None), Reduction::Count(100));
    }

    #[test]
    fn mixed_type_keys_collate() {
        let mut t = ViewBTree::new(Reducer::Count);
        let keys = [
            Value::Null,
            Value::Bool(true),
            Value::int(5),
            Value::from("str"),
            Value::Array(vec![Value::int(1)]),
        ];
        for (i, k) in keys.iter().enumerate() {
            t.insert(ViewEntry {
                key: k.clone(),
                doc_id: format!("d{i}"),
                value: Value::Null,
                vb: VbId(0),
            });
        }
        let all = t.scan(&KeyRange::all(), None);
        let got: Vec<&Value> = all.iter().map(|e| &e.key).collect();
        assert_eq!(got, keys.iter().collect::<Vec<_>>(), "type-ranked order");
    }

    #[test]
    fn randomized_against_model() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut tree = ViewBTree::new(Reducer::Sum);
        let mut model: std::collections::BTreeMap<(i64, String), i64> = Default::default();
        for _ in 0..3000 {
            let k = rng.gen_range(0..100i64);
            let d = format!("d{}", rng.gen_range(0..50));
            if rng.gen_bool(0.7) {
                let v = rng.gen_range(0..1000i64);
                tree.insert(entry_kdv(k, &d, v));
                model.insert((k, d), v);
            } else {
                let removed = tree.remove(&Value::int(k), &d);
                assert_eq!(removed, model.remove(&(k, d)).is_some());
            }
        }
        assert_eq!(tree.len(), model.len());
        let scanned = tree.scan(&KeyRange::all(), None);
        let model_sum: i64 = model.values().sum();
        assert_eq!(tree.total_reduction(), Reduction::Sum(model_sum as f64));
        assert_eq!(scanned.len(), model.len());
        // Spot-check a range.
        let range = KeyRange::between(Value::int(25), Value::int(75));
        let model_range_sum: i64 =
            model.iter().filter(|((k, _), _)| (25..=75).contains(k)).map(|(_, v)| v).sum();
        assert_eq!(tree.reduce(&range, None), Reduction::Sum(model_range_sum as f64));
    }

    fn entry_kdv(k: i64, doc: &str, v: i64) -> ViewEntry {
        ViewEntry {
            key: Value::int(k),
            doc_id: doc.to_string(),
            value: Value::int(v),
            vb: VbId((k % 4) as u16),
        }
    }
}
