//! The per-node view engine: design documents, on-demand index updates via
//! DCP, and `stale`-parameterised queries.
//!
//! "Views are eventually consistent with respect to the underlying stored
//! documents; they are kept up-to-date asynchronously, on demand, based on
//! document writes/updates" (§3.1.2). The engine holds DCP streams per
//! design document and drains them when an update is demanded:
//!
//! - `stale=false` — "wait for the view indexer to finish processing
//!   changes that correspond to the current key-value document set and then
//!   return the latest entries";
//! - `stale=ok` — "just return the current entries from the index file";
//! - `stale=update_after` — "return the current entries from the index,
//!   but then initiate a view index update. (This is the default.)"
//!
//! Since the view index is a *local* index (§3.3.1) the engine is co-located
//! with the data service; cluster-wide scatter/gather lives in
//! `cbs-cluster`.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use cbs_common::sync::{rank, OrderedMutex, OrderedRwLock};
use cbs_common::{Error, Result, SeqNo, VbId};
use cbs_dcp::DcpStream;
use cbs_json::Value;
use cbs_kv::{DataEngine, VbState};
use cbs_obs::{span, Counter};

use crate::btree::{KeyRange, ViewBTree, ViewEntry};
use crate::mapfn::MapFn;
use crate::reduce::{Reducer, Reduction};

/// One view: a map function and an optional reduce.
#[derive(Debug, Clone)]
pub struct ViewDef {
    /// The map function.
    pub map: MapFn,
    /// Optional built-in reducer.
    pub reduce: Option<Reducer>,
}

/// A named group of views maintained together (CouchDB heritage: all views
/// of a design doc are updated in one pass over the changed documents).
#[derive(Debug, Clone)]
pub struct DesignDoc {
    /// Design document name.
    pub name: String,
    /// Views by name.
    pub views: Vec<(String, ViewDef)>,
}

/// The `stale` query parameter (§3.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Stale {
    /// Process pending changes first.
    False,
    /// Serve whatever is indexed.
    Ok,
    /// Serve, then refresh.
    #[default]
    UpdateAfter,
}

/// A view query.
#[derive(Debug, Clone, Default)]
pub struct ViewQuery {
    /// Exact-match keys ("matching any of the supplied keys"); if
    /// non-empty, `range` is ignored.
    pub keys: Vec<Value>,
    /// Key range ("starting with the provided key A and stopping on the
    /// last instance of a key B").
    pub range: KeyRange,
    /// Staleness tolerance.
    pub stale: Stale,
    /// Run the reduce function instead of returning rows.
    pub reduce: bool,
    /// With `reduce`: group results by distinct key.
    pub group: bool,
    /// Row limit (0 = unlimited).
    pub limit: usize,
}

impl ViewQuery {
    /// The paper's REST example: `?key="Dipti"&stale=false`.
    pub fn by_key(key: Value) -> ViewQuery {
        ViewQuery { range: KeyRange::exact(key), ..Default::default() }
    }
}

/// One result row.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewRow {
    /// Source document ID (absent for reduced rows).
    pub id: Option<String>,
    /// Key (the group key for grouped reductions).
    pub key: Value,
    /// Value (the reduction for reduced rows).
    pub value: Value,
}

/// A query result.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewResult {
    /// Result rows in key order.
    pub rows: Vec<ViewRow>,
    /// Total rows in the view (pre-limit, pre-filter).
    pub total_rows: usize,
}

struct ViewState {
    def: ViewDef,
    tree: ViewBTree,
    /// doc → the key it currently emits (to remove stale rows on update).
    emitted: HashMap<String, Value>,
}

struct DdocState {
    views: OrderedMutex<HashMap<String, ViewState>>,
    streams: OrderedMutex<Vec<DcpStream>>,
}

/// The view engine for one bucket on one node.
pub struct ViewEngine {
    engine: Arc<DataEngine>,
    ddocs: OrderedRwLock<HashMap<String, Arc<DdocState>>>,
    queries: Arc<Counter>,
    items_indexed: Arc<Counter>,
}

impl ViewEngine {
    /// Attach a view engine to a data engine. View metrics live in the
    /// node's shared registry (the view engine is co-located with the data
    /// service, §3.3.1).
    pub fn new(engine: Arc<DataEngine>) -> ViewEngine {
        let registry = engine.registry();
        let queries = registry.counter("views.engine.queries");
        let items_indexed = registry.counter("views.engine.items_indexed");
        ViewEngine {
            engine,
            ddocs: OrderedRwLock::new(rank::VIEWS_DDOCS, HashMap::new()),
            queries,
            items_indexed,
        }
    }

    /// Register a design document. Its views start empty; they materialise
    /// on the first update (triggered by `stale=false`/`update_after`
    /// queries or an explicit [`ViewEngine::update`]).
    pub fn create_design_doc(&self, ddoc: DesignDoc) -> Result<()> {
        let mut map = self.ddocs.write();
        if map.contains_key(&ddoc.name) {
            return Err(Error::View(format!("design doc {} already exists", ddoc.name)));
        }
        let n = self.engine.config().num_vbuckets;
        let mut streams = Vec::with_capacity(n as usize);
        for vb in 0..n {
            streams.push(self.engine.open_dcp_stream(VbId(vb), SeqNo::ZERO)?);
        }
        let views = ddoc
            .views
            .into_iter()
            .map(|(name, def)| {
                let reducer = def.reduce.unwrap_or(Reducer::Count);
                (name, ViewState { def, tree: ViewBTree::new(reducer), emitted: HashMap::new() })
            })
            .collect();
        map.insert(
            ddoc.name,
            Arc::new(DdocState {
                views: OrderedMutex::new(rank::VIEWS_DDOC_VIEWS, views),
                streams: OrderedMutex::new(rank::VIEWS_DDOC_STREAMS, streams),
            }),
        );
        Ok(())
    }

    /// Drop a design document and its indexes.
    pub fn drop_design_doc(&self, name: &str) -> Result<()> {
        self.ddocs
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| Error::View(format!("no such design doc: {name}")))
    }

    /// Design document names.
    pub fn design_docs(&self) -> Vec<String> {
        let mut v: Vec<String> = self.ddocs.read().keys().cloned().collect();
        v.sort();
        v
    }

    fn ddoc(&self, name: &str) -> Result<Arc<DdocState>> {
        self.ddocs
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::View(format!("no such design doc: {name}")))
    }

    /// Drain available DCP changes into every view of a design doc (the
    /// incremental view update pass).
    pub fn update(&self, ddoc_name: &str) -> Result<usize> {
        let _s = span("views.engine.update");
        let n = update_state(&self.ddoc(ddoc_name)?);
        self.items_indexed.add(n as u64);
        Ok(n)
    }

    /// Update and wait until every view has processed at least the current
    /// key-value document set (the `stale=false` contract).
    pub fn update_to_current(&self, ddoc_name: &str, timeout: Duration) -> Result<()> {
        let _s = span("views.engine.update");
        let state = self.ddoc(ddoc_name)?;
        let target = self.engine.seqno_vector();
        let mut streams = state.streams.lock();
        for (vbi, stream) in streams.iter_mut().enumerate() {
            let goal = target[vbi];
            let items = stream.drain_until(goal, timeout);
            self.items_indexed.add(items.len() as u64);
            let mut views = state.views.lock();
            for item in &items {
                apply_item(&mut views, item);
            }
            if stream.cursor() < goal {
                return Err(Error::Timeout(format!(
                    "view update for vb {vbi}: cursor {:?} < goal {goal:?}",
                    stream.cursor()
                )));
            }
        }
        Ok(())
    }

    /// Query a view (§3.1.2 semantics, including the `stale` parameter).
    pub fn query(&self, ddoc_name: &str, view_name: &str, q: &ViewQuery) -> Result<ViewResult> {
        let _s = span("views.engine.query");
        self.queries.inc();
        match q.stale {
            Stale::False => self.update_to_current(ddoc_name, Duration::from_secs(30))?,
            Stale::Ok => {}
            Stale::UpdateAfter => {}
        }
        let result = self.query_current(ddoc_name, view_name, q)?;
        if q.stale == Stale::UpdateAfter {
            // "Return the current entries from the index, but then initiate
            // a view index update" — initiated in the background so the
            // query's latency stays at stale=ok levels.
            let state = self.ddoc(ddoc_name)?;
            let items_indexed = self.items_indexed.clone();
            std::thread::spawn(move || {
                items_indexed.add(update_state(&state) as u64);
            });
        }
        Ok(result)
    }

    fn query_current(&self, ddoc_name: &str, view_name: &str, q: &ViewQuery) -> Result<ViewResult> {
        let state = self.ddoc(ddoc_name)?;
        let views = state.views.lock();
        let view = views
            .get(view_name)
            .ok_or_else(|| Error::View(format!("no such view: {view_name} in {ddoc_name}")))?;

        // Only serve entries from vBuckets active on this node: "parts of a
        // B-tree can be deactivated as needed [to] maintain consistency when
        // querying a view index during rebalancing or failover" (§4.3.3).
        let n = self.engine.config().num_vbuckets as usize;
        let mut all_active = true;
        let active: Vec<bool> = (0..n)
            .map(|vb| {
                let is_active = self.engine.vb_state(VbId(vb as u16)) == VbState::Active;
                all_active &= is_active;
                is_active
            })
            .collect();
        let filter: Option<&[bool]> = if all_active { None } else { Some(&active) };

        let entries: Vec<ViewEntry> = if q.keys.is_empty() {
            view.tree.scan(&q.range, filter)
        } else {
            let mut out = Vec::new();
            for k in &q.keys {
                out.extend(view.tree.scan(&KeyRange::exact(k.clone()), filter));
            }
            out
        };
        let total_rows = view.tree.len();

        if q.reduce {
            let reducer = view
                .def
                .reduce
                .ok_or_else(|| Error::View(format!("view {view_name} has no reduce function")))?;
            if q.group {
                // Group by distinct key, in key order.
                let mut rows: Vec<ViewRow> = Vec::new();
                let mut i = 0;
                while i < entries.len() {
                    let key = entries[i].key.clone();
                    let mut acc = reducer.empty();
                    while i < entries.len()
                        && cbs_json::cmp_values(&entries[i].key, &key) == std::cmp::Ordering::Equal
                    {
                        acc = acc.combine(reducer.of_value(&entries[i].value));
                        i += 1;
                    }
                    rows.push(ViewRow { id: None, key, value: acc.to_value() });
                }
                return Ok(ViewResult { rows, total_rows });
            }
            // Un-grouped reduce: one row. Use the pre-computed tree
            // aggregates when the query is an unfiltered pure range.
            let red: Reduction = if q.keys.is_empty() {
                view.tree.reduce(&q.range, filter)
            } else {
                entries
                    .iter()
                    .map(|e| reducer.of_value(&e.value))
                    .fold(reducer.empty(), Reduction::combine)
            };
            return Ok(ViewResult {
                rows: vec![ViewRow { id: None, key: Value::Null, value: red.to_value() }],
                total_rows,
            });
        }

        let mut rows: Vec<ViewRow> = entries
            .into_iter()
            .map(|e| ViewRow { id: Some(e.doc_id), key: e.key, value: e.value })
            .collect();
        if q.limit > 0 && rows.len() > q.limit {
            rows.truncate(q.limit);
        }
        Ok(ViewResult { rows, total_rows })
    }
}

fn update_state(state: &Arc<DdocState>) -> usize {
    let items: Vec<cbs_dcp::DcpItem> = {
        let mut streams = state.streams.lock();
        streams.iter_mut().flat_map(|s| s.drain_available()).collect()
    };
    let n = items.len();
    let mut views = state.views.lock();
    for item in &items {
        apply_item(&mut views, item);
    }
    n
}

fn apply_item(views: &mut HashMap<String, ViewState>, item: &cbs_dcp::DcpItem) {
    for view in views.values_mut() {
        // Remove the row this doc previously emitted (if any).
        if let Some(old_key) = view.emitted.remove(&item.key) {
            view.tree.remove(&old_key, &item.key);
        }
        if item.is_deletion() {
            continue;
        }
        let doc = item.value.as_ref().expect("mutation has value");
        if let Some((k, v)) = view.def.map.map(&item.key, doc) {
            view.tree.insert(ViewEntry {
                key: k.clone(),
                doc_id: item.key.clone(),
                value: v,
                vb: item.vb,
            });
            view.emitted.insert(item.key.clone(), k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapfn::{MapCond, MapExpr};
    use cbs_common::Cas;
    use cbs_kv::{EngineConfig, MutateMode};

    fn setup() -> (Arc<DataEngine>, ViewEngine) {
        let e = DataEngine::new(EngineConfig::for_test(16)).unwrap();
        e.activate_all();
        let ve = ViewEngine::new(Arc::clone(&e));
        ve.create_design_doc(DesignDoc {
            name: "profiles".to_string(),
            views: vec![
                (
                    "by_name".to_string(),
                    ViewDef {
                        map: MapFn {
                            when: vec![MapCond::Exists(cbs_json::parse_path("name").unwrap())],
                            key: MapExpr::field("name"),
                            value: Some(MapExpr::field("email")),
                        },
                        reduce: None,
                    },
                ),
                (
                    "age_stats".to_string(),
                    ViewDef {
                        map: MapFn {
                            when: vec![],
                            key: MapExpr::field("name"),
                            value: Some(MapExpr::field("age")),
                        },
                        reduce: Some(Reducer::Stats),
                    },
                ),
            ],
        })
        .unwrap();
        (e, ve)
    }

    fn put(e: &DataEngine, id: &str, name: &str, age: i64) {
        e.set(
            id,
            Value::object([
                ("name", Value::from(name)),
                ("email", Value::from(format!("{name}@cb.com"))),
                ("age", Value::int(age)),
            ]),
            MutateMode::Upsert,
            Cas::WILDCARD,
            0,
        )
        .unwrap();
    }

    #[test]
    fn paper_rest_example_stale_false() {
        let (e, ve) = setup();
        put(&e, "borkar123", "Dipti", 30);
        // ?key="Dipti"&stale=false
        let q = ViewQuery { stale: Stale::False, ..ViewQuery::by_key(Value::from("Dipti")) };
        let res = ve.query("profiles", "by_name", &q).unwrap();
        assert_eq!(res.rows.len(), 1);
        assert_eq!(res.rows[0].value, Value::from("Dipti@cb.com"));
        assert_eq!(res.rows[0].id.as_deref(), Some("borkar123"));
    }

    #[test]
    fn stale_ok_serves_stale_then_update_catches_up() {
        let (e, ve) = setup();
        put(&e, "u1", "Alice", 30);
        ve.update("profiles").unwrap();
        put(&e, "u2", "Bob", 40); // not yet indexed
        let q = ViewQuery { stale: Stale::Ok, ..Default::default() };
        let res = ve.query("profiles", "by_name", &q).unwrap();
        assert_eq!(res.rows.len(), 1, "stale=ok sees only what's indexed");
        // stale=false sees everything.
        let q = ViewQuery { stale: Stale::False, ..Default::default() };
        let res = ve.query("profiles", "by_name", &q).unwrap();
        assert_eq!(res.rows.len(), 2);
    }

    #[test]
    fn stale_update_after_refreshes_in_background() {
        let (e, ve) = setup();
        put(&e, "u1", "Alice", 30);
        let q = ViewQuery { stale: Stale::UpdateAfter, ..Default::default() };
        let first = ve.query("profiles", "by_name", &q).unwrap();
        assert_eq!(first.rows.len(), 0, "first query sees the unbuilt index");
        // The update_after side effect runs in the background; poll until
        // it has indexed u1.
        let q2 = ViewQuery { stale: Stale::Ok, ..Default::default() };
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let second = ve.query("profiles", "by_name", &q2).unwrap();
            if second.rows.len() == 1 {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "background update never ran");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn updates_and_deletes_maintain_rows() {
        let (e, ve) = setup();
        put(&e, "u1", "Alice", 30);
        put(&e, "u1", "Alicia", 31); // rename: old key must go
        let q = ViewQuery { stale: Stale::False, ..Default::default() };
        let res = ve.query("profiles", "by_name", &q).unwrap();
        assert_eq!(res.rows.len(), 1);
        assert_eq!(res.rows[0].key, Value::from("Alicia"));

        e.delete("u1", Cas::WILDCARD).unwrap();
        let res = ve.query("profiles", "by_name", &q).unwrap();
        assert!(res.rows.is_empty());
    }

    #[test]
    fn range_query_in_key_order() {
        let (e, ve) = setup();
        for (i, name) in ["Carol", "Alice", "Eve", "Bob", "Dan"].iter().enumerate() {
            put(&e, &format!("u{i}"), name, 20 + i as i64);
        }
        let q = ViewQuery {
            stale: Stale::False,
            range: KeyRange::between(Value::from("Alice"), Value::from("Dan")),
            ..Default::default()
        };
        let res = ve.query("profiles", "by_name", &q).unwrap();
        let names: Vec<&Value> = res.rows.iter().map(|r| &r.key).collect();
        assert_eq!(
            names,
            [
                &Value::from("Alice"),
                &Value::from("Bob"),
                &Value::from("Carol"),
                &Value::from("Dan")
            ]
        );
    }

    #[test]
    fn multi_key_query() {
        let (e, ve) = setup();
        for (i, name) in ["A", "B", "C"].iter().enumerate() {
            put(&e, &format!("u{i}"), name, 20);
        }
        let q = ViewQuery {
            stale: Stale::False,
            keys: vec![Value::from("A"), Value::from("C"), Value::from("ZZZ")],
            ..Default::default()
        };
        let res = ve.query("profiles", "by_name", &q).unwrap();
        assert_eq!(res.rows.len(), 2);
    }

    #[test]
    fn reduce_and_group() {
        let (e, ve) = setup();
        put(&e, "u1", "A", 10);
        put(&e, "u2", "A", 20);
        put(&e, "u3", "B", 30);
        // Ungrouped stats over everything.
        let q = ViewQuery { stale: Stale::False, reduce: true, ..Default::default() };
        let res = ve.query("profiles", "age_stats", &q).unwrap();
        assert_eq!(res.rows.len(), 1);
        let stats = &res.rows[0].value;
        assert_eq!(stats.get_field("sum"), Some(&Value::int(60)));
        assert_eq!(stats.get_field("count"), Some(&Value::int(3)));
        // Grouped by name.
        let q = ViewQuery { stale: Stale::False, reduce: true, group: true, ..Default::default() };
        let res = ve.query("profiles", "age_stats", &q).unwrap();
        assert_eq!(res.rows.len(), 2);
        assert_eq!(res.rows[0].key, Value::from("A"));
        assert_eq!(res.rows[0].value.get_field("sum"), Some(&Value::int(30)));
        assert_eq!(res.rows[1].value.get_field("sum"), Some(&Value::int(30)));
        // Reduce on a view without a reducer fails.
        let q = ViewQuery { stale: Stale::False, reduce: true, ..Default::default() };
        assert!(ve.query("profiles", "by_name", &q).is_err());
    }

    #[test]
    fn inactive_vbuckets_filtered_from_results() {
        let (e, ve) = setup();
        for i in 0..40 {
            put(&e, &format!("u{i}"), &format!("name{i:02}"), 20);
        }
        let q = ViewQuery { stale: Stale::False, ..Default::default() };
        let before = ve.query("profiles", "by_name", &q).unwrap().rows.len();
        assert_eq!(before, 40);
        // Deactivate half the vBuckets (mid-rebalance).
        for vb in 0..8u16 {
            e.set_vb_state(VbId(vb), VbState::Dead);
        }
        let q = ViewQuery { stale: Stale::Ok, ..Default::default() };
        let after = ve.query("profiles", "by_name", &q).unwrap().rows.len();
        assert!(after < before, "rows from deactivated vBuckets must disappear");
        // Reactivate: rows come back (index entries were never dropped).
        for vb in 0..8u16 {
            e.set_vb_state(VbId(vb), VbState::Active);
        }
        let back = ve.query("profiles", "by_name", &q).unwrap().rows.len();
        assert_eq!(back, 40);
    }

    #[test]
    fn limit_and_unknown_names() {
        let (e, ve) = setup();
        for i in 0..10 {
            put(&e, &format!("u{i}"), &format!("n{i}"), 20);
        }
        let q = ViewQuery { stale: Stale::False, limit: 3, ..Default::default() };
        assert_eq!(ve.query("profiles", "by_name", &q).unwrap().rows.len(), 3);
        assert!(ve.query("nope", "by_name", &q).is_err());
        assert!(ve.query("profiles", "nope", &q).is_err());
        assert!(ve.drop_design_doc("nope").is_err());
        ve.drop_design_doc("profiles").unwrap();
        assert!(ve.design_docs().is_empty());
    }

    #[test]
    fn mixed_doc_types_with_guard() {
        let (e, ve) = setup();
        put(&e, "u1", "Alice", 30);
        // A doc without `name` in the same bucket: guarded out.
        e.set(
            "order1",
            Value::object([("total", Value::int(99))]),
            MutateMode::Upsert,
            Cas::WILDCARD,
            0,
        )
        .unwrap();
        let q = ViewQuery { stale: Stale::False, ..Default::default() };
        let res = ve.query("profiles", "by_name", &q).unwrap();
        assert_eq!(res.rows.len(), 1);
    }
}
