//! Built-in reducers: `_count`, `_sum`, `_stats`.
//!
//! Reductions form a commutative monoid — [`Reduction::combine`] is
//! associative with [`Reduction::empty`] as identity — which is exactly
//! what lets the B-tree keep per-node partial aggregates and answer range
//! reductions by combining O(log n) node summaries.

use cbs_json::Value;

/// Which built-in reduce function a view uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reducer {
    /// `_count`: number of emitted rows.
    Count,
    /// `_sum`: numeric sum of emitted values (non-numbers count as 0).
    Sum,
    /// `_stats`: sum / count / min / max / sumsqr of emitted values.
    Stats,
}

/// A partial aggregate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Reduction {
    /// Row count.
    Count(u64),
    /// Numeric sum.
    Sum(f64),
    /// Full stats tuple.
    Stats {
        /// Sum of values.
        sum: f64,
        /// Number of numeric rows.
        count: u64,
        /// Minimum (`None` until a number is seen).
        min: Option<f64>,
        /// Maximum.
        max: Option<f64>,
        /// Sum of squares.
        sumsqr: f64,
    },
}

impl Reducer {
    /// The identity element.
    pub fn empty(self) -> Reduction {
        match self {
            Reducer::Count => Reduction::Count(0),
            Reducer::Sum => Reduction::Sum(0.0),
            Reducer::Stats => {
                Reduction::Stats { sum: 0.0, count: 0, min: None, max: None, sumsqr: 0.0 }
            }
        }
    }

    /// The reduction of a single emitted row.
    pub fn of_value(self, v: &Value) -> Reduction {
        let n = v.as_f64();
        match self {
            Reducer::Count => Reduction::Count(1),
            Reducer::Sum => Reduction::Sum(n.unwrap_or(0.0)),
            Reducer::Stats => match n {
                Some(x) => {
                    Reduction::Stats { sum: x, count: 1, min: Some(x), max: Some(x), sumsqr: x * x }
                }
                None => self.empty(),
            },
        }
    }
}

impl Reduction {
    /// Combine two partial aggregates (associative, commutative).
    pub fn combine(self, other: Reduction) -> Reduction {
        match (self, other) {
            (Reduction::Count(a), Reduction::Count(b)) => Reduction::Count(a + b),
            (Reduction::Sum(a), Reduction::Sum(b)) => Reduction::Sum(a + b),
            (
                Reduction::Stats { sum: s1, count: c1, min: m1, max: x1, sumsqr: q1 },
                Reduction::Stats { sum: s2, count: c2, min: m2, max: x2, sumsqr: q2 },
            ) => Reduction::Stats {
                sum: s1 + s2,
                count: c1 + c2,
                min: opt_merge(m1, m2, f64::min),
                max: opt_merge(x1, x2, f64::max),
                sumsqr: q1 + q2,
            },
            (a, b) => panic!("cannot combine heterogeneous reductions: {a:?} vs {b:?}"),
        }
    }

    /// Render as the JSON a view query returns.
    pub fn to_value(&self) -> Value {
        match self {
            Reduction::Count(n) => Value::from(*n),
            Reduction::Sum(s) => float_or_int(*s),
            Reduction::Stats { sum, count, min, max, sumsqr } => Value::object([
                ("sum", float_or_int(*sum)),
                ("count", Value::from(*count)),
                ("min", min.map(float_or_int).unwrap_or(Value::Null)),
                ("max", max.map(float_or_int).unwrap_or(Value::Null)),
                ("sumsqr", float_or_int(*sumsqr)),
            ]),
        }
    }
}

fn float_or_int(f: f64) -> Value {
    if f.fract() == 0.0 && f.abs() < 9e15 {
        Value::int(f as i64)
    } else {
        Value::float(f)
    }
}

fn opt_merge(a: Option<f64>, b: Option<f64>, f: fn(f64, f64) -> f64) -> Option<f64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(f(x, y)),
        (x, None) => x,
        (None, y) => y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_monoid() {
        let r = Reducer::Count;
        let total =
            [1, 2, 3].iter().map(|_| r.of_value(&Value::Null)).fold(r.empty(), Reduction::combine);
        assert_eq!(total, Reduction::Count(3));
        assert_eq!(total.to_value(), Value::int(3));
    }

    #[test]
    fn sum_ignores_non_numbers() {
        let r = Reducer::Sum;
        let total = [Value::int(5), Value::from("x"), Value::float(2.5)]
            .iter()
            .map(|v| r.of_value(v))
            .fold(r.empty(), Reduction::combine);
        assert_eq!(total, Reduction::Sum(7.5));
        assert_eq!(total.to_value(), Value::float(7.5));
    }

    #[test]
    fn stats_full() {
        let r = Reducer::Stats;
        let total = [3.0, 1.0, 2.0]
            .iter()
            .map(|&x| r.of_value(&Value::float(x)))
            .fold(r.empty(), Reduction::combine);
        match total {
            Reduction::Stats { sum, count, min, max, sumsqr } => {
                assert_eq!(sum, 6.0);
                assert_eq!(count, 3);
                assert_eq!(min, Some(1.0));
                assert_eq!(max, Some(3.0));
                assert_eq!(sumsqr, 14.0);
            }
            other => panic!("{other:?}"),
        }
        let v = total.to_value();
        assert_eq!(v.get_field("count"), Some(&Value::int(3)));
        assert_eq!(v.get_field("min"), Some(&Value::int(1)));
    }

    #[test]
    fn associativity() {
        let r = Reducer::Stats;
        let parts: Vec<Reduction> = (1..=6).map(|i| r.of_value(&Value::int(i))).collect();
        let left = parts.iter().copied().fold(r.empty(), Reduction::combine);
        let right = parts[..3]
            .iter()
            .copied()
            .fold(r.empty(), Reduction::combine)
            .combine(parts[3..].iter().copied().fold(r.empty(), Reduction::combine));
        assert_eq!(left, right);
    }

    #[test]
    fn integral_sums_render_as_ints() {
        assert_eq!(Reduction::Sum(4.0).to_value(), Value::int(4));
        assert_eq!(Reduction::Sum(4.5).to_value(), Value::float(4.5));
    }
}
