//! The View Engine (paper §3.1.2, §4.3.3 "View Engine").
//!
//! "Similar to the materialized view concept in the RDBMS world, Couchbase
//! Server provides a MapReduce-style index called a *view*. [...] A view is
//! defined using a Map function that extracts data from the documents in a
//! key space (bucket) and optionally a Reduce function that aggregates the
//! data objects emitted by the map function."
//!
//! Reproduced here:
//!
//! - a **map-function DSL** ([`MapFn`]) standing in for the paper's
//!   JavaScript map functions (see DESIGN.md's substitution table): guard
//!   conditions plus key/value emit expressions cover the paper's own
//!   examples (`if (doc.name) emit(doc.name, doc.email)`) exactly;
//! - built-in **reducers** `_count`, `_sum`, `_stats` ([`Reducer`]);
//! - a **B+-tree with pre-computed reductions in interior nodes**
//!   ([`ViewBTree`]): "a key characteristic of a view index is that it
//!   stores the pre-computed aggregates defined in the Reduce function as a
//!   part of the index tree. This allows for very fast aggregation at query
//!   time" — range reductions combine subtree aggregates in O(log n);
//! - **per-vBucket tagging inside the tree**: "information about vBuckets
//!   is stored in the view B-tree itself. Using this information, parts of
//!   a B-tree can be deactivated" — queries pass an active-vBucket set so
//!   mid-rebalance queries never double-count a moved partition;
//! - **`stale` query semantics** (`false` / `ok` / `update_after`): views
//!   are "kept up-to-date asynchronously, on demand" from the DCP feed.

pub mod btree;
pub mod engine;
pub mod mapfn;
pub mod reduce;

pub use btree::{KeyRange, ViewBTree, ViewEntry};
pub use engine::{DesignDoc, Stale, ViewDef, ViewEngine, ViewQuery, ViewResult, ViewRow};
pub use mapfn::{MapCond, MapExpr, MapFn};
pub use reduce::{Reducer, Reduction};
