//! The map-function DSL.
//!
//! Substitutes for CouchDB-style JavaScript map functions (the engineering
//! of a JS runtime is orthogonal to the indexing architecture the paper
//! describes). A [`MapFn`] is: *guard conditions* (all must hold, like the
//! `if (...)` wrapping an `emit`) and one *emit* of a key expression plus an
//! optional value expression.
//!
//! The paper's example view:
//!
//! ```text
//! function(doc) { if (doc.name) { emit(doc.name, doc.email) } }
//! ```
//!
//! becomes:
//!
//! ```
//! use cbs_views::{MapCond, MapExpr, MapFn};
//! let profile_view = MapFn {
//!     when: vec![MapCond::Exists("name".parse().unwrap())],
//!     key: MapExpr::field("name"),
//!     value: Some(MapExpr::field("email")),
//! };
//! let doc = cbs_json::parse(r#"{"name":"Dipti","email":"d@couchbase.com"}"#).unwrap();
//! let emitted = profile_view.map("borkar123", &doc).unwrap();
//! assert_eq!(emitted.0, cbs_json::Value::from("Dipti"));
//! ```

use std::cmp::Ordering;

use cbs_json::{cmp_values, JsonPath, Value};

/// An emit expression.
#[derive(Debug, Clone, PartialEq)]
pub enum MapExpr {
    /// A document field path.
    Path(JsonPath),
    /// The document's ID (`meta.id`).
    DocId,
    /// A literal.
    Const(Value),
    /// A composite array key `[expr, expr, ...]` (CouchDB's common idiom
    /// for multi-component view keys).
    Composite(Vec<MapExpr>),
    /// The whole document.
    WholeDoc,
}

impl MapExpr {
    /// Shorthand for a field path expression.
    pub fn field(path: &str) -> MapExpr {
        MapExpr::Path(cbs_json::parse_path(path).expect("valid path"))
    }

    /// Evaluate; `None` = MISSING.
    pub fn eval(&self, doc_id: &str, doc: &Value) -> Option<Value> {
        match self {
            MapExpr::Path(p) => p.eval_cloned(doc),
            MapExpr::DocId => Some(Value::from(doc_id)),
            MapExpr::Const(v) => Some(v.clone()),
            MapExpr::WholeDoc => Some(doc.clone()),
            MapExpr::Composite(parts) => {
                let vals: Vec<Value> =
                    parts.iter().map(|p| p.eval(doc_id, doc).unwrap_or(Value::Null)).collect();
                Some(Value::Array(vals))
            }
        }
    }
}

/// A guard condition.
#[derive(Debug, Clone, PartialEq)]
pub enum MapCond {
    /// The path resolves to something non-null (the JS truthiness idiom
    /// `if (doc.field)`).
    Exists(JsonPath),
    /// `path == literal` — the ubiquitous `if (doc.doc_type == "order")`
    /// pattern for mixed-type buckets.
    Eq(JsonPath, Value),
    /// `path != literal`.
    Ne(JsonPath, Value),
    /// `path > literal`.
    Gt(JsonPath, Value),
    /// `path < literal`.
    Lt(JsonPath, Value),
}

impl MapCond {
    /// Shorthand for the doc-type guard.
    pub fn doc_type(t: &str) -> MapCond {
        MapCond::Eq(cbs_json::parse_path("doc_type").unwrap(), Value::from(t))
    }

    /// Evaluate against a document.
    pub fn matches(&self, doc: &Value) -> bool {
        match self {
            MapCond::Exists(p) => {
                matches!(p.eval(doc), Some(v) if !v.is_null() && *v != Value::Bool(false))
            }
            MapCond::Eq(p, lit) => {
                matches!(p.eval(doc), Some(v) if cmp_values(v, lit) == Ordering::Equal)
            }
            MapCond::Ne(p, lit) => {
                matches!(p.eval(doc), Some(v) if cmp_values(v, lit) != Ordering::Equal)
            }
            MapCond::Gt(p, lit) => {
                matches!(p.eval(doc), Some(v) if cmp_values(v, lit) == Ordering::Greater)
            }
            MapCond::Lt(p, lit) => {
                matches!(p.eval(doc), Some(v) if cmp_values(v, lit) == Ordering::Less)
            }
        }
    }
}

/// A complete map function: guards plus one `emit(key, value)`.
#[derive(Debug, Clone, PartialEq)]
pub struct MapFn {
    /// All conditions must hold for the document to emit.
    pub when: Vec<MapCond>,
    /// The emitted key.
    pub key: MapExpr,
    /// The emitted value (`null` if absent — CouchDB's `emit(k, null)`).
    pub value: Option<MapExpr>,
}

impl MapFn {
    /// Index every document on one field (the CREATE INDEX ... USING VIEW
    /// shape from §3.3.1).
    pub fn on_field(path: &str) -> MapFn {
        MapFn {
            when: vec![MapCond::Exists(cbs_json::parse_path(path).expect("valid path"))],
            key: MapExpr::field(path),
            value: None,
        }
    }

    /// Apply to a document: `Some((key, value))` if it emits.
    pub fn map(&self, doc_id: &str, doc: &Value) -> Option<(Value, Value)> {
        if !self.when.iter().all(|c| c.matches(doc)) {
            return None;
        }
        let key = self.key.eval(doc_id, doc)?;
        let value = self
            .value
            .as_ref()
            .map(|e| e.eval(doc_id, doc).unwrap_or(Value::Null))
            .unwrap_or(Value::Null);
        Some((key, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Value {
        cbs_json::parse(
            r#"{"doc_type":"profile","name":"Dipti","email":"d@cb.com","age":30,"flag":false}"#,
        )
        .unwrap()
    }

    #[test]
    fn paper_profile_view() {
        let v = MapFn {
            when: vec![MapCond::Exists(cbs_json::parse_path("name").unwrap())],
            key: MapExpr::field("name"),
            value: Some(MapExpr::field("email")),
        };
        let (k, val) = v.map("borkar123", &doc()).unwrap();
        assert_eq!(k, Value::from("Dipti"));
        assert_eq!(val, Value::from("d@cb.com"));
        // A doc without `name` doesn't emit.
        assert!(v.map("x", &cbs_json::parse(r#"{"email":"e"}"#).unwrap()).is_none());
    }

    #[test]
    fn guards() {
        let d = doc();
        assert!(MapCond::doc_type("profile").matches(&d));
        assert!(!MapCond::doc_type("order").matches(&d));
        assert!(MapCond::Gt(cbs_json::parse_path("age").unwrap(), Value::int(21)).matches(&d));
        assert!(MapCond::Lt(cbs_json::parse_path("age").unwrap(), Value::int(40)).matches(&d));
        assert!(MapCond::Ne(cbs_json::parse_path("age").unwrap(), Value::int(0)).matches(&d));
        // JS-truthiness: false doesn't count as existing.
        assert!(!MapCond::Exists(cbs_json::parse_path("flag").unwrap()).matches(&d));
        assert!(!MapCond::Exists(cbs_json::parse_path("absent").unwrap()).matches(&d));
    }

    #[test]
    fn composite_keys_and_docid() {
        let v = MapFn {
            when: vec![],
            key: MapExpr::Composite(vec![MapExpr::field("doc_type"), MapExpr::field("age")]),
            value: Some(MapExpr::DocId),
        };
        let (k, val) = v.map("id9", &doc()).unwrap();
        assert_eq!(k, Value::Array(vec![Value::from("profile"), Value::int(30)]));
        assert_eq!(val, Value::from("id9"));
    }

    #[test]
    fn missing_key_means_no_emit() {
        let v = MapFn { when: vec![], key: MapExpr::field("nope"), value: None };
        assert!(v.map("d", &doc()).is_none());
    }

    #[test]
    fn on_field_helper() {
        let v = MapFn::on_field("email");
        let (k, val) = v.map("d", &doc()).unwrap();
        assert_eq!(k, Value::from("d@cb.com"));
        assert_eq!(val, Value::Null);
    }
}
