//! Exhaustive interleaving explorer for concurrency protocol models.
//!
//! The dependency policy (DESIGN.md) pins this workspace to a small offline
//! crate set that does not include `loom`, so this module provides the part
//! of loom we need: exhaustive schedule exploration over a small explicit
//! state machine. A protocol under test is modelled as a shared state `S`
//! plus one step function per logical thread; each step function advances its
//! thread by **one atomic action** (everything a real thread does while
//! holding a lock collapses into one step, everything between lock regions is
//! a separate step). The explorer then runs every possible interleaving of
//! those atomic actions, checking a user invariant in every reachable state
//! and reporting deadlocks (all unfinished threads blocked).
//!
//! Compared to loom this trades automatic capture of `Atomic*`/`Mutex`
//! operations for zero dependencies and full determinism: the model author
//! chooses the atomic granularity. That is the right trade here — the flusher
//! shard protocol's races (see `crates/kv/tests/flusher_models.rs`) are
//! between lock-region-sized actions, not individual memory orderings.
//!
//! States are memoised by value (`S: Clone + Eq + Hash`), so diamond-shaped
//! schedules that converge to the same state are explored once; this keeps
//! the three-thread flusher models in the low thousands of states.

use std::collections::HashSet;
use std::hash::Hash;

/// Result of running one thread for one atomic step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// The thread performed an action and may have mutated the state.
    Progressed,
    /// The thread cannot act in this state (e.g. waiting on a condvar or an
    /// empty queue). **Contract: a step returning `Blocked` must not have
    /// mutated the state** — the explorer treats the attempt as a no-op and
    /// will retry it after other threads run.
    Blocked,
    /// The thread is done; it will not be scheduled again. Mutating the state
    /// on the finishing step is allowed.
    Finished,
}

/// Why exploration stopped at a violating schedule.
#[derive(Clone, Debug)]
pub enum Violation {
    /// The user invariant failed; payload is the invariant's message.
    Invariant(String),
    /// No thread finished or can make progress: every unfinished thread is
    /// `Blocked`.
    Deadlock,
    /// The state space exceeded [`Explorer::max_states`]; the model needs a
    /// coarser atomic granularity or a bound on its data.
    StateSpaceExceeded(usize),
}

/// A violating schedule: which violation, the thread-index schedule that
/// reaches it, and a rendering of the offending state.
#[derive(Clone, Debug)]
pub struct Counterexample {
    pub violation: Violation,
    /// Thread indices in execution order; replaying these steps from the
    /// initial state reproduces the violation deterministically.
    pub schedule: Vec<usize>,
    pub state: String,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.violation {
            Violation::Invariant(msg) => write!(f, "invariant violated: {msg}")?,
            Violation::Deadlock => write!(f, "deadlock: all unfinished threads blocked")?,
            Violation::StateSpaceExceeded(n) => write!(f, "state space exceeded {n} states")?,
        }
        write!(f, "\n  schedule (thread indices): {:?}", self.schedule)?;
        write!(f, "\n  state: {}", self.state)
    }
}

/// Exploration statistics for a fully verified model.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// Distinct `(state, finished-set)` pairs visited.
    pub states: usize,
    /// Scheduling transitions taken (including ones leading to known states).
    pub transitions: usize,
    /// Complete executions (all threads finished).
    pub complete_executions: usize,
}

type ThreadFn<'m, S> = Box<dyn Fn(&mut S) -> Step + 'm>;
type InvariantFn<'m, S> = Box<dyn Fn(&S) -> Result<(), String> + 'm>;

/// Builder/driver for one model. See the module docs for the modelling
/// discipline and `crates/kv/tests/flusher_models.rs` for worked examples.
pub struct Explorer<'m, S> {
    initial: S,
    threads: Vec<ThreadFn<'m, S>>,
    invariant: InvariantFn<'m, S>,
    max_states: usize,
}

impl<'m, S: Clone + Eq + Hash + std::fmt::Debug> Explorer<'m, S> {
    pub fn new(initial: S) -> Explorer<'m, S> {
        Explorer {
            initial,
            threads: Vec::new(),
            invariant: Box::new(|_| Ok(())),
            max_states: 1_000_000,
        }
    }

    /// Add a logical thread. Step functions run under exhaustive scheduling;
    /// see [`Step`] for the per-call contract.
    pub fn thread(mut self, f: impl Fn(&mut S) -> Step + 'm) -> Self {
        self.threads.push(Box::new(f));
        self
    }

    /// Invariant checked in **every** reachable state (not just quiescent
    /// ones). Return `Err(description)` to fail exploration.
    pub fn invariant(mut self, f: impl Fn(&S) -> Result<(), String> + 'm) -> Self {
        self.invariant = Box::new(f);
        self
    }

    /// Safety bound on distinct states (default one million).
    pub fn max_states(mut self, n: usize) -> Self {
        self.max_states = n;
        self
    }

    /// Explore every interleaving. Returns stats if no schedule violates the
    /// invariant or deadlocks, otherwise the first counterexample found.
    pub fn run(&self) -> Result<Stats, Counterexample> {
        let mut stats = Stats::default();
        let mut seen: HashSet<(S, u64)> = HashSet::new();
        // DFS over (state, finished-mask, schedule-so-far).
        let mut stack: Vec<(S, u64, Vec<usize>)> = Vec::new();

        (self.invariant)(&self.initial).map_err(|msg| Counterexample {
            violation: Violation::Invariant(msg),
            schedule: Vec::new(),
            state: format!("{:?}", self.initial),
        })?;
        seen.insert((self.initial.clone(), 0));
        stack.push((self.initial.clone(), 0, Vec::new()));
        stats.states = 1;

        let all_finished: u64 = (1u64 << self.threads.len()) - 1;

        while let Some((state, finished, schedule)) = stack.pop() {
            if finished == all_finished {
                stats.complete_executions += 1;
                continue;
            }
            let mut any_runnable = false;
            for (i, thread) in self.threads.iter().enumerate() {
                if finished & (1 << i) != 0 {
                    continue;
                }
                let mut next = state.clone();
                let step = thread(&mut next);
                if step == Step::Blocked {
                    debug_assert!(
                        next == state,
                        "thread {i} mutated state while returning Blocked"
                    );
                    continue;
                }
                any_runnable = true;
                stats.transitions += 1;
                let next_finished =
                    if step == Step::Finished { finished | (1 << i) } else { finished };
                let mut next_schedule = schedule.clone();
                next_schedule.push(i);
                (self.invariant)(&next).map_err(|msg| Counterexample {
                    violation: Violation::Invariant(msg),
                    schedule: next_schedule.clone(),
                    state: format!("{next:?}"),
                })?;
                if seen.insert((next.clone(), next_finished)) {
                    stats.states += 1;
                    if stats.states > self.max_states {
                        return Err(Counterexample {
                            violation: Violation::StateSpaceExceeded(self.max_states),
                            schedule: next_schedule,
                            state: format!("{next:?}"),
                        });
                    }
                    stack.push((next, next_finished, next_schedule));
                }
            }
            if !any_runnable {
                return Err(Counterexample {
                    violation: Violation::Deadlock,
                    schedule,
                    state: format!("{state:?}"),
                });
            }
        }
        Ok(stats)
    }

    /// Assert the model verifies; panics with the counterexample otherwise.
    #[track_caller]
    pub fn check(&self) -> Stats {
        match self.run() {
            Ok(stats) => stats,
            Err(cex) => panic!("model check failed: {cex}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two increments with a read-modify-write race: the classic lost update.
    #[derive(Clone, PartialEq, Eq, Hash, Debug)]
    struct Counter {
        value: u32,
        // Per-thread register + program counter, modelling a non-atomic
        // read-then-write increment.
        reg: [u32; 2],
        pc: [u8; 2],
    }

    fn racy_inc(i: usize) -> impl Fn(&mut Counter) -> Step {
        move |s: &mut Counter| match s.pc[i] {
            0 => {
                s.reg[i] = s.value;
                s.pc[i] = 1;
                Step::Progressed
            }
            _ => {
                s.value = s.reg[i] + 1;
                Step::Finished
            }
        }
    }

    #[test]
    fn finds_lost_update() {
        let init = Counter { value: 0, reg: [0; 2], pc: [0; 2] };
        let result = Explorer::new(init)
            .thread(racy_inc(0))
            .thread(racy_inc(1))
            .invariant(|s| {
                // Final-state invariant: once both threads wrote, the count
                // must be 2. The racy schedule read-read-write-write makes
                // it 1, which exploration must find.
                if s.pc == [1, 1] && s.value == 1 {
                    Err(format!("lost update: value={}", s.value))
                } else {
                    Ok(())
                }
            })
            .run();
        let cex = result.expect_err("explorer must find the lost update");
        assert!(matches!(cex.violation, Violation::Invariant(_)));
        // Racy schedule: read, read, write (3 steps) — possibly followed by
        // the other write depending on DFS order.
        assert!(cex.schedule.len() >= 3, "schedule: {:?}", cex.schedule);
    }

    #[test]
    fn atomic_increments_verify() {
        #[derive(Clone, PartialEq, Eq, Hash, Debug)]
        struct S {
            value: u32,
        }
        let stats = Explorer::new(S { value: 0 })
            .thread(|s: &mut S| {
                s.value += 1;
                Step::Finished
            })
            .thread(|s: &mut S| {
                s.value += 1;
                Step::Finished
            })
            .invariant(|s| if s.value <= 2 { Ok(()) } else { Err("overshoot".into()) })
            .check();
        assert!(stats.complete_executions >= 1);
        assert!(stats.states >= 3);
    }

    #[test]
    fn detects_deadlock() {
        // Two threads each wait for a flag only the other would set.
        #[derive(Clone, PartialEq, Eq, Hash, Debug)]
        struct S {
            flags: [bool; 2],
        }
        let wait_then_set = |me: usize, other: usize| {
            move |s: &mut S| {
                if s.flags[other] {
                    s.flags[me] = true;
                    Step::Finished
                } else {
                    Step::Blocked
                }
            }
        };
        let result = Explorer::new(S { flags: [false, false] })
            .thread(wait_then_set(0, 1))
            .thread(wait_then_set(1, 0))
            .run();
        let cex = result.expect_err("must deadlock");
        assert!(matches!(cex.violation, Violation::Deadlock));
    }

    #[test]
    fn state_space_bound_trips() {
        #[derive(Clone, PartialEq, Eq, Hash, Debug)]
        struct S {
            n: u64,
        }
        let result = Explorer::new(S { n: 0 })
            .thread(|s: &mut S| {
                s.n += 1;
                Step::Progressed // never finishes: unbounded state space
            })
            .max_states(100)
            .run();
        let cex = result.expect_err("must trip the bound");
        assert!(matches!(cex.violation, Violation::StateSpaceExceeded(100)));
    }

    #[test]
    fn blocked_threads_unblock_when_state_changes() {
        #[derive(Clone, PartialEq, Eq, Hash, Debug)]
        struct S {
            ready: bool,
            consumed: bool,
        }
        let stats = Explorer::new(S { ready: false, consumed: false })
            .thread(|s: &mut S| {
                s.ready = true;
                Step::Finished
            })
            .thread(|s: &mut S| {
                if !s.ready {
                    return Step::Blocked;
                }
                s.consumed = true;
                Step::Finished
            })
            .invariant(|s| {
                if s.consumed && !s.ready {
                    Err("consumed before ready".into())
                } else {
                    Ok(())
                }
            })
            .check();
        assert!(stats.complete_executions >= 1);
    }
}
