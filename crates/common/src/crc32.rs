//! CRC32 key hashing.
//!
//! Couchbase smart clients "apply a hash function (CRC32) to every document"
//! and route it to the owning vBucket (paper §4.1, Figure 5). The real
//! system uses the low bits of CRC32 (the IEEE 802.3 polynomial, as used by
//! libcouchbase) over the key, modulo the vBucket count. We implement the
//! same table-driven CRC32 so that key→vBucket placement is deterministic
//! and identical on clients and servers.

/// The IEEE 802.3 reflected polynomial used by zlib/libcouchbase.
const POLY: u32 = 0xEDB8_8320;

/// Lazily-built (at const-eval time) 256-entry lookup table.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Compute the CRC32 (IEEE) checksum of `data`.
///
/// Used both for key→vBucket placement and for storage-record integrity
/// checks in `cbs-storage`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Map a document key onto one of `num_vbuckets` partitions.
///
/// Matches libcouchbase's `vbucket_get_vbucket_by_key`: CRC32 of the key,
/// shifted right 16 bits, masked to the partition count. `num_vbuckets` must
/// be a power of two (1024 in production, smaller in unit tests).
pub fn vbucket_for_key(key: &[u8], num_vbuckets: u16) -> u16 {
    debug_assert!(num_vbuckets.is_power_of_two());
    (((crc32(key) >> 16) & 0x7FFF) % num_vbuckets as u32) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_crc_vectors() {
        // Standard CRC32 ("check" value) of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn vbucket_is_stable_and_in_range() {
        for key in [b"user::1".as_slice(), b"order::42", b"", b"\xff\x00"] {
            let vb = vbucket_for_key(key, 1024);
            assert!(vb < 1024);
            assert_eq!(vb, vbucket_for_key(key, 1024), "placement must be deterministic");
        }
    }

    #[test]
    fn vbucket_distribution_is_roughly_uniform() {
        let n = 64u16;
        let mut counts = vec![0usize; n as usize];
        for i in 0..64_000 {
            let key = format!("doc-{i}");
            counts[vbucket_for_key(key.as_bytes(), n) as usize] += 1;
        }
        let expected = 64_000 / n as usize;
        for (vb, &c) in counts.iter().enumerate() {
            assert!(
                c > expected / 2 && c < expected * 2,
                "vb {vb} badly skewed: {c} vs expected {expected}"
            );
        }
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn non_power_of_two_rejected_in_debug() {
        vbucket_for_key(b"k", 1000);
    }
}
