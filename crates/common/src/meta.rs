//! Document metadata.
//!
//! The object cache keeps "the document's ID (i.e., its key), some document
//! metadata, and the document's value" for every entry (paper §4.3.3). This
//! is that metadata: it travels with every mutation through the cache, the
//! storage engine, DCP, replication and XDCR.

use crate::ids::{Cas, RevNo, SeqNo};

/// Metadata carried by every document version (including tombstones).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DocMeta {
    /// Per-vBucket mutation sequence number.
    pub seqno: SeqNo,
    /// CAS token of this mutation (optimistic locking, §3.1.1).
    pub cas: Cas,
    /// Per-document revision count (XDCR conflict-resolution key, §4.6.1).
    pub rev: RevNo,
    /// Opaque application flags (memcached heritage).
    pub flags: u32,
    /// Absolute expiry (unix seconds); 0 = no expiry.
    pub expiry: u32,
}

impl DocMeta {
    /// True if this version carries a TTL that has passed at `now` (unix
    /// seconds).
    pub fn is_expired_at(&self, now: u32) -> bool {
        self.expiry != 0 && self.expiry <= now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expiry_semantics() {
        let mut m = DocMeta::default();
        assert!(!m.is_expired_at(u32::MAX), "expiry 0 means never");
        m.expiry = 100;
        assert!(!m.is_expired_at(99));
        assert!(m.is_expired_at(100));
        assert!(m.is_expired_at(101));
    }
}
