//! Identifier newtypes shared across services.
//!
//! Using newtypes (rather than bare integers) prevents the classic bug class
//! of passing a sequence number where a CAS value was expected; the compiler
//! enforces the distinction at zero runtime cost.

use std::fmt;

/// A vBucket (virtual bucket / logical partition) identifier in `0..1024`.
///
/// Every document ID hashes (CRC32) to exactly one vBucket; vBuckets are the
/// unit of placement, replication, rebalance and DCP streaming (paper §4.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VbId(pub u16);

impl VbId {
    /// The numeric id as a `usize`, for indexing per-vBucket tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VbId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vb:{}", self.0)
    }
}

impl fmt::Display for VbId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A per-vBucket, monotonically increasing mutation sequence number.
///
/// "When a document is written, a sequence number is generated and associated
/// with the mutation. The maximum sequence number per vBucket is also
/// tracked." (paper §4.2). Seqnos order mutations inside one vBucket and are
/// the currency of DCP stream resumption and `request_plus` consistency
/// waits.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SeqNo(pub u64);

impl SeqNo {
    /// The zero seqno: "nothing has happened in this vBucket yet".
    pub const ZERO: SeqNo = SeqNo(0);

    /// The next sequence number.
    #[inline]
    pub fn next(self) -> SeqNo {
        SeqNo(self.0 + 1)
    }

    /// Raw value.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seq:{}", self.0)
    }
}

impl fmt::Display for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A compare-and-swap token ("much like a revision number", paper §3.1.1).
///
/// A fresh CAS is assigned on every successful mutation of a document. A
/// client may pass the CAS it observed back with an update; the server
/// rejects the update if the document has been mutated in between. `Cas(0)`
/// conventionally means "no CAS check" on writes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cas(pub u64);

impl Cas {
    /// The "don't check" CAS wildcard accepted by write operations.
    pub const WILDCARD: Cas = Cas(0);

    /// True if this CAS means "skip the optimistic-concurrency check".
    #[inline]
    pub fn is_wildcard(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for Cas {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cas:{:#x}", self.0)
    }
}

/// A per-document revision counter, incremented on every mutation.
///
/// Distinct from [`Cas`]: CAS values are cluster-unique tokens, while the
/// rev number literally counts updates and is the primary comparison key of
/// XDCR conflict resolution ("the document with the most updates is
/// considered the winner", paper §4.6.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RevNo(pub u64);

impl RevNo {
    /// Next revision.
    #[inline]
    pub fn next(self) -> RevNo {
        RevNo(self.0 + 1)
    }
}

impl fmt::Debug for RevNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rev:{}", self.0)
    }
}

/// Identifier of a node (server) in a cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node:{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node:{}", self.0)
    }
}

/// Identifier of a (secondary) index instance within the index service.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct IndexId(pub u64);

impl fmt::Debug for IndexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "idx:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqno_ordering_and_next() {
        let s = SeqNo::ZERO;
        assert_eq!(s.next(), SeqNo(1));
        assert!(SeqNo(5) > SeqNo(4));
        assert_eq!(SeqNo(7).get(), 7);
    }

    #[test]
    fn cas_wildcard() {
        assert!(Cas::WILDCARD.is_wildcard());
        assert!(!Cas(42).is_wildcard());
    }

    #[test]
    fn rev_next() {
        assert_eq!(RevNo(3).next(), RevNo(4));
    }

    #[test]
    fn vbid_index() {
        assert_eq!(VbId(1023).index(), 1023);
    }

    #[test]
    fn debug_formats_are_tagged() {
        assert_eq!(format!("{:?}", VbId(9)), "vb:9");
        assert_eq!(format!("{:?}", SeqNo(9)), "seq:9");
        assert_eq!(format!("{:?}", NodeId(2)), "node:2");
        assert_eq!(format!("{:?}", Cas(255)), "cas:0xff");
    }
}
