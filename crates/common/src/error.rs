//! The shared error type.
//!
//! One workspace-wide error enum keeps cross-crate plumbing simple (every
//! service can surface every other service's failures) while still being
//! precise enough for callers to branch on — e.g. the smart client retries
//! on [`Error::NotMyVbucket`], and CAS loops retry on [`Error::CasMismatch`].

use std::fmt;

use crate::ids::{NodeId, VbId};

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// All error conditions surfaced by the reproduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The requested document does not exist.
    KeyNotFound(String),
    /// An insert found the key already present.
    KeyExists(String),
    /// An update carried a stale CAS token (optimistic-locking conflict,
    /// paper §3.1.1).
    CasMismatch(String),
    /// The document is hard-locked (GETL) by another client.
    Locked(String),
    /// The contacted node does not currently own the vBucket — the client's
    /// cluster map is stale and must be refreshed (the memcached
    /// `NOT_MY_VBUCKET` response).
    NotMyVbucket(VbId),
    /// The vBucket exists on this node but is not active (replica or dead).
    VbucketNotActive(VbId),
    /// A node is down / unreachable (failure injection in the simulated
    /// transport, or a real crash in the cluster manager's view).
    NodeDown(NodeId),
    /// Durability requirement could not be met (e.g. replicate-to > replica
    /// count, or timeout waiting for persistence).
    DurabilityImpossible(String),
    /// Timed out waiting for a condition (durability observe, index
    /// catch-up for `request_plus`, `stale=false` view build, ...).
    Timeout(String),
    /// The cache is above quota and cannot admit the value (temporary OOM —
    /// clients are expected to back off and retry, as with memcached
    /// `TMPFAIL`).
    TempOom,
    /// Malformed JSON document or JSON path.
    Json(String),
    /// Storage-engine failure (I/O error, checksum mismatch, corrupt
    /// header...).
    Storage(String),
    /// N1QL lexical / syntax error.
    Parse(String),
    /// N1QL semantic error (unknown keyspace, unsupported join shape,
    /// paper §3.2.4 restrictions...).
    Plan(String),
    /// Runtime query-evaluation error.
    Eval(String),
    /// Index service error (no such index, duplicate name, building...).
    Index(String),
    /// View engine error (no such design doc / view, bad reduce...).
    View(String),
    /// Cluster-management error (rebalance in progress, unknown bucket,
    /// no quorum...).
    Cluster(String),
    /// XDCR configuration / runtime error.
    Xdcr(String),
    /// A transaction read conflicted with a concurrent transaction's
    /// in-flight write (it resolved to an aborted incarnation's marker).
    /// The scheduler re-executes the reader with a bumped incarnation;
    /// user closures must propagate this with `?`, never swallow it.
    TxnConflict(String),
    /// Catch-all for I/O with context.
    Io(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::KeyNotFound(k) => write!(f, "key not found: {k}"),
            Error::KeyExists(k) => write!(f, "key already exists: {k}"),
            Error::CasMismatch(k) => write!(f, "CAS mismatch on key: {k}"),
            Error::Locked(k) => write!(f, "key is locked: {k}"),
            Error::NotMyVbucket(vb) => write!(f, "not my vbucket: {vb:?}"),
            Error::VbucketNotActive(vb) => write!(f, "vbucket not active: {vb:?}"),
            Error::NodeDown(n) => write!(f, "node down: {n:?}"),
            Error::DurabilityImpossible(m) => write!(f, "durability impossible: {m}"),
            Error::Timeout(m) => write!(f, "timed out: {m}"),
            Error::TempOom => write!(f, "temporary OOM: cache over quota"),
            Error::Json(m) => write!(f, "json error: {m}"),
            Error::Storage(m) => write!(f, "storage error: {m}"),
            Error::Parse(m) => write!(f, "N1QL parse error: {m}"),
            Error::Plan(m) => write!(f, "N1QL plan error: {m}"),
            Error::Eval(m) => write!(f, "N1QL evaluation error: {m}"),
            Error::Index(m) => write!(f, "index error: {m}"),
            Error::View(m) => write!(f, "view error: {m}"),
            Error::Cluster(m) => write!(f, "cluster error: {m}"),
            Error::Xdcr(m) => write!(f, "xdcr error: {m}"),
            Error::TxnConflict(m) => write!(f, "transaction conflict: {m}"),
            Error::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

impl Error {
    /// True for conditions a client is expected to retry after refreshing
    /// state (stale map, transient OOM, lock contention).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Error::NotMyVbucket(_) | Error::TempOom | Error::Locked(_) | Error::VbucketNotActive(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::KeyNotFound("user::1".into());
        assert!(e.to_string().contains("user::1"));
        let e = Error::NotMyVbucket(VbId(7));
        assert!(e.to_string().contains("vb:7"));
    }

    #[test]
    fn retryability() {
        assert!(Error::NotMyVbucket(VbId(1)).is_retryable());
        assert!(Error::TempOom.is_retryable());
        assert!(Error::Locked("k".into()).is_retryable());
        assert!(!Error::KeyNotFound("k".into()).is_retryable());
        assert!(!Error::CasMismatch("k".into()).is_retryable());
    }

    #[test]
    fn io_conversion() {
        let io = std::io::Error::other("boom");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(m) if m.contains("boom")));
    }
}
