//! Shared primitives for the Couchbase Server reproduction.
//!
//! This crate holds the vocabulary types used by every other crate in the
//! workspace: identifier newtypes ([`VbId`], [`SeqNo`], [`Cas`], [`NodeId`]),
//! the CRC32 key-hashing routine that maps document IDs onto the 1024 logical
//! partitions (vBuckets) described in §4.1 of the paper, the shared error
//! type, and a monotonic CAS clock.

pub mod crc32;
pub mod error;
pub mod ids;
pub mod meta;
pub mod model;
pub mod sync;
pub mod time;

pub use crc32::{crc32, vbucket_for_key};
pub use error::{Error, Result};
pub use ids::{Cas, IndexId, NodeId, RevNo, SeqNo, VbId};
pub use meta::DocMeta;
pub use sync::{LockRank, OrderedMutex, OrderedRwLock};
pub use time::{CasClock, Deadline};

/// The fixed number of logical partitions (vBuckets) per bucket.
///
/// The paper (§4.1): "Each bucket is split into 1024 logical partitions
/// called vBuckets (vB). This is not a configurable number." We keep the same
/// default; tests may construct smaller topologies through explicit
/// configuration, but production paths use this constant.
pub const NUM_VBUCKETS: u16 = 1024;

/// Maximum number of replica copies of a bucket (paper §4.1.1: "A bucket can
/// be replicated up to 3 times, giving the user up to 4 copies").
pub const MAX_REPLICAS: u8 = 3;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_paper() {
        assert_eq!(NUM_VBUCKETS, 1024);
        assert_eq!(MAX_REPLICAS, 3);
    }
}
