//! Rank-ordered lock wrappers: a lock-order deadlock detector.
//!
//! Every lock participating in the KV/storage concurrency protocol is wrapped
//! in an [`OrderedMutex`] / [`OrderedRwLock`] carrying a [`LockRank`]. The
//! global rank order (documented in DESIGN.md §9) is the machine-checked
//! invariant: on any one thread, locks may only be acquired in strictly
//! increasing rank order. Acquiring a lock whose rank is less than or equal
//! to the highest rank already held is a potential deadlock (two threads
//! taking the same pair of locks in opposite orders), and panics immediately
//! with both hold sites when the `lock-order` feature is enabled.
//!
//! With the feature disabled (the default for release builds and benches) the
//! wrappers compile down to a bare `parking_lot` lock: the rank field is not
//! even stored, every method is `#[inline]` pass-through, and there is no
//! thread-local bookkeeping. Tier-1 tests enable the feature through
//! dev-dependencies, so every existing integration test doubles as a
//! lock-order check.
//!
//! The detector is deliberately stricter than "no cycle in the observed
//! acquisition graph": it enforces a single total order up front, so an
//! inversion is caught the first time it executes on any one thread, without
//! needing the two conflicting threads to actually interleave.

use std::ops::{Deref, DerefMut};

/// A position in the global lock order, plus a stable name for diagnostics.
///
/// Ranks are compared numerically; gaps are left between the well-known ranks
/// so future locks can slot in without renumbering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LockRank {
    pub rank: u32,
    pub name: &'static str,
}

impl LockRank {
    pub const fn new(rank: u32, name: &'static str) -> LockRank {
        LockRank { rank, name }
    }
}

/// The global lock order for the engine → flusher → storage stack.
///
/// Derived from every nesting site in `cbs-kv` and `cbs-storage` (see
/// DESIGN.md §9 for the per-edge justification). On one thread, ranks must
/// strictly increase; independent locks of the same rank (e.g. two vBucket
/// metadata locks) must never be held together.
pub mod rank {
    use super::LockRank;

    /// Per-shard flush/checkpoint cycle lock — outermost: held for a whole
    /// drain cycle while vB metadata, queues, the WAL and stores are touched.
    pub const FLUSH_CYCLE: LockRank = LockRank::new(10, "kv.shard.flush_cycle");
    /// Per-vBucket metadata (state, GETL locks).
    pub const VB_META: LockRank = LockRank::new(20, "kv.vb.meta");
    /// Per-vBucket dirty-key queue (taken under the vB metadata lock when a
    /// mutation enqueues).
    pub const DIRTY_QUEUE: LockRank = LockRank::new(30, "kv.vb.dirty_queue");
    /// Per-shard flusher wakeup generation counter (condvar seat).
    pub const FLUSH_SIGNAL: LockRank = LockRank::new(40, "kv.shard.signal");
    /// Per-shard set of vBuckets touched since the last checkpoint.
    pub const TOUCHED_SET: LockRank = LockRank::new(50, "kv.shard.touched");
    /// Per-shard group-commit WAL interior (file + length).
    pub const WAL: LockRank = LockRank::new(60, "storage.wal");
    /// Bucket-wide vBucket-store map (open/create/drop).
    pub const BUCKET_MAP: LockRank = LockRank::new(70, "storage.bucket_map");
    /// Per-vBucket store interior (file, indexes, seqnos).
    pub const VB_STORE: LockRank = LockRank::new(80, "storage.vbstore");
    /// Durability waiters' seat (condvar signalled after each commit cycle) —
    /// innermost: nothing else is acquired while it is held.
    pub const PERSIST_WAITERS: LockRank = LockRank::new(90, "kv.persist_waiters");
}

#[cfg(feature = "lock-order")]
mod tracking {
    use super::LockRank;
    use std::cell::RefCell;
    use std::panic::Location;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Held {
        rank: u32,
        name: &'static str,
        location: &'static Location<'static>,
        id: u64,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    }

    static NEXT_ID: AtomicU64 = AtomicU64::new(1);

    /// An observed "acquired `to` while holding `from`" edge, with the first
    /// site that exhibited it. Kept for diagnostics ([`super::observed_edges`]).
    #[derive(Clone, Copy)]
    pub(super) struct Edge {
        pub from: LockRank,
        pub to: LockRank,
        pub from_site: &'static Location<'static>,
        pub to_site: &'static Location<'static>,
    }

    static EDGES: parking_lot::Mutex<Vec<Edge>> = parking_lot::Mutex::new(Vec::new());

    pub(super) fn edges() -> Vec<Edge> {
        EDGES.lock().clone()
    }

    fn record_edge(from: &Held, to: LockRank, to_site: &'static Location<'static>) {
        let mut edges = EDGES.lock();
        if edges.iter().any(|e| e.from.rank == from.rank && e.to.rank == to.rank) {
            return;
        }
        edges.push(Edge {
            from: LockRank { rank: from.rank, name: from.name },
            to,
            from_site: from.location,
            to_site,
        });
    }

    pub(super) fn on_acquire(rank: LockRank, loc: &'static Location<'static>) -> u64 {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(top) = held.last() {
                record_edge(top, rank, loc);
                if rank.rank <= top.rank {
                    panic!(
                        "lock-order violation: acquiring `{}` (rank {}) at {} while holding \
                         `{}` (rank {}) acquired at {}; the global lock order (DESIGN.md §9) \
                         requires strictly increasing ranks on each thread",
                        rank.name, rank.rank, loc, top.name, top.rank, top.location
                    );
                }
            }
            held.push(Held { rank: rank.rank, name: rank.name, location: loc, id });
        });
        id
    }

    pub(super) fn on_release(id: u64) {
        // `try_with`: guards dropped during thread teardown (after the
        // thread-local is destroyed) must not double-panic.
        let _ = HELD.try_with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|h| h.id == id) {
                held.remove(pos);
            }
        });
    }

    /// RAII tracking token embedded in guards. Declared before the real guard
    /// in each wrapper struct so it is released first on drop (order between
    /// the two releases is immaterial: tracking is thread-local).
    pub(super) struct Token {
        id: u64,
    }

    impl Token {
        #[inline]
        pub(super) fn acquire(rank: LockRank, loc: &'static Location<'static>) -> Token {
            Token { id: on_acquire(rank, loc) }
        }
    }

    impl Drop for Token {
        fn drop(&mut self) {
            on_release(self.id);
        }
    }
}

/// The acquisition-order edges observed so far in this process, as
/// `((from_rank, from_name, from_site), (to_rank, to_name, to_site))`
/// strings. Empty when the `lock-order` feature is disabled. Useful for
/// dumping the live lock-rank graph from a test.
pub fn observed_edges() -> Vec<(String, String)> {
    #[cfg(feature = "lock-order")]
    {
        tracking::edges()
            .into_iter()
            .map(|e| {
                (
                    format!("{} (rank {}) at {}", e.from.name, e.from.rank, e.from_site),
                    format!("{} (rank {}) at {}", e.to.name, e.to.rank, e.to_site),
                )
            })
            .collect()
    }
    #[cfg(not(feature = "lock-order"))]
    {
        Vec::new()
    }
}

/// A `parking_lot::Mutex` that participates in the global lock order.
pub struct OrderedMutex<T: ?Sized> {
    #[cfg(feature = "lock-order")]
    rank: LockRank,
    inner: parking_lot::Mutex<T>,
}

pub struct OrderedMutexGuard<'a, T: ?Sized> {
    #[cfg(feature = "lock-order")]
    _token: tracking::Token,
    guard: parking_lot::MutexGuard<'a, T>,
}

impl<T> OrderedMutex<T> {
    #[cfg(feature = "lock-order")]
    pub const fn new(rank: LockRank, value: T) -> Self {
        OrderedMutex { rank, inner: parking_lot::Mutex::new(value) }
    }

    #[cfg(not(feature = "lock-order"))]
    #[inline]
    pub const fn new(_rank: LockRank, value: T) -> Self {
        OrderedMutex { inner: parking_lot::Mutex::new(value) }
    }
}

impl<T: ?Sized> OrderedMutex<T> {
    /// Acquire, checking the rank against this thread's held stack first so a
    /// violation panics before it can actually deadlock.
    #[track_caller]
    #[inline]
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        #[cfg(feature = "lock-order")]
        let token = tracking::Token::acquire(self.rank, std::panic::Location::caller());
        OrderedMutexGuard {
            #[cfg(feature = "lock-order")]
            _token: token,
            guard: self.inner.lock(),
        }
    }
}

impl<'a, T: ?Sized> OrderedMutexGuard<'a, T> {
    /// The underlying `parking_lot` guard, for `Condvar::wait*` interop.
    ///
    /// While a wait has the mutex released the tracker still counts it as
    /// held; that is sound because the thread is blocked for the whole gap
    /// and re-acquires before continuing.
    #[inline]
    pub fn inner_mut(&mut self) -> &mut parking_lot::MutexGuard<'a, T> {
        &mut self.guard
    }
}

impl<T: ?Sized> Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for OrderedMutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// A `parking_lot::RwLock` that participates in the global lock order.
///
/// Read and write acquisitions are both rank-checked; recursive read locking
/// of the same lock therefore also panics (it would deadlock against a queued
/// writer under `parking_lot`'s fairness policy anyway).
pub struct OrderedRwLock<T: ?Sized> {
    #[cfg(feature = "lock-order")]
    rank: LockRank,
    inner: parking_lot::RwLock<T>,
}

pub struct OrderedRwLockReadGuard<'a, T: ?Sized> {
    #[cfg(feature = "lock-order")]
    _token: tracking::Token,
    guard: parking_lot::RwLockReadGuard<'a, T>,
}

pub struct OrderedRwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(feature = "lock-order")]
    _token: tracking::Token,
    guard: parking_lot::RwLockWriteGuard<'a, T>,
}

impl<T> OrderedRwLock<T> {
    #[cfg(feature = "lock-order")]
    pub const fn new(rank: LockRank, value: T) -> Self {
        OrderedRwLock { rank, inner: parking_lot::RwLock::new(value) }
    }

    #[cfg(not(feature = "lock-order"))]
    #[inline]
    pub const fn new(_rank: LockRank, value: T) -> Self {
        OrderedRwLock { inner: parking_lot::RwLock::new(value) }
    }
}

impl<T: ?Sized> OrderedRwLock<T> {
    #[track_caller]
    #[inline]
    pub fn read(&self) -> OrderedRwLockReadGuard<'_, T> {
        #[cfg(feature = "lock-order")]
        let token = tracking::Token::acquire(self.rank, std::panic::Location::caller());
        OrderedRwLockReadGuard {
            #[cfg(feature = "lock-order")]
            _token: token,
            guard: self.inner.read(),
        }
    }

    #[track_caller]
    #[inline]
    pub fn write(&self) -> OrderedRwLockWriteGuard<'_, T> {
        #[cfg(feature = "lock-order")]
        let token = tracking::Token::acquire(self.rank, std::panic::Location::caller());
        OrderedRwLockWriteGuard {
            #[cfg(feature = "lock-order")]
            _token: token,
            guard: self.inner.write(),
        }
    }
}

impl<T: ?Sized> Deref for OrderedRwLockReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Deref for OrderedRwLockWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for OrderedRwLockWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOW: LockRank = LockRank::new(1, "test.low");
    const HIGH: LockRank = LockRank::new(2, "test.high");

    #[test]
    fn increasing_rank_order_is_fine() {
        let a = OrderedMutex::new(LOW, 1u32);
        let b = OrderedMutex::new(HIGH, 2u32);
        let ga = a.lock();
        let gb = b.lock();
        assert_eq!(*ga + *gb, 3);
    }

    #[test]
    fn sequential_reacquire_is_fine() {
        let a = OrderedMutex::new(LOW, 0u32);
        *a.lock() += 1;
        *a.lock() += 1;
        assert_eq!(*a.lock(), 2);
    }

    #[test]
    fn rwlock_read_then_higher_write_is_fine() {
        let a = OrderedRwLock::new(LOW, 1u32);
        let b = OrderedRwLock::new(HIGH, 0u32);
        let ga = a.read();
        *b.write() = *ga;
        drop(ga);
        assert_eq!(*b.read(), 1);
    }

    #[cfg(feature = "lock-order")]
    #[test]
    fn inverted_acquisition_panics() {
        // Run the inversion on a scratch thread so the panic (and its
        // poisoned thread-local state) cannot leak into other tests.
        let result = std::thread::spawn(|| {
            let a = OrderedMutex::new(LOW, ());
            let b = OrderedMutex::new(HIGH, ());
            let _gb = b.lock();
            let _ga = a.lock(); // rank 1 while holding rank 2: inversion
        })
        .join();
        let err = result.expect_err("inversion must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lock-order violation"), "got: {msg}");
        assert!(msg.contains("test.low"), "panic names the acquired lock: {msg}");
        assert!(msg.contains("test.high"), "panic names the held lock: {msg}");
    }

    #[cfg(feature = "lock-order")]
    #[test]
    fn same_rank_nesting_panics() {
        let result = std::thread::spawn(|| {
            let a = OrderedMutex::new(LOW, ());
            let b = OrderedMutex::new(LOW, ());
            let _ga = a.lock();
            let _gb = b.lock(); // same rank held twice: order between them undefined
        })
        .join();
        assert!(result.is_err(), "same-rank nesting must panic");
    }

    #[cfg(feature = "lock-order")]
    #[test]
    fn rwlock_inversion_panics() {
        let result = std::thread::spawn(|| {
            let a = OrderedRwLock::new(LOW, ());
            let b = OrderedRwLock::new(HIGH, ());
            let _gb = b.read();
            let _ga = a.read(); // reads are rank-checked too
        })
        .join();
        assert!(result.is_err(), "read-lock inversion must panic");
    }

    #[cfg(feature = "lock-order")]
    #[test]
    fn release_unwinds_the_held_stack() {
        // After dropping the high-rank guard the thread may acquire lower
        // ranks again: the stack really pops.
        let a = OrderedMutex::new(LOW, ());
        let b = OrderedMutex::new(HIGH, ());
        {
            let _gb = b.lock();
        }
        let _ga = a.lock();
        let _gb = b.lock();
    }

    #[cfg(feature = "lock-order")]
    #[test]
    fn edges_are_recorded() {
        let a = OrderedMutex::new(LockRank::new(3, "test.edge_from"), ());
        let b = OrderedMutex::new(LockRank::new(4, "test.edge_to"), ());
        let _ga = a.lock();
        let _gb = b.lock();
        let edges = observed_edges();
        assert!(
            edges.iter().any(|(f, t)| f.contains("test.edge_from") && t.contains("test.edge_to")),
            "edge recorded: {edges:?}"
        );
    }
}
