//! Rank-ordered lock wrappers: a lock-order deadlock detector.
//!
//! Every lock participating in the KV/storage concurrency protocol is wrapped
//! in an [`OrderedMutex`] / [`OrderedRwLock`] carrying a [`LockRank`]. The
//! global rank order (documented in DESIGN.md §9) is the machine-checked
//! invariant: on any one thread, locks may only be acquired in strictly
//! increasing rank order. Acquiring a lock whose rank is less than or equal
//! to the highest rank already held is a potential deadlock (two threads
//! taking the same pair of locks in opposite orders), and panics immediately
//! with both hold sites when the `lock-order` feature is enabled.
//!
//! With the feature disabled (the default for release builds and benches) the
//! wrappers compile down to a bare `parking_lot` lock: the rank field is not
//! even stored, every method is `#[inline]` pass-through, and there is no
//! thread-local bookkeeping. Tier-1 tests enable the feature through
//! dev-dependencies, so every existing integration test doubles as a
//! lock-order check.
//!
//! The detector is deliberately stricter than "no cycle in the observed
//! acquisition graph": it enforces a single total order up front, so an
//! inversion is caught the first time it executes on any one thread, without
//! needing the two conflicting threads to actually interleave.

use std::ops::{Deref, DerefMut};

/// A position in the global lock order, plus a stable name for diagnostics.
///
/// Ranks are compared numerically; gaps are left between the well-known ranks
/// so future locks can slot in without renumbering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LockRank {
    pub rank: u32,
    pub name: &'static str,
}

impl LockRank {
    pub const fn new(rank: u32, name: &'static str) -> LockRank {
        LockRank { rank, name }
    }
}

/// The global lock order for the engine → flusher → storage stack.
///
/// Derived from every nesting site in `cbs-kv` and `cbs-storage` (see
/// DESIGN.md §9 for the per-edge justification). On one thread, ranks must
/// strictly increase; independent locks of the same rank (e.g. two vBucket
/// metadata locks) must never be held together.
pub mod rank {
    use super::LockRank;

    /// Smart client's cached cluster map. Leaf in practice (refresh
    /// fetches the fresh map *before* taking the write lock), but ranked
    /// outermost because it is client-side: nothing server-side may ever
    /// be held when a client routes.
    pub const CLIENT_MAP: LockRank = LockRank::new(1, "cluster.client.map");
    /// Orchestrator's bucket → cluster-map table. Failover mutates a map
    /// in place under this lock while consulting node liveness and engine
    /// seqnos, so it precedes the node list and every node/KV rank.
    pub const CLUSTER_MAPS: LockRank = LockRank::new(2, "cluster.topology.maps");
    /// Orchestrator's node list. Held (as a read guard) while iterating
    /// nodes for bucket creation and topology snapshots, which descend
    /// into the per-node maps below.
    pub const CLUSTER_NODES: LockRank = LockRank::new(3, "cluster.topology.nodes");
    /// Orchestrator's bucket → DCP-pump registry. Insert/remove only;
    /// pumps are constructed before and joined after the guarded window.
    pub const CLUSTER_PUMPS: LockRank = LockRank::new(4, "cluster.topology.pumps");
    /// Node-wide bucket → data-engine map. Above every KV/storage rank:
    /// bucket create/delete may open engines (and therefore files) while
    /// the map is consulted, so the map must sit at the very top of the
    /// order. Engine construction itself happens *outside* the lock (see
    /// `Node::create_bucket`); the rank guards the residual insert window.
    pub const NODE_ENGINES: LockRank = LockRank::new(5, "cluster.node.engines");
    /// Node-wide list of flusher handles (spawned per bucket, drained on
    /// shutdown). Taken after the engine map during bucket creation.
    pub const NODE_FLUSHERS: LockRank = LockRank::new(6, "cluster.node.flushers");
    /// Node-wide bucket → view-engine map (taken last during bucket
    /// creation, before any KV rank).
    pub const NODE_VIEW_ENGINES: LockRank = LockRank::new(7, "cluster.node.view_engines");
    /// Query datastore's pool of per-bucket smart clients. Taken with
    /// nothing held; connecting a new client (which fetches maps) happens
    /// between the read probe and the write insert.
    pub const QUERY_CLIENTS: LockRank = LockRank::new(8, "n1ql.datastore.clients");
    /// Per-shard flush/checkpoint cycle lock — outermost: held for a whole
    /// drain cycle while vB metadata, queues, the WAL and stores are touched.
    pub const FLUSH_CYCLE: LockRank = LockRank::new(10, "kv.shard.flush_cycle");
    /// View engine's ddoc registry. Held across design-doc creation,
    /// which opens DCP streams per vBucket (rank `DCP_CHANNEL`).
    pub const VIEWS_DDOCS: LockRank = LockRank::new(12, "views.engine.ddocs");
    /// Per-ddoc DCP stream set. Held while draining streams for
    /// `stale=false` updates, which waits on the DCP channel.
    pub const VIEWS_DDOC_STREAMS: LockRank = LockRank::new(14, "views.ddoc.streams");
    /// Per-ddoc materialized view B-trees. Queries hold it while checking
    /// vBucket states on the engine (rank `VB_META`).
    pub const VIEWS_DDOC_VIEWS: LockRank = LockRank::new(16, "views.ddoc.views");
    /// Per-vBucket metadata (state, GETL locks).
    pub const VB_META: LockRank = LockRank::new(20, "kv.vb.meta");
    /// Per-vBucket DCP channel (stream registry + retained tail). Taken
    /// under the vB metadata lock when a mutation publishes; a stream open
    /// holds it across `backfill`, which descends into the storage ranks.
    pub const DCP_CHANNEL: LockRank = LockRank::new(25, "kv.dcp.channel");
    /// Managed-cache shard (vBucket-sharded object table). Taken under the
    /// vB metadata lock (lazy expiry) and under the DCP channel (a stream
    /// open snapshots dirty residents during backfill); acquires nothing
    /// itself.
    pub const CACHE_SHARD: LockRank = LockRank::new(27, "kv.cache.shard");
    /// Per-vBucket dirty-key queue (taken under the vB metadata lock when a
    /// mutation enqueues).
    pub const DIRTY_QUEUE: LockRank = LockRank::new(30, "kv.vb.dirty_queue");
    /// Per-shard flusher wakeup generation counter (condvar seat).
    pub const FLUSH_SIGNAL: LockRank = LockRank::new(40, "kv.shard.signal");
    /// Per-shard set of vBuckets touched since the last checkpoint.
    pub const TOUCHED_SET: LockRank = LockRank::new(50, "kv.shard.touched");
    /// Per-shard group-commit WAL interior (file + length).
    pub const WAL: LockRank = LockRank::new(60, "storage.wal");
    /// Bucket-wide vBucket-store map (open/create/drop).
    pub const BUCKET_MAP: LockRank = LockRank::new(70, "storage.bucket_map");
    /// Per-vBucket store interior (file, indexes, seqnos).
    pub const VB_STORE: LockRank = LockRank::new(80, "storage.vbstore");
    /// Durability waiters' seat (condvar signalled after each commit cycle) —
    /// innermost: nothing else is acquired while it is held.
    pub const PERSIST_WAITERS: LockRank = LockRank::new(90, "kv.persist_waiters");
    /// GSI index-manager registry ((keyspace, name) → instance). Held (as
    /// a read guard) while probing per-instance state on list paths.
    pub const INDEX_REGISTRY: LockRank = LockRank::new(100, "index.manager.registry");
    /// Per-index lifecycle state (deferred/building/online). Held across
    /// partition catch-up, which locks the partition trees.
    pub const INDEX_STATE: LockRank = LockRank::new(102, "index.instance.state");
    /// Per-partition index B-tree. Innermost of the index ranks.
    pub const INDEX_TREE: LockRank = LockRank::new(104, "index.partition.tree");
    /// FTS service registry ((keyspace, name) → instance).
    pub const FTS_REGISTRY: LockRank = LockRank::new(106, "fts.service.registry");
    /// Per-FTS-index inverted index.
    pub const FTS_INDEX: LockRank = LockRank::new(107, "fts.index.inverted");
    /// Per-FTS-index vBucket watermark vector (condvar seat for
    /// consistent-search waits).
    pub const FTS_WATERMARKS: LockRank = LockRank::new(108, "fts.index.watermarks");
    /// Query-service request log, in-flight table. Leaf: statement-scoped
    /// insert/remove only, nothing acquired under it.
    pub const REQLOG_ACTIVE: LockRank = LockRank::new(110, "n1ql.reqlog.active");
    /// Query-service request log, completed ring. Leaf.
    pub const REQLOG_COMPLETED: LockRank = LockRank::new(120, "n1ql.reqlog.completed");
    /// In-memory test datastore's keyspace table. Leaf: document
    /// mutations and scans only.
    pub const N1QL_KEYSPACES: LockRank = LockRank::new(125, "n1ql.memds.keyspaces");
    /// Optimizer statistics memo (epoch-stamped per-keyspace snapshots).
    /// Leaf: collection closures run between, never under, the lock.
    pub const N1QL_STATS: LockRank = LockRank::new(130, "n1ql.stats");
    /// Plan-cache shard (statement → plan). Lookup consults the epoch
    /// table while holding a shard, so shards precede epochs.
    pub const N1QL_PLAN_SHARD: LockRank = LockRank::new(132, "n1ql.plancache.shard");
    /// Plan-cache keyspace epoch table. Taken under a plan-cache shard on
    /// the lookup staleness re-check.
    pub const N1QL_PLAN_EPOCHS: LockRank = LockRank::new(134, "n1ql.plancache.epochs");
    /// Prepared-statement registry. Leaf.
    pub const N1QL_PREPARED: LockRank = LockRank::new(136, "n1ql.plancache.prepared");
    /// Transaction scheduler's per-batch state (statuses, commit
    /// frontier, execution records). Held while resolving multi-version
    /// reads during validation, so it precedes the MV shards; never held
    /// across closure execution or engine/client calls.
    pub const TXN_SCHED: LockRank = LockRank::new(138, "txn.scheduler.state");
    /// One multi-version memory shard (doc key → versioned write
    /// entries). Taken under the scheduler state during validation;
    /// released before any storage fall-through.
    pub const TXN_MV: LockRank = LockRank::new(140, "txn.mv.shard");
    /// Per-batch base snapshot cache (first storage read per key).
    /// Leaf: the engine/client read happens between, never under, the
    /// lock.
    pub const TXN_BASE: LockRank = LockRank::new(142, "txn.base.snapshot");
    /// Cluster-wide committed/aborted transaction ring feeding the
    /// `system:transactions` catalog. Leaf.
    pub const TXN_LOG: LockRank = LockRank::new(144, "cluster.txn.log");
}

#[cfg(feature = "lock-order")]
mod tracking {
    use super::LockRank;
    use std::cell::RefCell;
    use std::panic::Location;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Held {
        rank: u32,
        name: &'static str,
        location: &'static Location<'static>,
        id: u64,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    }

    static NEXT_ID: AtomicU64 = AtomicU64::new(1);

    /// An observed "acquired `to` while holding `from`" edge, with the first
    /// site that exhibited it. Kept for diagnostics ([`super::observed_edges`]).
    #[derive(Clone, Copy)]
    pub(super) struct Edge {
        pub from: LockRank,
        pub to: LockRank,
        pub from_site: &'static Location<'static>,
        pub to_site: &'static Location<'static>,
    }

    static EDGES: parking_lot::Mutex<Vec<Edge>> = parking_lot::Mutex::new(Vec::new());

    pub(super) fn edges() -> Vec<Edge> {
        EDGES.lock().clone()
    }

    fn record_edge(from: &Held, to: LockRank, to_site: &'static Location<'static>) {
        let mut edges = EDGES.lock();
        if edges.iter().any(|e| e.from.rank == from.rank && e.to.rank == to.rank) {
            return;
        }
        edges.push(Edge {
            from: LockRank { rank: from.rank, name: from.name },
            to,
            from_site: from.location,
            to_site,
        });
    }

    /// A path `from → … → to` through the recorded acquisition edges, if one
    /// exists. On a violation this is the other half of the deadlock cycle:
    /// the thread(s) that acquired the same locks in the sanctioned order.
    fn witness_path(from: u32, to: u32) -> Option<Vec<Edge>> {
        let edges = EDGES.lock().clone();
        // Iterative DFS carrying the edge path; the graph is tiny (one node
        // per distinct rank, at most one edge per ordered pair).
        let mut stack: Vec<(u32, Vec<Edge>)> = vec![(from, Vec::new())];
        let mut visited = vec![from];
        while let Some((at, path)) = stack.pop() {
            for e in edges.iter().filter(|e| e.from.rank == at) {
                let mut path = path.clone();
                path.push(*e);
                if e.to.rank == to {
                    return Some(path);
                }
                if !visited.contains(&e.to.rank) {
                    visited.push(e.to.rank);
                    stack.push((e.to.rank, path));
                }
            }
        }
        None
    }

    pub(super) fn on_acquire(rank: LockRank, loc: &'static Location<'static>) -> u64 {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(top) = held.last() {
                if rank.rank <= top.rank {
                    // The offending edge plus any previously recorded path
                    // running the other way is the full deadlock cycle; print
                    // every contributing edge with its acquire sites, not
                    // just the pair that tripped the check.
                    let mut cycle = format!(
                        "  `{}` (rank {}) -> `{}` (rank {}): this acquisition \
                         (held at {}, acquiring at {})",
                        top.name, top.rank, rank.name, rank.rank, top.location, loc
                    );
                    match witness_path(rank.rank, top.rank) {
                        Some(path) => {
                            for e in path {
                                cycle.push_str(&format!(
                                    "\n  `{}` (rank {}) -> `{}` (rank {}): recorded earlier \
                                     (held at {}, acquired at {})",
                                    e.from.name,
                                    e.from.rank,
                                    e.to.name,
                                    e.to.rank,
                                    e.from_site,
                                    e.to_site
                                ));
                            }
                        }
                        None => cycle.push_str(
                            "\n  (no opposite-order path recorded yet: this is a rank-policy \
                             violation caught before both halves of the cycle ever ran)",
                        ),
                    }
                    panic!(
                        "lock-order violation: acquiring `{}` (rank {}) at {} while holding \
                         `{}` (rank {}) acquired at {}; witness cycle through the recorded \
                         acquisition graph:\n{}\nthe global lock order (DESIGN.md §9) requires \
                         strictly increasing ranks on each thread",
                        rank.name, rank.rank, loc, top.name, top.rank, top.location, cycle
                    );
                }
                record_edge(top, rank, loc);
            }
            held.push(Held { rank: rank.rank, name: rank.name, location: loc, id });
        });
        id
    }

    pub(super) fn on_release(id: u64) {
        // `try_with`: guards dropped during thread teardown (after the
        // thread-local is destroyed) must not double-panic.
        let _ = HELD.try_with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|h| h.id == id) {
                held.remove(pos);
            }
        });
    }

    /// RAII tracking token embedded in guards. Declared before the real guard
    /// in each wrapper struct so it is released first on drop (order between
    /// the two releases is immaterial: tracking is thread-local).
    pub(super) struct Token {
        id: u64,
    }

    impl Token {
        #[inline]
        pub(super) fn acquire(rank: LockRank, loc: &'static Location<'static>) -> Token {
            Token { id: on_acquire(rank, loc) }
        }
    }

    impl Drop for Token {
        fn drop(&mut self) {
            on_release(self.id);
        }
    }
}

/// The acquisition-order edges observed so far in this process, as
/// `((from_rank, from_name, from_site), (to_rank, to_name, to_site))`
/// strings. Empty when the `lock-order` feature is disabled. Useful for
/// dumping the live lock-rank graph from a test.
pub fn observed_edges() -> Vec<(String, String)> {
    #[cfg(feature = "lock-order")]
    {
        tracking::edges()
            .into_iter()
            .map(|e| {
                (
                    format!("{} (rank {}) at {}", e.from.name, e.from.rank, e.from_site),
                    format!("{} (rank {}) at {}", e.to.name, e.to.rank, e.to_site),
                )
            })
            .collect()
    }
    #[cfg(not(feature = "lock-order"))]
    {
        Vec::new()
    }
}

/// A `parking_lot::Mutex` that participates in the global lock order.
pub struct OrderedMutex<T: ?Sized> {
    #[cfg(feature = "lock-order")]
    rank: LockRank,
    inner: parking_lot::Mutex<T>,
}

pub struct OrderedMutexGuard<'a, T: ?Sized> {
    #[cfg(feature = "lock-order")]
    _token: tracking::Token,
    guard: parking_lot::MutexGuard<'a, T>,
}

impl<T> OrderedMutex<T> {
    #[cfg(feature = "lock-order")]
    pub const fn new(rank: LockRank, value: T) -> Self {
        OrderedMutex { rank, inner: parking_lot::Mutex::new(value) }
    }

    #[cfg(not(feature = "lock-order"))]
    #[inline]
    pub const fn new(_rank: LockRank, value: T) -> Self {
        OrderedMutex { inner: parking_lot::Mutex::new(value) }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Non-blocking, like parking_lot's own impl: never rank-checked
        // (a Debug format must not panic the lock-order detector).
        match self.inner.try_lock() {
            Some(guard) => f.debug_struct("OrderedMutex").field("data", &&*guard).finish(),
            None => f.debug_struct("OrderedMutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> OrderedMutex<T> {
    /// Acquire, checking the rank against this thread's held stack first so a
    /// violation panics before it can actually deadlock.
    #[track_caller]
    #[inline]
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        #[cfg(feature = "lock-order")]
        let token = tracking::Token::acquire(self.rank, std::panic::Location::caller());
        OrderedMutexGuard {
            #[cfg(feature = "lock-order")]
            _token: token,
            guard: self.inner.lock(),
        }
    }
}

impl<'a, T: ?Sized> OrderedMutexGuard<'a, T> {
    /// The underlying `parking_lot` guard, for `Condvar::wait*` interop.
    ///
    /// While a wait has the mutex released the tracker still counts it as
    /// held; that is sound because the thread is blocked for the whole gap
    /// and re-acquires before continuing.
    #[inline]
    pub fn inner_mut(&mut self) -> &mut parking_lot::MutexGuard<'a, T> {
        &mut self.guard
    }
}

impl<T: ?Sized> Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for OrderedMutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// A `parking_lot::RwLock` that participates in the global lock order.
///
/// Read and write acquisitions are both rank-checked; recursive read locking
/// of the same lock therefore also panics (it would deadlock against a queued
/// writer under `parking_lot`'s fairness policy anyway).
pub struct OrderedRwLock<T: ?Sized> {
    #[cfg(feature = "lock-order")]
    rank: LockRank,
    inner: parking_lot::RwLock<T>,
}

pub struct OrderedRwLockReadGuard<'a, T: ?Sized> {
    #[cfg(feature = "lock-order")]
    _token: tracking::Token,
    guard: parking_lot::RwLockReadGuard<'a, T>,
}

pub struct OrderedRwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(feature = "lock-order")]
    _token: tracking::Token,
    guard: parking_lot::RwLockWriteGuard<'a, T>,
}

impl<T> OrderedRwLock<T> {
    #[cfg(feature = "lock-order")]
    pub const fn new(rank: LockRank, value: T) -> Self {
        OrderedRwLock { rank, inner: parking_lot::RwLock::new(value) }
    }

    #[cfg(not(feature = "lock-order"))]
    #[inline]
    pub const fn new(_rank: LockRank, value: T) -> Self {
        OrderedRwLock { inner: parking_lot::RwLock::new(value) }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for OrderedRwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_read() {
            Some(guard) => f.debug_struct("OrderedRwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("OrderedRwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> OrderedRwLock<T> {
    #[track_caller]
    #[inline]
    pub fn read(&self) -> OrderedRwLockReadGuard<'_, T> {
        #[cfg(feature = "lock-order")]
        let token = tracking::Token::acquire(self.rank, std::panic::Location::caller());
        OrderedRwLockReadGuard {
            #[cfg(feature = "lock-order")]
            _token: token,
            guard: self.inner.read(),
        }
    }

    #[track_caller]
    #[inline]
    pub fn write(&self) -> OrderedRwLockWriteGuard<'_, T> {
        #[cfg(feature = "lock-order")]
        let token = tracking::Token::acquire(self.rank, std::panic::Location::caller());
        OrderedRwLockWriteGuard {
            #[cfg(feature = "lock-order")]
            _token: token,
            guard: self.inner.write(),
        }
    }
}

impl<T: ?Sized> Deref for OrderedRwLockReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Deref for OrderedRwLockWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for OrderedRwLockWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOW: LockRank = LockRank::new(1, "test.low");
    const HIGH: LockRank = LockRank::new(2, "test.high");

    #[test]
    fn increasing_rank_order_is_fine() {
        let a = OrderedMutex::new(LOW, 1u32);
        let b = OrderedMutex::new(HIGH, 2u32);
        let ga = a.lock();
        let gb = b.lock();
        assert_eq!(*ga + *gb, 3);
    }

    #[test]
    fn sequential_reacquire_is_fine() {
        let a = OrderedMutex::new(LOW, 0u32);
        *a.lock() += 1;
        *a.lock() += 1;
        assert_eq!(*a.lock(), 2);
    }

    #[test]
    fn rwlock_read_then_higher_write_is_fine() {
        let a = OrderedRwLock::new(LOW, 1u32);
        let b = OrderedRwLock::new(HIGH, 0u32);
        let ga = a.read();
        *b.write() = *ga;
        drop(ga);
        assert_eq!(*b.read(), 1);
    }

    #[cfg(feature = "lock-order")]
    #[test]
    fn inverted_acquisition_panics() {
        // Run the inversion on a scratch thread so the panic (and its
        // poisoned thread-local state) cannot leak into other tests.
        let result = std::thread::spawn(|| {
            let a = OrderedMutex::new(LOW, ());
            let b = OrderedMutex::new(HIGH, ());
            let _gb = b.lock();
            let _ga = a.lock(); // rank 1 while holding rank 2: inversion
        })
        .join();
        let err = result.expect_err("inversion must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lock-order violation"), "got: {msg}");
        assert!(msg.contains("test.low"), "panic names the acquired lock: {msg}");
        assert!(msg.contains("test.high"), "panic names the held lock: {msg}");
    }

    #[cfg(feature = "lock-order")]
    #[test]
    fn same_rank_nesting_panics() {
        let result = std::thread::spawn(|| {
            let a = OrderedMutex::new(LOW, ());
            let b = OrderedMutex::new(LOW, ());
            let _ga = a.lock();
            let _gb = b.lock(); // same rank held twice: order between them undefined
        })
        .join();
        assert!(result.is_err(), "same-rank nesting must panic");
    }

    #[cfg(feature = "lock-order")]
    #[test]
    fn rwlock_inversion_panics() {
        let result = std::thread::spawn(|| {
            let a = OrderedRwLock::new(LOW, ());
            let b = OrderedRwLock::new(HIGH, ());
            let _gb = b.read();
            let _ga = a.read(); // reads are rank-checked too
        })
        .join();
        assert!(result.is_err(), "read-lock inversion must panic");
    }

    #[cfg(feature = "lock-order")]
    #[test]
    fn release_unwinds_the_held_stack() {
        // After dropping the high-rank guard the thread may acquire lower
        // ranks again: the stack really pops.
        let a = OrderedMutex::new(LOW, ());
        let b = OrderedMutex::new(HIGH, ());
        {
            let _gb = b.lock();
        }
        let _ga = a.lock();
        let _gb = b.lock();
    }

    #[cfg(feature = "lock-order")]
    #[test]
    fn violation_panic_reports_the_full_witness_cycle() {
        const WLOW: LockRank = LockRank::new(101, "test.wit_low");
        const WHIGH: LockRank = LockRank::new(102, "test.wit_high");
        static A: OrderedMutex<()> = OrderedMutex::new(WLOW, ());
        static B: OrderedMutex<()> = OrderedMutex::new(WHIGH, ());
        // Thread 1 takes the sanctioned order, recording the low -> high edge.
        std::thread::spawn(|| {
            let _ga = A.lock();
            let _gb = B.lock();
        })
        .join()
        .unwrap();
        // Thread 2 inverts it; the panic must print *both* halves of the
        // cycle — the offending high -> low acquisition and the recorded
        // low -> high edge with its acquire sites — not just the pair.
        let err = std::thread::spawn(|| {
            let _gb = B.lock();
            let _ga = A.lock();
        })
        .join()
        .expect_err("inversion must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("witness cycle"), "got: {msg}");
        assert!(
            msg.contains("`test.wit_high` (rank 102) -> `test.wit_low` (rank 101)"),
            "offending edge printed: {msg}"
        );
        assert!(
            msg.contains("`test.wit_low` (rank 101) -> `test.wit_high` (rank 102)"),
            "recorded opposite-order edge printed: {msg}"
        );
        assert!(msg.contains("recorded earlier"), "edge provenance printed: {msg}");
    }

    #[cfg(feature = "lock-order")]
    #[test]
    fn edges_are_recorded() {
        let a = OrderedMutex::new(LockRank::new(3, "test.edge_from"), ());
        let b = OrderedMutex::new(LockRank::new(4, "test.edge_to"), ());
        let _ga = a.lock();
        let _gb = b.lock();
        let edges = observed_edges();
        assert!(
            edges.iter().any(|(f, t)| f.contains("test.edge_from") && t.contains("test.edge_to")),
            "edge recorded: {edges:?}"
        );
    }
}
