//! Monotonic CAS generation.
//!
//! Couchbase derives CAS tokens from a hybrid logical clock: physical
//! nanoseconds, bumped to strictly exceed the last issued value so that CAS
//! tokens are unique and monotone even when the wall clock stalls or steps
//! backwards. We reproduce that scheme: it gives (a) unique tokens for
//! optimistic locking and (b) a roughly time-ordered metadata field usable
//! as an XDCR conflict-resolution tiebreaker (paper §4.6.1).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::ids::Cas;

/// Current wall-clock time as whole seconds since the Unix epoch.
///
/// This (together with [`Deadline`] and [`CasClock`]) is the blessed
/// wall-clock read point for the workspace: hot-path and simulated-cluster
/// code must route through `cbs_common::time` rather than calling
/// `SystemTime::now` / `Instant::now` directly, so time access stays at one
/// auditable choke point (`cargo xtask lint` enforces this for the cluster
/// transport).
pub fn now_unix_secs() -> u32 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs() as u32).unwrap_or(0)
}

/// A monotonic deadline for timeout/retry loops.
///
/// Wraps the two `Instant::now` reads a deadline loop needs (creation and
/// expiry checks) behind one type, so call sites carry no direct wall-clock
/// reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `timeout` from now.
    pub fn after(timeout: Duration) -> Deadline {
        Deadline { at: Instant::now() + timeout }
    }

    /// Has the deadline passed?
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left until the deadline (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }

    /// The underlying instant, for `Condvar::wait_until`-style APIs.
    pub fn instant(&self) -> Instant {
        self.at
    }
}

/// A process-wide monotone CAS generator.
#[derive(Debug, Default)]
pub struct CasClock {
    last: AtomicU64,
}

impl CasClock {
    /// New clock starting from the current wall time.
    pub fn new() -> Self {
        CasClock { last: AtomicU64::new(0) }
    }

    /// Issue a fresh CAS token, strictly greater than any previously issued
    /// by this clock, seeded from wall-clock nanoseconds when possible.
    pub fn next(&self) -> Cas {
        let now =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0);
        let mut prev = self.last.load(Ordering::Relaxed);
        loop {
            let candidate = now.max(prev + 1);
            match self.last.compare_exchange_weak(
                prev,
                candidate,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Cas(candidate),
                Err(actual) => prev = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn deadline_expires() {
        let d = Deadline::after(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(1));
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
        let far = Deadline::after(Duration::from_secs(3600));
        assert!(!far.expired());
        assert!(far.remaining() > Duration::from_secs(3000));
        assert!(far.instant() > Instant::now());
    }

    #[test]
    fn unix_secs_is_sane() {
        let s = now_unix_secs();
        // After 2020-01-01, before 2100.
        assert!(s > 1_577_836_800, "unix seconds too small: {s}");
    }

    #[test]
    fn cas_is_strictly_monotone() {
        let clock = CasClock::new();
        let mut prev = Cas(0);
        for _ in 0..10_000 {
            let c = clock.next();
            assert!(c > prev, "CAS must be strictly increasing");
            prev = c;
        }
    }

    #[test]
    fn cas_unique_across_threads() {
        let clock = Arc::new(CasClock::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let clock = Arc::clone(&clock);
            handles.push(std::thread::spawn(move || {
                (0..5_000).map(|_| clock.next().0).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "CAS tokens must be unique across threads");
    }
}
