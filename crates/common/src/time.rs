//! Monotonic CAS generation.
//!
//! Couchbase derives CAS tokens from a hybrid logical clock: physical
//! nanoseconds, bumped to strictly exceed the last issued value so that CAS
//! tokens are unique and monotone even when the wall clock stalls or steps
//! backwards. We reproduce that scheme: it gives (a) unique tokens for
//! optimistic locking and (b) a roughly time-ordered metadata field usable
//! as an XDCR conflict-resolution tiebreaker (paper §4.6.1).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::ids::Cas;

/// A process-wide monotone CAS generator.
#[derive(Debug, Default)]
pub struct CasClock {
    last: AtomicU64,
}

impl CasClock {
    /// New clock starting from the current wall time.
    pub fn new() -> Self {
        CasClock { last: AtomicU64::new(0) }
    }

    /// Issue a fresh CAS token, strictly greater than any previously issued
    /// by this clock, seeded from wall-clock nanoseconds when possible.
    pub fn next(&self) -> Cas {
        let now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let mut prev = self.last.load(Ordering::Relaxed);
        loop {
            let candidate = now.max(prev + 1);
            match self.last.compare_exchange_weak(
                prev,
                candidate,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Cas(candidate),
                Err(actual) => prev = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn cas_is_strictly_monotone() {
        let clock = CasClock::new();
        let mut prev = Cas(0);
        for _ in 0..10_000 {
            let c = clock.next();
            assert!(c > prev, "CAS must be strictly increasing");
            prev = c;
        }
    }

    #[test]
    fn cas_unique_across_threads() {
        let clock = Arc::new(CasClock::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let clock = Arc::clone(&clock);
            handles.push(std::thread::spawn(move || {
                (0..5_000).map(|_| clock.next().0).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "CAS tokens must be unique across threads");
    }
}
