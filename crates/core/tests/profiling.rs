//! End-to-end query profiling over a real cluster: PROFILE phase coverage,
//! the `system:` introspection keyspaces, the completed-request ring, and
//! the per-phase query histograms on the cbstats surface.

use std::time::{Duration, Instant};

use cbs_core::{CouchbaseCluster, QueryOptions, Value};

fn seeded_cluster(docs: usize) -> std::sync::Arc<CouchbaseCluster> {
    let cluster = CouchbaseCluster::homogeneous(2, cbs_core::ClusterConfig::for_test(32, 0));
    let bucket = cluster.create_bucket("default").unwrap();
    for i in 0..docs {
        bucket
            .upsert(
                &format!("user::{i}"),
                Value::object([
                    ("name", Value::from(format!("user{i}"))),
                    ("age", Value::int((i % 60) as i64 + 18)),
                ]),
            )
            .unwrap();
    }
    cluster.query("CREATE INDEX by_age ON default(age)", &QueryOptions::default()).unwrap();
    cluster
}

#[test]
fn profile_phases_cover_most_of_an_index_scan_query() {
    let cluster = seeded_cluster(2000);
    let opts = QueryOptions::default().request_plus();
    let t0 = Instant::now();
    let res = cluster
        .query("PROFILE SELECT name, age FROM default WHERE age >= 20 ORDER BY age", &opts)
        .unwrap();
    let wall = t0.elapsed();

    assert_eq!(res.rows.len(), 1, "PROFILE returns the annotated plan");
    let row = &res.rows[0];
    assert!(row.get_field("phaseTimes").is_some());
    let ops = row
        .get_field("plan")
        .and_then(|p| p.get_field("operators"))
        .and_then(Value::as_array)
        .unwrap();
    assert!(
        ops.iter().any(|o| {
            o.get_field("operator").and_then(Value::as_str) == Some("IndexScan")
                && o.get_field("#stats").is_some()
        }),
        "index scan carries runtime stats"
    );

    // The rollups must explain at least 90% of the request's wall time —
    // the profiler attributes real time, it doesn't guess.
    let covered = res.phases.total();
    assert!(
        covered >= wall.mul_f64(0.9) - Duration::from_millis(1),
        "phases {covered:?} cover >=90% of wall {wall:?}"
    );
    // And they never exceed it.
    assert!(covered <= wall);
}

#[test]
fn slow_queries_land_in_completed_requests() {
    let cluster = seeded_cluster(50);
    // Everything is "slow" at a zero threshold.
    cluster.set_slow_threshold(Duration::ZERO);
    cluster
        .query(
            "SELECT name FROM default WHERE age >= 30",
            &QueryOptions::default().request_plus().client_context_id("probe-1"),
        )
        .unwrap();

    // The request log is queryable through N1QL itself.
    let res =
        cluster.query("SELECT * FROM system:completed_requests", &QueryOptions::default()).unwrap();
    let entry = res
        .rows
        .iter()
        .filter_map(|r| r.get_field("completed_requests"))
        .find(|r| r.get_field("clientContextID").and_then(Value::as_str) == Some("probe-1"))
        .expect("probed request retained in system:completed_requests");
    assert_eq!(entry.get_field("state").and_then(Value::as_str), Some("completed"));
    assert_eq!(
        entry.get_field("statement").and_then(Value::as_str),
        Some("SELECT name FROM default WHERE age >= 30")
    );
    let plan = entry.get_field("plan").and_then(Value::as_str).unwrap();
    assert!(plan.contains("IndexScan(by_age)"), "plan summary names the index: {plan}");
    assert!(entry.get_field("phaseTimes").is_some());

    // The same rows ride the cbstats snapshot.
    let stats = cluster.stats();
    assert!(stats.completed_requests.iter().any(|(_, v)| {
        v.get_field("clientContextID").and_then(Value::as_str) == Some("probe-1")
    }));
    assert!(stats.active_requests.is_empty(), "nothing in flight between queries");

    // WHERE works against the catalog like any keyspace.
    let failed = cluster
        .query(
            "SELECT * FROM system:completed_requests r WHERE r.state = 'failed'",
            &QueryOptions::default(),
        )
        .unwrap();
    assert!(failed.rows.is_empty(), "no failed requests yet");
}

#[test]
fn per_request_threshold_override_beats_cluster_setting() {
    let cluster = seeded_cluster(10);
    // Cluster-wide threshold stays at the default (100ms unless the
    // CBS_SLOW_OP_MS env says otherwise): a fast query is not retained.
    cluster.query("SELECT 1 + 1 AS x", &QueryOptions::default().client_context_id("fast")).unwrap();
    // A zero per-request threshold retains this one regardless.
    cluster
        .query(
            "SELECT 2 + 2 AS x",
            &QueryOptions::default().client_context_id("kept").slow_threshold(Duration::ZERO),
        )
        .unwrap();
    let rows = cluster.stats().completed_requests;
    let ids: Vec<&str> = rows
        .iter()
        .filter_map(|(_, v)| v.get_field("clientContextID").and_then(Value::as_str))
        .collect();
    assert!(ids.contains(&"kept"), "per-request override admits the request");
    assert!(!ids.contains(&"fast"), "default threshold filters fast requests");
}

#[test]
fn completed_ring_stays_bounded_under_load() {
    let cluster = seeded_cluster(10);
    cluster.set_slow_threshold(Duration::ZERO);
    for i in 0..10_000 {
        cluster.query(&format!("SELECT {i} AS x"), &QueryOptions::default()).unwrap();
    }
    let rows = cluster
        .query("SELECT * FROM system:completed_requests", &QueryOptions::default())
        .unwrap()
        .rows;
    assert!(rows.len() <= 256, "completed ring bounded, got {}", rows.len());
    assert!(rows.len() >= 200, "ring retains a meaningful tail, got {}", rows.len());
}

#[test]
fn system_catalogs_reflect_cluster_state() {
    let cluster = seeded_cluster(25);

    let idx = cluster.query("SELECT * FROM system:indexes", &QueryOptions::default()).unwrap();
    let defs: Vec<&Value> = idx.rows.iter().filter_map(|r| r.get_field("indexes")).collect();
    assert!(defs.iter().any(|d| {
        d.get_field("name").and_then(Value::as_str) == Some("by_age")
            && d.get_field("state").and_then(Value::as_str) == Some("online")
            && d.get_field("keyspace").and_then(Value::as_str) == Some("default")
    }));

    let ks = cluster.query("SELECT * FROM system:keyspaces", &QueryOptions::default()).unwrap();
    let default_ks = ks
        .rows
        .iter()
        .filter_map(|r| r.get_field("keyspaces"))
        .find(|k| k.get_field("name").and_then(Value::as_str) == Some("default"))
        .expect("default bucket listed");
    assert_eq!(default_ks.get_field("count"), Some(&Value::int(25)));

    let nodes = cluster.query("SELECT * FROM system:nodes", &QueryOptions::default()).unwrap();
    assert_eq!(nodes.rows.len(), 2, "both nodes listed");
    for row in &nodes.rows {
        let n = row.get_field("nodes").unwrap();
        assert_eq!(n.get_field("alive"), Some(&Value::Bool(true)));
        let services = n.get_field("services").and_then(Value::as_array).unwrap();
        assert!(!services.is_empty());
    }

    // An unknown catalog is a plan-time error.
    assert!(cluster.query("SELECT * FROM system:bogus", &QueryOptions::default()).is_err());
}

#[test]
fn phase_histograms_and_help_reach_prometheus() {
    let cluster = seeded_cluster(200);
    cluster
        .query("SELECT name FROM default WHERE age >= 30", &QueryOptions::default().request_plus())
        .unwrap();
    let stats = cluster.stats();
    let merged = stats.merged();
    assert!(merged.histogram("n1ql.phase.index_scan").count() >= 1, "index-scan phase recorded");
    assert!(merged.histogram("n1ql.phase.run").count() >= 1, "run phase recorded");
    assert!(merged.histogram("n1ql.phase.plan").count() >= 1, "plan phase recorded");

    let prom = stats.prometheus();
    assert!(prom.contains("# HELP cbs_n1ql_phase_index_scan "), "HELP line rendered:\n{prom}");
    assert!(prom.contains("# TYPE cbs_n1ql_phase_index_scan summary"));
    assert!(prom.contains("# HELP cbs_n1ql_query_latency "));
}
