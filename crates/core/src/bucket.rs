//! Bucket handle: the key-value access path (§3.1.1).

use std::sync::Arc;
use std::time::Duration;

use cbs_cluster::{Cluster, Durability, SmartClient};
use cbs_common::{Cas, Error, Result};
use cbs_json::{SharedValue, Value};
use cbs_kv::{GetResult, MutationResult};

/// A handle to one bucket (key space).
///
/// "Documents are stored within a key space called a Couchbase bucket, and
/// they can be directly accessed using a (user-provided) document ID much
/// as one would use a primary key for lookups in an RDBMS" (§3).
pub struct Bucket {
    client: Arc<SmartClient>,
    cluster: Arc<Cluster>,
}

impl Bucket {
    pub(crate) fn new(client: Arc<SmartClient>, cluster: Arc<Cluster>) -> Bucket {
        Bucket { client, cluster }
    }

    /// Bucket name.
    pub fn name(&self) -> &str {
        self.client.bucket()
    }

    /// The smart client (advanced use: custom routing/durability flows).
    pub fn client(&self) -> &Arc<SmartClient> {
        &self.client
    }

    /// Key-based read: "only the cluster node hosting the data with that
    /// key will be contacted."
    pub fn get(&self, key: &str) -> Result<GetResult> {
        self.client.get(key)
    }

    /// Insert-or-update.
    pub fn upsert(&self, key: &str, value: impl Into<SharedValue>) -> Result<MutationResult> {
        self.client.upsert(key, value)
    }

    /// Insert only (fails with [`Error::KeyExists`] on existing keys).
    pub fn insert(&self, key: &str, value: impl Into<SharedValue>) -> Result<MutationResult> {
        self.client.insert(key, value)
    }

    /// Update only, with optional optimistic-locking CAS check (§3.1.1).
    pub fn replace(
        &self,
        key: &str,
        value: impl Into<SharedValue>,
        cas: Cas,
    ) -> Result<MutationResult> {
        self.client.replace(key, value, cas)
    }

    /// Delete with optional CAS check.
    pub fn remove(&self, key: &str, cas: Cas) -> Result<MutationResult> {
        self.client.remove(key, cas)
    }

    /// Upsert with a TTL (unix-seconds absolute expiry).
    pub fn upsert_with_expiry(
        &self,
        key: &str,
        value: impl Into<SharedValue>,
        expiry: u32,
    ) -> Result<MutationResult> {
        self.client.upsert_with_expiry(key, value, expiry)
    }

    /// Mutation that waits for replication/persistence per §2.3.2.
    pub fn upsert_durable(
        &self,
        key: &str,
        value: impl Into<SharedValue>,
        durability: Durability,
        timeout: Duration,
    ) -> Result<MutationResult> {
        self.client.upsert_durable(key, value, durability, timeout)
    }

    /// Read and hard-lock a document (GETL). The returned CAS is the lock
    /// token.
    pub fn get_and_lock(&self, key: &str, duration: Duration) -> Result<GetResult> {
        self.client.get_and_lock(key, duration)
    }

    /// Release a GETL lock.
    pub fn unlock(&self, key: &str, token: Cas) -> Result<()> {
        self.client.unlock(key, token)
    }

    /// The classic CAS retry loop (§3.1.1's four-step client flow),
    /// packaged: read, transform, CAS-write, retry on conflict.
    pub fn mutate_in_loop(
        &self,
        key: &str,
        mut transform: impl FnMut(&mut Value),
        max_retries: usize,
    ) -> Result<MutationResult> {
        for _ in 0..max_retries {
            let current = self.get(key)?;
            let mut value = current.value;
            // Copy-on-write: clones the document only if it is still
            // shared with the cache (which it is, right after a get).
            transform(value.make_mut());
            match self.client.upsert_with_cas(key, value, current.meta.cas) {
                Ok(m) => return Ok(m),
                Err(Error::CasMismatch(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        Err(Error::CasMismatch(format!("{key}: retries exhausted")))
    }

    /// Atomic counter built on the CAS loop.
    pub fn counter(&self, key: &str, delta: i64) -> Result<i64> {
        // Initialize if absent.
        if self.get(key).is_err() {
            match self.insert(key, Value::object([("count", Value::int(0))])) {
                Ok(_) | Err(Error::KeyExists(_)) => {}
                Err(e) => return Err(e),
            }
        }
        let mut result = 0;
        self.mutate_in_loop(
            key,
            |v| {
                let cur = v.get_field("count").and_then(Value::as_i64).unwrap_or(0);
                result = cur + delta;
                v.insert_field("count", Value::int(result));
            },
            64,
        )?;
        Ok(result)
    }

    /// Total front-end ops served by this bucket across the cluster.
    pub fn total_ops(&self) -> u64 {
        self.cluster.total_ops(self.client.bucket())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CouchbaseCluster;

    fn bucket() -> Bucket {
        let cluster = CouchbaseCluster::single_node();
        cluster.create_bucket("b").unwrap()
    }

    #[test]
    fn kv_roundtrip_and_modes() {
        let b = bucket();
        b.insert("k", Value::int(1)).unwrap();
        assert!(matches!(b.insert("k", Value::int(2)), Err(Error::KeyExists(_))));
        b.replace("k", Value::int(2), Cas::WILDCARD).unwrap();
        assert_eq!(b.get("k").unwrap().value, Value::int(2));
        b.remove("k", Cas::WILDCARD).unwrap();
        assert!(b.get("k").is_err());
    }

    #[test]
    fn cas_loop_is_safe_under_contention() {
        use std::sync::Arc as StdArc;
        let cluster = CouchbaseCluster::single_node();
        let b = StdArc::new(cluster.create_bucket("b").unwrap());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let b = StdArc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    b.counter("ctr", 1).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.get("ctr").unwrap().value.get_field("count"), Some(&Value::int(400)));
    }

    #[test]
    fn getl_through_bucket() {
        let b = bucket();
        b.upsert("k", Value::int(1)).unwrap();
        let locked = b.get_and_lock("k", Duration::from_secs(2)).unwrap();
        assert!(matches!(b.upsert("k", Value::int(2)), Err(Error::Locked(_))));
        b.unlock("k", locked.meta.cas).unwrap();
        b.upsert("k", Value::int(2)).unwrap();
    }

    #[test]
    fn expiry_through_bucket() {
        let b = bucket();
        let past =
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_secs()
                as u32
                - 1;
        b.upsert_with_expiry("ttl", Value::int(1), past).unwrap();
        assert!(b.get("ttl").is_err(), "already expired");
    }
}
