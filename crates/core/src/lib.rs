//! The public SDK facade — what a Couchbase client application sees (§3.1).
//!
//! "There are three main access paths by which a client application can
//! talk to Couchbase Server: (1) read/write JSON documents using key-value
//! access via the primary key, (2) read/query JSON documents using the
//! View API, (3) read/query JSON documents using N1QL queries."
//!
//! All three are exposed here, over a simulated in-process cluster:
//!
//! ```
//! use cbs_core::{CouchbaseCluster, QueryOptions};
//! use cbs_json::Value;
//!
//! // A 1-node cluster with every service (the quickstart topology).
//! let cluster = CouchbaseCluster::single_node();
//! let bucket = cluster.create_bucket("default").unwrap();
//!
//! // Access path 1: key-value.
//! bucket.upsert("user::1", cbs_json::parse(r#"{"name":"Dipti"}"#).unwrap()).unwrap();
//! assert_eq!(
//!     bucket.get("user::1").unwrap().value.get_field("name"),
//!     Some(&Value::from("Dipti"))
//! );
//!
//! // Access path 3: N1QL.
//! cluster.query("CREATE PRIMARY INDEX ON default", &QueryOptions::default()).unwrap();
//! let res = cluster
//!     .query("SELECT d.name FROM default d", &QueryOptions::default().request_plus())
//!     .unwrap();
//! assert_eq!(res.rows.len(), 1);
//! ```

pub mod bucket;
pub mod cluster_handle;

pub use bucket::Bucket;
pub use cluster_handle::CouchbaseCluster;

// Re-export the vocabulary applications need, so most users depend on this
// crate alone.
pub use cbs_cluster::{ClusterConfig, Durability, ServiceSet};
pub use cbs_common::{Cas, DocMeta, Error, NodeId, Result, SeqNo, VbId};
pub use cbs_fts::{FtsIndexDef, SearchHit, SearchQuery};
pub use cbs_json::{parse as parse_json, Value};
pub use cbs_kv::{GetResult, MutationResult};
pub use cbs_n1ql::{QueryOptions, QueryResult};
pub use cbs_views::{
    DesignDoc, MapCond, MapExpr, MapFn, Reducer, Stale, ViewDef, ViewQuery, ViewResult,
};
pub use cbs_xdcr::{KeyFilter, XdcrLink};
