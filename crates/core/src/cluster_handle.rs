//! The cluster handle: connection, administration, query and view entry
//! points.

use std::sync::Arc;

use cbs_cluster::{Cluster, ClusterConfig, ClusterDatastore, ServiceSet, SmartClient};
use cbs_common::{NodeId, Result};
use cbs_n1ql::{QueryOptions, QueryResult};
use cbs_views::{DesignDoc, ViewQuery, ViewResult};
use cbs_xdcr::{KeyFilter, XdcrLink};

use crate::bucket::Bucket;

/// A handle to a (simulated) Couchbase Server cluster.
pub struct CouchbaseCluster {
    cluster: Arc<Cluster>,
    datastore: Arc<ClusterDatastore>,
}

impl CouchbaseCluster {
    /// A single node running all services — the smallest useful cluster.
    pub fn single_node() -> Arc<CouchbaseCluster> {
        Self::homogeneous(1, ClusterConfig::for_test(64, 0))
    }

    /// `n` identical nodes running all services (the Figure 4 topology;
    /// the paper's appendix benchmarks use `n = 4`).
    pub fn homogeneous(n: usize, cfg: ClusterConfig) -> Arc<CouchbaseCluster> {
        let cluster = Cluster::homogeneous(n, cfg);
        let datastore = Arc::new(ClusterDatastore::new(Arc::clone(&cluster)));
        Arc::new(CouchbaseCluster { cluster, datastore })
    }

    /// Explicit per-node service sets (multi-dimensional scaling, §4.4).
    pub fn with_services(services: Vec<ServiceSet>, cfg: ClusterConfig) -> Arc<CouchbaseCluster> {
        let cluster = Cluster::with_services(services, cfg);
        let datastore = Arc::new(ClusterDatastore::new(Arc::clone(&cluster)));
        Arc::new(CouchbaseCluster { cluster, datastore })
    }

    /// The underlying cluster (administration, diagnostics, benches).
    pub fn inner(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// The cbstats surface: freeze every metric in the cluster — per node,
    /// per service, per bucket, per vBucket — plus the slow-op log.
    pub fn stats(&self) -> cbs_cluster::ClusterStats {
        self.cluster.stats()
    }

    /// Capture every traced operation at least this slow in the slow-op
    /// log (`Duration::ZERO` captures everything).
    pub fn set_slow_threshold(&self, threshold: std::time::Duration) {
        self.cluster.set_slow_threshold(threshold);
    }

    // ------------------------------------------------------------------
    // Buckets
    // ------------------------------------------------------------------

    /// Create a bucket and open a handle to it.
    pub fn create_bucket(&self, name: &str) -> Result<Bucket> {
        self.cluster.create_bucket(name)?;
        self.bucket(name)
    }

    /// Open an existing bucket.
    pub fn bucket(&self, name: &str) -> Result<Bucket> {
        let client = SmartClient::connect(Arc::clone(&self.cluster), name)?;
        Ok(Bucket::new(Arc::new(client), Arc::clone(&self.cluster)))
    }

    // ------------------------------------------------------------------
    // Access path 3: N1QL (§3.1.3)
    // ------------------------------------------------------------------

    /// Run a N1QL statement.
    pub fn query(&self, statement: &str, opts: &QueryOptions) -> Result<QueryResult> {
        self.datastore.query(statement, opts)
    }

    // ------------------------------------------------------------------
    // Access path 2: views (§3.1.2)
    // ------------------------------------------------------------------

    /// Register a design document on a bucket.
    pub fn create_design_doc(&self, bucket: &str, ddoc: DesignDoc) -> Result<()> {
        self.cluster.create_design_doc(bucket, ddoc)
    }

    /// Run a view query (scatter/gather across the cluster).
    pub fn view_query(
        &self,
        bucket: &str,
        ddoc: &str,
        view: &str,
        q: &ViewQuery,
    ) -> Result<ViewResult> {
        self.cluster.view_query(bucket, ddoc, view, q)
    }

    // ------------------------------------------------------------------
    // Administration (§4.3.1)
    // ------------------------------------------------------------------

    /// Add a node with the given services (takes effect at next rebalance).
    pub fn add_node(&self, services: ServiceSet) -> Result<NodeId> {
        self.cluster.add_node(services)
    }

    /// Rebalance all buckets over the alive data nodes, excluding the
    /// given nodes (rebalance-out).
    pub fn rebalance(&self, exclude: &[NodeId]) -> Result<()> {
        self.cluster.rebalance(exclude)
    }

    /// Failure injection: crash a node.
    pub fn kill_node(&self, id: NodeId) -> Result<()> {
        self.cluster.kill_node(id)
    }

    /// Promote replicas of a dead node.
    pub fn failover(&self, id: NodeId) -> Result<usize> {
        self.cluster.failover(id)
    }

    /// Current orchestrator node.
    pub fn orchestrator(&self) -> Option<NodeId> {
        self.cluster.orchestrator()
    }

    // ------------------------------------------------------------------
    // Full-text search (§6.1.3)
    // ------------------------------------------------------------------

    /// Create a full-text search index over a bucket.
    pub fn create_fts_index(&self, def: cbs_fts::FtsIndexDef) -> Result<()> {
        self.cluster.create_fts_index(def)
    }

    /// Search a full-text index (term / prefix / phrase / boolean, see
    /// [`cbs_fts::SearchQuery`]). With `consistent`, waits for the index
    /// to cover every previously acknowledged write.
    pub fn fts_search(
        &self,
        bucket: &str,
        index: &str,
        query: &cbs_fts::SearchQuery,
        limit: usize,
        consistent: bool,
    ) -> Result<Vec<cbs_fts::SearchHit>> {
        self.cluster.fts_search(bucket, index, query, limit, consistent)
    }

    // ------------------------------------------------------------------
    // XDCR (§4.6)
    // ------------------------------------------------------------------

    /// Start replicating a bucket to another cluster. Returns the running
    /// link; drop or `shutdown()` to stop. Start one in each direction for
    /// a bi-directional topology.
    pub fn replicate_to(
        &self,
        destination: &Arc<CouchbaseCluster>,
        bucket: &str,
        filter: Option<KeyFilter>,
    ) -> Result<XdcrLink> {
        XdcrLink::start(Arc::clone(&self.cluster), Arc::clone(&destination.cluster), bucket, filter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_json::Value;

    #[test]
    fn end_to_end_all_three_access_paths() {
        let cluster = CouchbaseCluster::homogeneous(2, ClusterConfig::for_test(32, 0));
        let bucket = cluster.create_bucket("default").unwrap();

        // 1: KV.
        for i in 0..25 {
            bucket
                .upsert(
                    &format!("user::{i}"),
                    Value::object([
                        ("name", Value::from(format!("user{i}"))),
                        ("age", Value::int(20 + i)),
                    ]),
                )
                .unwrap();
        }
        assert_eq!(bucket.get("user::3").unwrap().value.get_field("age"), Some(&Value::int(23)));

        // 2: views.
        cluster
            .create_design_doc(
                "default",
                DesignDoc {
                    name: "dd".to_string(),
                    views: vec![(
                        "by_age".to_string(),
                        cbs_views::ViewDef {
                            map: cbs_views::MapFn::on_field("age"),
                            reduce: Some(cbs_views::Reducer::Count),
                        },
                    )],
                },
            )
            .unwrap();
        let res = cluster
            .view_query(
                "default",
                "dd",
                "by_age",
                &ViewQuery { stale: cbs_views::Stale::False, ..Default::default() },
            )
            .unwrap();
        assert_eq!(res.rows.len(), 25);

        // 3: N1QL.
        cluster.query("CREATE INDEX by_age ON default(age)", &QueryOptions::default()).unwrap();
        let res = cluster
            .query(
                "SELECT COUNT(*) AS n FROM default WHERE age >= 30",
                &QueryOptions::default().request_plus(),
            )
            .unwrap();
        assert_eq!(res.rows[0].get_field("n"), Some(&Value::int(15)));
    }

    #[test]
    fn bucket_handles_share_cluster() {
        let cluster = CouchbaseCluster::single_node();
        cluster.create_bucket("a").unwrap();
        cluster.create_bucket("b").unwrap();
        let a = cluster.bucket("a").unwrap();
        let b = cluster.bucket("b").unwrap();
        a.upsert("k", Value::int(1)).unwrap();
        assert!(b.get("k").is_err(), "buckets are separate keyspaces");
        assert!(cluster.bucket("missing").is_err());
    }
}
