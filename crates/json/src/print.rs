//! JSON serialization (compact and pretty).
//!
//! The compact form is canonical for storage and network transfer; pretty
//! printing is only for diagnostics (EXPLAIN output, examples).

use crate::value::{Number, Value};

impl Value {
    /// Serialize to compact JSON. Guaranteed to re-parse to an equal value
    /// (property-tested in the crate root).
    pub fn to_json_string(&self) -> String {
        let mut out = String::with_capacity(self.approx_size());
        write_value(self, &mut out);
        out
    }
}

/// Serialize with `indent`-space indentation, for human consumption.
pub fn to_json_pretty(v: &Value, indent: usize) -> String {
    let mut out = String::new();
    write_pretty(v, indent, 0, &mut out);
    out
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_number(n: Number, out: &mut String) {
    match n {
        Number::Int(i) => out.push_str(&i.to_string()),
        Number::Float(f) => {
            // Rust's Display for f64 is shortest-roundtrip, which is exactly
            // what we want; integral floats keep a ".0" via this branch so
            // the int/float lexical class survives a round-trip.
            if f.fract() == 0.0 && f.abs() < 1e15 {
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&f.to_string());
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_pretty(v: &Value, indent: usize, level: usize, out: &mut String) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent * (level + 1)));
                write_pretty(item, indent, level + 1, out);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent * level));
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent * (level + 1)));
                write_string(k, out);
                out.push_str(": ");
                write_pretty(val, indent, level + 1, out);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent * level));
            out.push('}');
        }
        other => write_value(other, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn compact_output() {
        let v = Value::object([
            ("name", Value::from("Dipti")),
            ("age", Value::int(30)),
            ("tags", Value::from(vec!["a", "b"])),
        ]);
        assert_eq!(v.to_json_string(), r#"{"name":"Dipti","age":30,"tags":["a","b"]}"#);
    }

    #[test]
    fn control_chars_escaped() {
        let v = Value::from("a\u{0001}b\nc");
        let s = v.to_json_string();
        assert_eq!(s, "\"a\\u0001b\\nc\"");
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn float_class_survives_roundtrip() {
        let v = Value::float(2.0);
        assert_eq!(v.to_json_string(), "2.0");
        assert!(matches!(parse("2.0").unwrap(), Value::Number(crate::value::Number::Float(_))));
        assert_eq!(Value::float(1.5e300).to_json_string().parse::<f64>().unwrap(), 1.5e300);
    }

    #[test]
    fn pretty_printing() {
        let v = Value::object([("a", Value::from(vec![1i64, 2]))]);
        let s = to_json_pretty(&v, 2);
        assert_eq!(s, "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn empty_containers_stay_compact_in_pretty() {
        let v = Value::object([("a", Value::Array(vec![])), ("b", Value::empty_object())]);
        assert_eq!(to_json_pretty(&v, 2), "{\n  \"a\": [],\n  \"b\": {}\n}");
    }
}
