//! Recursive-descent JSON parser.
//!
//! Strict RFC 8259 syntax (no trailing commas, no comments, no bare NaN),
//! full `\uXXXX` escape handling including surrogate pairs, and a recursion
//! depth limit so hostile documents cannot blow the stack of a data-service
//! thread.

use crate::value::{Number, Value};

/// Maximum nesting depth accepted (defensive; Couchbase caps document
/// nesting similarly).
const MAX_DEPTH: usize = 128;

/// A parse failure, with byte offset for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON text into a [`Value`].
///
/// Trailing whitespace is allowed; any other trailing content is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError { offset: self.pos, message: msg.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("maximum nesting depth exceeded"));
        }
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal, expected '{kw}'")))
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value(depth + 1)?;
            // RFC 8259 leaves duplicate-key behaviour implementation-defined;
            // like Couchbase (and serde_json) we keep the last occurrence.
            if let Some(slot) = pairs.iter_mut().find(|(k, _)| *k == key) {
                slot.1 = val;
            } else {
                pairs.push((key, val));
            }
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(pairs)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}' in object"));
                }
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']' in array"));
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Safe: input is &str, and we only stopped on ASCII
                // boundaries, so this slice is valid UTF-8.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8 in string"))?,
                );
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.parse_hex4()?;
                        if (0xD800..0xDC00).contains(&cp) {
                            // High surrogate: require a following \uXXXX low
                            // surrogate.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate in \\u escape"));
                            }
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?,
                            );
                        } else if (0xDC00..0xE000).contains(&cp) {
                            return Err(self.err("unpaired low surrogate"));
                        } else {
                            out.push(
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?,
                            );
                        }
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.err("unescaped control character")),
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, ParseError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a' + 10) as u32,
                b'A'..=b'F' => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(i)));
            }
            // Integer overflowing i64: degrade to float like other parsers.
        }
        let f: f64 = text.parse().map_err(|_| self.err("number out of range"))?;
        if !f.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Value::Number(Number::Float(f)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Value {
        parse(s).unwrap()
    }

    #[test]
    fn scalars() {
        assert_eq!(p("null"), Value::Null);
        assert_eq!(p("true"), Value::Bool(true));
        assert_eq!(p("false"), Value::Bool(false));
        assert_eq!(p("42"), Value::int(42));
        assert_eq!(p("-7"), Value::int(-7));
        assert_eq!(p("3.5"), Value::float(3.5));
        assert_eq!(p("1e3"), Value::float(1000.0));
        assert_eq!(p("-1.5E-2"), Value::float(-0.015));
        assert_eq!(p("\"hi\""), Value::from("hi"));
    }

    #[test]
    fn containers() {
        assert_eq!(p("[]"), Value::Array(vec![]));
        assert_eq!(p("{}"), Value::empty_object());
        assert_eq!(p("[1, [2], {\"a\": 3}]").to_json_string(), "[1,[2],{\"a\":3}]");
        let doc = p(r#"{"name": "Dipti Borkar", "email": "Dipti@couchbase.com"}"#);
        assert_eq!(doc.get_field("name"), Some(&Value::from("Dipti Borkar")));
    }

    #[test]
    fn escapes() {
        assert_eq!(p(r#""a\nb\t\"c\\""#), Value::from("a\nb\t\"c\\"));
        assert_eq!(p(r#""é""#), Value::from("é"));
        assert_eq!(p(r#""😀""#), Value::from("😀"));
        assert_eq!(p(r#""\/""#), Value::from("/"));
    }

    #[test]
    fn big_int_degrades_to_float() {
        let v = p("99999999999999999999999");
        assert!(matches!(v, Value::Number(Number::Float(_))));
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = p(r#"{"a": 1, "a": 2}"#);
        assert_eq!(v.get_field("a"), Some(&Value::int(2)));
        assert_eq!(v.as_object().unwrap().len(), 1);
    }

    #[test]
    fn errors_carry_offsets() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "\"abc",
            "01",
            "1.",
            "1e",
            "nul",
            "[1 2]",
            "\"\\q\"",
            "\"\u{0001}\"",
            "\"\\ud800\"",
            "{\"a\" 1}",
            "[]]",
        ] {
            let e = parse(bad).unwrap_err();
            assert!(e.offset <= bad.len(), "offset sane for {bad:?}");
        }
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(p(" \t\n{ \"a\" :\r1 } \n"), Value::object([("a", Value::int(1))]));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("1 2").is_err());
        assert!(parse("{} x").is_err());
    }
}
