//! N1QL / view collation: the total order used by every index in the system.
//!
//! Couchbase (following CouchDB's view collation and SQL++'s ordering)
//! orders JSON values first by type, then within a type:
//!
//! `missing < null < false < true < number < string < array < object`
//!
//! - numbers compare numerically across the int/float classes;
//! - strings compare by Unicode code point;
//! - arrays compare element-wise, shorter-is-less on a common prefix;
//! - objects compare by sorted key list first, then by values in sorted key
//!   order (a deterministic convention; object keys in an index are rare).
//!
//! This ordering is what makes a view/GSI B-tree range scan meaningful for
//! heterogeneous documents in one bucket.

use std::cmp::Ordering;

use crate::value::Value;

/// Type rank in the collation order. MISSING is handled out-of-band by
/// [`cmp_missing`] since documents never contain it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TypeRank {
    /// `null`
    Null = 1,
    /// `false` then `true`
    Boolean = 2,
    /// any number
    Number = 3,
    /// any string
    String = 4,
    /// any array
    Array = 5,
    /// any object
    Object = 6,
}

/// The collation rank of a value's type.
pub fn type_rank(v: &Value) -> TypeRank {
    match v {
        Value::Null => TypeRank::Null,
        Value::Bool(_) => TypeRank::Boolean,
        Value::Number(_) => TypeRank::Number,
        Value::String(_) => TypeRank::String,
        Value::Array(_) => TypeRank::Array,
        Value::Object(_) => TypeRank::Object,
    }
}

/// Total-order comparison of two JSON values under N1QL collation.
pub fn cmp_values(a: &Value, b: &Value) -> Ordering {
    let (ra, rb) = (type_rank(a), type_rank(b));
    if ra != rb {
        return ra.cmp(&rb);
    }
    match (a, b) {
        (Value::Null, Value::Null) => Ordering::Equal,
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Number(x), Value::Number(y)) => {
            // Values never contain NaN (parser and constructors forbid it),
            // so partial_cmp is total here.
            x.partial_cmp(y).unwrap_or(Ordering::Equal)
        }
        (Value::String(x), Value::String(y)) => x.cmp(y),
        (Value::Array(x), Value::Array(y)) => {
            for (xa, ya) in x.iter().zip(y.iter()) {
                let c = cmp_values(xa, ya);
                if c != Ordering::Equal {
                    return c;
                }
            }
            x.len().cmp(&y.len())
        }
        (Value::Object(x), Value::Object(y)) => {
            let mut xk: Vec<&str> = x.iter().map(|(k, _)| k.as_str()).collect();
            let mut yk: Vec<&str> = y.iter().map(|(k, _)| k.as_str()).collect();
            xk.sort_unstable();
            yk.sort_unstable();
            let c = xk.cmp(&yk);
            if c != Ordering::Equal {
                return c;
            }
            for k in xk {
                // Both objects have the key (key lists are equal).
                let c = cmp_values(a.get_field(k).unwrap(), b.get_field(k).unwrap());
                if c != Ordering::Equal {
                    return c;
                }
            }
            Ordering::Equal
        }
        _ => unreachable!("type ranks matched"),
    }
}

/// Comparison lifted to possibly-MISSING values: MISSING sorts before
/// everything, including `null`.
pub fn cmp_missing(a: Option<&Value>, b: Option<&Value>) -> Ordering {
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => cmp_values(x, y),
    }
}

/// A wrapper giving [`Value`] `Ord` under collation, usable directly as a
/// `BTreeMap` key in index implementations.
#[derive(Debug, Clone, PartialEq)]
pub struct CollatedValue(pub Value);

impl Eq for CollatedValue {}

impl PartialOrd for CollatedValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CollatedValue {
    fn cmp(&self, other: &Self) -> Ordering {
        cmp_values(&self.0, &other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn v(s: &str) -> Value {
        parse(s).unwrap()
    }

    #[test]
    fn type_order_matches_paper_systems() {
        let ladder = [
            v("null"),
            v("false"),
            v("true"),
            v("-10"),
            v("0"),
            v("3.5"),
            v("\"\""),
            v("\"a\""),
            v("\"b\""),
            v("[]"),
            v("[1]"),
            v("[1,2]"),
            v("[2]"),
            v("{}"),
            v("{\"a\":1}"),
        ];
        for w in ladder.windows(2) {
            assert_eq!(
                cmp_values(&w[0], &w[1]),
                Ordering::Less,
                "{:?} should sort before {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn numbers_compare_across_classes() {
        assert_eq!(cmp_values(&v("1"), &v("1.0")), Ordering::Equal);
        assert_eq!(cmp_values(&v("1"), &v("1.5")), Ordering::Less);
        assert_eq!(cmp_values(&v("2"), &v("1.5")), Ordering::Greater);
    }

    #[test]
    fn missing_sorts_first() {
        assert_eq!(cmp_missing(None, Some(&Value::Null)), Ordering::Less);
        assert_eq!(cmp_missing(None, None), Ordering::Equal);
        assert_eq!(cmp_missing(Some(&Value::Null), None), Ordering::Greater);
    }

    #[test]
    fn object_comparison_is_key_order_independent() {
        let a = v(r#"{"x":1,"y":2}"#);
        let b = v(r#"{"y":2,"x":1}"#);
        assert_eq!(cmp_values(&a, &b), Ordering::Equal);
        let c = v(r#"{"x":1,"y":3}"#);
        assert_eq!(cmp_values(&a, &c), Ordering::Less);
        // Differing key sets compare by sorted key list.
        let d = v(r#"{"x":1,"z":0}"#);
        assert_eq!(cmp_values(&a, &d), Ordering::Less); // "y" < "z"
    }

    #[test]
    fn collated_value_usable_in_btreemap() {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert(CollatedValue(v("\"b\"")), 1);
        m.insert(CollatedValue(v("null")), 2);
        m.insert(CollatedValue(v("10")), 3);
        m.insert(CollatedValue(v("\"a\"")), 4);
        let order: Vec<i32> = m.values().copied().collect();
        assert_eq!(order, [2, 3, 4, 1]);
    }
}
