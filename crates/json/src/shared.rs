//! Shared immutable document values.
//!
//! The hot KV path (cache hit, DCP fan-out, replication) hands the same
//! document to many consumers. [`SharedValue`] wraps the parsed [`Value`]
//! in an [`Arc`] so every hand-off is a reference-count bump instead of a
//! deep clone of the JSON tree. The wrapper derefs to [`Value`], so read
//! access is transparent; mutation goes through [`SharedValue::make_mut`]
//! (copy-on-write, cloning only when the value is actually shared).

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use crate::value::Value;

/// A reference-counted, immutable JSON document body.
///
/// Cloning is O(1). Converting from [`Value`] allocates the `Arc` once;
/// converting back with [`SharedValue::into_value`] is free when this is
/// the only reference and a deep clone otherwise.
#[derive(Clone)]
pub struct SharedValue(Arc<Value>);

impl SharedValue {
    /// Wrap a value for sharing.
    pub fn new(value: Value) -> SharedValue {
        SharedValue(Arc::new(value))
    }

    /// The inner reference-counted allocation.
    pub fn into_arc(self) -> Arc<Value> {
        self.0
    }

    /// Borrow the underlying value (equivalent to deref).
    pub fn as_value(&self) -> &Value {
        &self.0
    }

    /// Take the value out, cloning only if other references exist.
    pub fn into_value(self) -> Value {
        Arc::try_unwrap(self.0).unwrap_or_else(|arc| (*arc).clone())
    }

    /// Copy-on-write mutable access: clones the tree only when shared.
    pub fn make_mut(&mut self) -> &mut Value {
        Arc::make_mut(&mut self.0)
    }

    /// Whether two handles point at the same allocation (used by tests to
    /// prove the zero-copy property: a cache hit must alias the stored
    /// document, not a copy of it).
    pub fn ptr_eq(a: &SharedValue, b: &SharedValue) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }

    /// Number of live references (diagnostics/tests).
    pub fn ref_count(this: &SharedValue) -> usize {
        Arc::strong_count(&this.0)
    }
}

impl Deref for SharedValue {
    type Target = Value;

    fn deref(&self) -> &Value {
        &self.0
    }
}

impl AsRef<Value> for SharedValue {
    fn as_ref(&self) -> &Value {
        &self.0
    }
}

impl From<Value> for SharedValue {
    fn from(v: Value) -> SharedValue {
        SharedValue::new(v)
    }
}

impl From<Arc<Value>> for SharedValue {
    fn from(v: Arc<Value>) -> SharedValue {
        SharedValue(v)
    }
}

impl From<SharedValue> for Value {
    fn from(v: SharedValue) -> Value {
        v.into_value()
    }
}

impl PartialEq for SharedValue {
    fn eq(&self, other: &SharedValue) -> bool {
        // Pointer equality short-circuits the common aliased case.
        Arc::ptr_eq(&self.0, &other.0) || *self.0 == *other.0
    }
}

impl PartialEq<Value> for SharedValue {
    fn eq(&self, other: &Value) -> bool {
        *self.0 == *other
    }
}

impl PartialEq<SharedValue> for Value {
    fn eq(&self, other: &SharedValue) -> bool {
        *self == *other.0
    }
}

impl fmt::Debug for SharedValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.0, f)
    }
}

impl fmt::Display for SharedValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_is_aliasing_not_copying() {
        let a = SharedValue::new(Value::object([("k", Value::int(1))]));
        let b = a.clone();
        assert!(SharedValue::ptr_eq(&a, &b));
        assert_eq!(SharedValue::ref_count(&a), 2);
        assert_eq!(a, b);
    }

    #[test]
    fn compares_against_plain_values() {
        let v = Value::int(42);
        let s = SharedValue::new(v.clone());
        assert_eq!(s, v);
        assert_eq!(v, s);
        assert_eq!(s, SharedValue::new(Value::int(42)));
        assert_ne!(s, Value::int(43));
    }

    #[test]
    fn into_value_avoids_clone_when_unique() {
        let s = SharedValue::new(Value::from("solo"));
        let v = s.into_value(); // sole owner: no clone
        assert_eq!(v, Value::from("solo"));
    }

    #[test]
    fn make_mut_is_copy_on_write() {
        let mut a = SharedValue::new(Value::object([("n", Value::int(1))]));
        let b = a.clone();
        a.make_mut().insert_field("n", Value::int(2));
        assert_eq!(a.get_field("n"), Some(&Value::int(2)));
        assert_eq!(b.get_field("n"), Some(&Value::int(1)), "shared copy untouched");
        assert!(!SharedValue::ptr_eq(&a, &b));
    }

    #[test]
    fn deref_gives_value_api() {
        let s = SharedValue::new(Value::object([("x", Value::int(7))]));
        assert_eq!(s.get_field("x").and_then(Value::as_i64), Some(7));
        assert_eq!(s.to_json_string(), r#"{"x":7}"#);
    }
}
