//! The JSON value model.
//!
//! Objects preserve insertion order (a `Vec` of pairs plus linear probing —
//! documents in this system are small, typically tens of fields, where a
//! vector beats a hash map on both space and speed). Numbers keep the
//! integer/float distinction so that integer keys index and collate exactly.

use std::fmt;

/// A JSON number: either an exact 64-bit integer or a double.
///
/// N1QL (like SQL++) treats `1` and `1.0` as equal in comparisons but we
/// preserve the lexical class for faithful round-tripping.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// An integer that fits i64.
    Int(i64),
    /// Any other finite number.
    Float(f64),
}

impl Number {
    /// The value as f64 (lossy for |int| > 2^53, like every JSON system).
    #[inline]
    pub fn as_f64(self) -> f64 {
        match self {
            Number::Int(i) => i as f64,
            Number::Float(f) => f,
        }
    }

    /// The value as i64, when exactly representable.
    #[inline]
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::Int(i) => Some(i),
            Number::Float(f)
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 =>
            {
                Some(f as i64)
            }
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (*self, *other) {
            (Number::Int(a), Number::Int(b)) => a == b,
            (a, b) => a.as_f64() == b.as_f64(),
        }
    }
}

impl PartialOrd for Number {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        match (*self, *other) {
            (Number::Int(a), Number::Int(b)) => a.partial_cmp(&b),
            (a, b) => a.as_f64().partial_cmp(&b.as_f64()),
        }
    }
}

/// A JSON value.
///
/// `MISSING` (a field that does not exist) is distinct from `null` in N1QL;
/// we model MISSING out-of-band (`Option<Value>` / [`crate::collate::cmp_missing`])
/// rather than as a variant, so documents can never contain it.
#[derive(Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, preserving field insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Integer constructor.
    #[inline]
    pub fn int(i: i64) -> Value {
        Value::Number(Number::Int(i))
    }

    /// Float constructor. Non-finite values are mapped to `null`, as JSON
    /// cannot represent them (mirrors what real JSON emitters do).
    #[inline]
    pub fn float(f: f64) -> Value {
        if f.is_finite() {
            Value::Number(Number::Float(f))
        } else {
            Value::Null
        }
    }

    /// An empty object.
    #[inline]
    pub fn empty_object() -> Value {
        Value::Object(Vec::new())
    }

    /// Build an object from pairs (last write wins on duplicate keys).
    pub fn object<I, K>(pairs: I) -> Value
    where
        I: IntoIterator<Item = (K, Value)>,
        K: Into<String>,
    {
        let mut v = Value::empty_object();
        for (k, val) in pairs {
            v.insert_field(&k.into(), val);
        }
        v
    }

    /// True JSON type name, as reported by N1QL's `TYPE()` function.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Is this `null`?
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrow as bool.
    #[inline]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow as f64 (any number).
    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Borrow as i64 (exactly-representable numbers only).
    #[inline]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Borrow as string.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as array.
    #[inline]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as object pairs.
    #[inline]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Look up a field of an object (MISSING ⇒ `None`).
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutably borrow as array.
    #[inline]
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutably look up a field of an object (MISSING ⇒ `None`).
    pub fn get_field_mut(&mut self, name: &str) -> Option<&mut Value> {
        match self {
            Value::Object(pairs) => pairs.iter_mut().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Index into an array. Negative indexes count from the end (N1QL
    /// semantics: `a[-1]` is the last element).
    pub fn get_index(&self, idx: i64) -> Option<&Value> {
        match self {
            Value::Array(items) => {
                let len = items.len() as i64;
                let i = if idx < 0 { len + idx } else { idx };
                if i < 0 || i >= len {
                    None
                } else {
                    items.get(i as usize)
                }
            }
            _ => None,
        }
    }

    /// Insert or overwrite a field; returns the previous value if any.
    /// No-op (returning `None`) on non-objects.
    pub fn insert_field(&mut self, name: &str, value: Value) -> Option<Value> {
        if let Value::Object(pairs) = self {
            for (k, v) in pairs.iter_mut() {
                if k == name {
                    return Some(std::mem::replace(v, value));
                }
            }
            pairs.push((name.to_string(), value));
        }
        None
    }

    /// Remove a field; returns the removed value if present.
    pub fn remove_field(&mut self, name: &str) -> Option<Value> {
        if let Value::Object(pairs) = self {
            if let Some(pos) = pairs.iter().position(|(k, _)| k == name) {
                return Some(pairs.remove(pos).1);
            }
        }
        None
    }

    /// N1QL truthiness: only `true` is true in a WHERE clause. (null,
    /// MISSING, and every non-boolean condition value filter the row out.)
    #[inline]
    pub fn is_truthy(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Rough in-memory footprint in bytes, used by the cache's memory
    /// accounting (`cbs-cache`). Deliberately simple and deterministic.
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Null | Value::Bool(_) => 8,
            Value::Number(_) => 16,
            Value::String(s) => 24 + s.len(),
            Value::Array(a) => 24 + a.iter().map(Value::approx_size).sum::<usize>(),
            Value::Object(o) => {
                24 + o.iter().map(|(k, v)| 24 + k.len() + v.approx_size()).sum::<usize>()
            }
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_json_string())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_json_string())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::int(i as i64)
    }
}

impl From<u64> for Value {
    fn from(i: u64) -> Self {
        if i <= i64::MAX as u64 {
            Value::int(i as i64)
        } else {
            Value::float(i as f64)
        }
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::from(i as u64)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::float(f)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_field_ops() {
        let mut v = Value::empty_object();
        assert_eq!(v.insert_field("a", Value::int(1)), None);
        assert_eq!(v.insert_field("b", Value::from("x")), None);
        assert_eq!(v.insert_field("a", Value::int(2)), Some(Value::int(1)));
        assert_eq!(v.get_field("a"), Some(&Value::int(2)));
        assert_eq!(v.get_field("missing"), None);
        assert_eq!(v.remove_field("b"), Some(Value::from("x")));
        assert_eq!(v.remove_field("b"), None);
    }

    #[test]
    fn object_preserves_insertion_order() {
        let v = Value::object([("z", Value::int(1)), ("a", Value::int(2)), ("m", Value::int(3))]);
        let keys: Vec<&str> = v.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn negative_array_index() {
        let v: Value = vec![1i64, 2, 3].into();
        assert_eq!(v.get_index(-1), Some(&Value::int(3)));
        assert_eq!(v.get_index(0), Some(&Value::int(1)));
        assert_eq!(v.get_index(3), None);
        assert_eq!(v.get_index(-4), None);
    }

    #[test]
    fn number_equality_crosses_classes() {
        assert_eq!(Value::int(1), Value::float(1.0));
        assert_ne!(Value::int(1), Value::float(1.5));
        assert_eq!(Value::Number(Number::Float(2.0)).as_i64(), Some(2));
        assert_eq!(Value::Number(Number::Float(2.5)).as_i64(), None);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert!(Value::float(f64::NAN).is_null());
        assert!(Value::float(f64::INFINITY).is_null());
    }

    #[test]
    fn truthiness_is_strict() {
        assert!(Value::Bool(true).is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(!Value::int(1).is_truthy());
        assert!(!Value::Null.is_truthy());
        assert!(!Value::from("true").is_truthy());
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Null.type_name(), "null");
        assert_eq!(Value::int(1).type_name(), "number");
        assert_eq!(Value::empty_object().type_name(), "object");
    }

    #[test]
    fn approx_size_grows_with_content() {
        let small = Value::object([("a", Value::int(1))]);
        let big = Value::object([("a", Value::from("x".repeat(1000)))]);
        assert!(big.approx_size() > small.approx_size() + 900);
    }
}
