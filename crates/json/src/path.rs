//! Dotted-path navigation into JSON documents.
//!
//! Paths like `address.city` or `orders[0].items[-1].sku` are the common
//! currency of the view engine's map DSL, the GSI projector's index-key
//! expressions, and sub-document operations in the KV API (paper §3.2.2:
//! "These statements also support sub-document level lookups and updates").

use crate::value::Value;

/// One step of a [`JsonPath`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathStep {
    /// Descend into an object field.
    Field(String),
    /// Index into an array (negative counts from the end).
    Index(i64),
}

/// A parsed navigation path.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JsonPath {
    /// The sequence of steps, applied left to right.
    pub steps: Vec<PathStep>,
}

impl JsonPath {
    /// The empty path (identity).
    pub fn root() -> JsonPath {
        JsonPath { steps: Vec::new() }
    }

    /// Evaluate against a document. `None` means MISSING (a step did not
    /// resolve), which N1QL distinguishes from a present `null`.
    pub fn eval<'a>(&self, doc: &'a Value) -> Option<&'a Value> {
        let mut cur = doc;
        for step in &self.steps {
            cur = match step {
                PathStep::Field(name) => cur.get_field(name)?,
                PathStep::Index(i) => cur.get_index(*i)?,
            };
        }
        Some(cur)
    }

    /// Evaluate, then clone; MISSING maps to `None`.
    pub fn eval_cloned(&self, doc: &Value) -> Option<Value> {
        self.eval(doc).cloned()
    }

    /// Set the value at this path, creating intermediate objects for field
    /// steps as needed (sub-document `upsert` semantics). Fails (returns
    /// `false`) if a step requires indexing past the end of an array or
    /// descending through a non-container scalar.
    pub fn set(&self, doc: &mut Value, new: Value) -> bool {
        if self.steps.is_empty() {
            *doc = new;
            return true;
        }
        let mut cur = doc;
        for (i, step) in self.steps.iter().enumerate() {
            let last = i + 1 == self.steps.len();
            match step {
                PathStep::Field(name) => {
                    if !matches!(cur, Value::Object(_)) {
                        return false;
                    }
                    if cur.get_field(name).is_none() {
                        if last {
                            cur.insert_field(name, new);
                            return true;
                        }
                        cur.insert_field(name, Value::empty_object());
                    } else if last {
                        cur.insert_field(name, new);
                        return true;
                    }
                    let Value::Object(pairs) = cur else { unreachable!() };
                    cur = &mut pairs.iter_mut().find(|(k, _)| k == name).unwrap().1;
                }
                PathStep::Index(idx) => {
                    let Value::Array(items) = cur else { return false };
                    let len = items.len() as i64;
                    let j = if *idx < 0 { len + idx } else { *idx };
                    if j < 0 || j >= len {
                        return false;
                    }
                    if last {
                        items[j as usize] = new;
                        return true;
                    }
                    cur = &mut items[j as usize];
                }
            }
        }
        unreachable!("loop returns on the last step")
    }

    /// Remove the value at this path. Returns the removed value, or `None`
    /// if the path did not resolve.
    pub fn remove(&self, doc: &mut Value) -> Option<Value> {
        let (last, prefix) = self.steps.split_last()?;
        let parent_path = JsonPath { steps: prefix.to_vec() };
        // Navigate mutably to the parent.
        let mut cur = doc;
        for step in &parent_path.steps {
            match step {
                PathStep::Field(name) => {
                    let Value::Object(pairs) = cur else { return None };
                    cur = &mut pairs.iter_mut().find(|(k, _)| k == name)?.1;
                }
                PathStep::Index(idx) => {
                    let Value::Array(items) = cur else { return None };
                    let len = items.len() as i64;
                    let j = if *idx < 0 { len + idx } else { *idx };
                    if j < 0 || j >= len {
                        return None;
                    }
                    cur = &mut items[j as usize];
                }
            }
        }
        match last {
            PathStep::Field(name) => cur.remove_field(name),
            PathStep::Index(idx) => {
                let Value::Array(items) = cur else { return None };
                let len = items.len() as i64;
                let j = if *idx < 0 { len + idx } else { *idx };
                if j < 0 || j >= len {
                    return None;
                }
                Some(items.remove(j as usize))
            }
        }
    }

    /// Render back to source form (`a.b[0]`).
    pub fn to_path_string(&self) -> String {
        let mut out = String::new();
        for step in &self.steps {
            match step {
                PathStep::Field(name) => {
                    if !out.is_empty() {
                        out.push('.');
                    }
                    out.push_str(name);
                }
                PathStep::Index(i) => {
                    out.push('[');
                    out.push_str(&i.to_string());
                    out.push(']');
                }
            }
        }
        out
    }
}

impl std::str::FromStr for JsonPath {
    type Err = String;

    fn from_str(s: &str) -> Result<JsonPath, String> {
        parse_path(s)
    }
}

/// Parse a path expression: identifiers separated by dots, with optional
/// `[index]` subscripts. Backtick-quoted identifiers (`` `field.with.dots` ``)
/// are supported, matching N1QL identifier quoting.
pub fn parse_path(input: &str) -> Result<JsonPath, String> {
    let mut steps = Vec::new();
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let mut expect_field = true;
    while pos < bytes.len() {
        match bytes[pos] {
            b'.' => {
                if expect_field {
                    return Err(format!("unexpected '.' at {pos}"));
                }
                pos += 1;
                expect_field = true;
            }
            b'[' => {
                pos += 1;
                let start = pos;
                while pos < bytes.len() && bytes[pos] != b']' {
                    pos += 1;
                }
                if pos == bytes.len() {
                    return Err("unterminated '['".to_string());
                }
                let idx: i64 = input[start..pos]
                    .trim()
                    .parse()
                    .map_err(|_| format!("invalid array index at {start}"))?;
                steps.push(PathStep::Index(idx));
                pos += 1;
                expect_field = false;
            }
            b'`' => {
                if !expect_field {
                    return Err(format!("unexpected identifier at {pos}"));
                }
                pos += 1;
                let start = pos;
                while pos < bytes.len() && bytes[pos] != b'`' {
                    pos += 1;
                }
                if pos == bytes.len() {
                    return Err("unterminated '`'".to_string());
                }
                steps.push(PathStep::Field(input[start..pos].to_string()));
                pos += 1;
                expect_field = false;
            }
            _ => {
                if !expect_field {
                    return Err(format!("unexpected character at {pos}"));
                }
                let start = pos;
                while pos < bytes.len()
                    && bytes[pos] != b'.'
                    && bytes[pos] != b'['
                    && bytes[pos] != b'`'
                {
                    pos += 1;
                }
                let name = input[start..pos].trim();
                if name.is_empty() {
                    return Err(format!("empty path segment at {start}"));
                }
                steps.push(PathStep::Field(name.to_string()));
                expect_field = false;
            }
        }
    }
    if expect_field && !steps.is_empty() {
        return Err("path ends with '.'".to_string());
    }
    Ok(JsonPath { steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn doc() -> Value {
        parse(
            r#"{"name":"Dipti","address":{"city":"SF","zip":"94105"},
               "orders":[{"sku":"a1","qty":2},{"sku":"b2","qty":1}]}"#,
        )
        .unwrap()
    }

    #[test]
    fn parse_and_eval() {
        let d = doc();
        assert_eq!(parse_path("name").unwrap().eval(&d), Some(&Value::from("Dipti")));
        assert_eq!(parse_path("address.city").unwrap().eval(&d), Some(&Value::from("SF")));
        assert_eq!(parse_path("orders[0].sku").unwrap().eval(&d), Some(&Value::from("a1")));
        assert_eq!(parse_path("orders[-1].sku").unwrap().eval(&d), Some(&Value::from("b2")));
        assert_eq!(parse_path("missing.field").unwrap().eval(&d), None);
        assert_eq!(parse_path("orders[9]").unwrap().eval(&d), None);
        assert_eq!(parse_path("name.sub").unwrap().eval(&d), None);
    }

    #[test]
    fn backtick_identifiers() {
        let d = Value::object([("weird.name", Value::int(1))]);
        assert_eq!(parse_path("`weird.name`").unwrap().eval(&d), Some(&Value::int(1)));
    }

    #[test]
    fn root_path_is_identity() {
        let d = doc();
        assert_eq!(JsonPath::root().eval(&d), Some(&d));
    }

    #[test]
    fn set_creates_intermediates() {
        let mut d = Value::empty_object();
        assert!(parse_path("a.b.c").unwrap().set(&mut d, Value::int(7)));
        assert_eq!(parse_path("a.b.c").unwrap().eval(&d), Some(&Value::int(7)));
        // Overwrite.
        assert!(parse_path("a.b.c").unwrap().set(&mut d, Value::int(8)));
        assert_eq!(parse_path("a.b.c").unwrap().eval(&d), Some(&Value::int(8)));
    }

    #[test]
    fn set_into_array() {
        let mut d = doc();
        assert!(parse_path("orders[1].qty").unwrap().set(&mut d, Value::int(5)));
        assert_eq!(parse_path("orders[1].qty").unwrap().eval(&d), Some(&Value::int(5)));
        // Out of range fails.
        assert!(!parse_path("orders[5].qty").unwrap().set(&mut d, Value::int(5)));
        // Cannot descend through a scalar.
        assert!(!parse_path("name.x").unwrap().set(&mut d, Value::int(1)));
    }

    #[test]
    fn remove_paths() {
        let mut d = doc();
        assert_eq!(parse_path("address.zip").unwrap().remove(&mut d), Some(Value::from("94105")));
        assert_eq!(parse_path("address.zip").unwrap().eval(&d), None);
        let removed = parse_path("orders[0]").unwrap().remove(&mut d).unwrap();
        assert_eq!(removed.get_field("sku"), Some(&Value::from("a1")));
        assert_eq!(d.get_field("orders").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(parse_path("nope").unwrap().remove(&mut d), None);
    }

    #[test]
    fn path_display_roundtrip() {
        for p in ["a.b.c", "a[0].b", "a[-1]", "x"] {
            assert_eq!(parse_path(p).unwrap().to_path_string(), p);
        }
    }

    #[test]
    fn parse_errors() {
        for bad in [".a", "a..b", "a.", "a[", "a[x]", "`abc", "a`b`"] {
            assert!(parse_path(bad).is_err(), "{bad} should fail");
        }
    }
}
