//! JSON document model for the Couchbase Server reproduction.
//!
//! Couchbase Server "stores data in JSON documents, where each document is a
//! JSON object consisting of a number of fields" (paper §3). This crate is
//! the workspace's single JSON implementation, used end-to-end by the data
//! service, the view engine, the GSI projector, and the N1QL
//! evaluator:
//!
//! - [`Value`] — the document value model (with object key order preserved,
//!   as JSON documents round-trip through the storage engine byte-exactly in
//!   spirit);
//! - [`parse`] — a recursive-descent parser with precise error positions;
//! - [`Value::to_json_string`] — the serializer;
//! - [`path`] — dotted-path / array-subscript navigation (`a.b[2].c`), the
//!   primitive under view map functions and index key extraction;
//! - [`collate`] — the N1QL/view collation total order
//!   (`missing < null < false < true < number < string < array < object`),
//!   which is the sort order of every index B-tree in the system.

pub mod collate;
pub mod parse;
pub mod path;
pub mod print;
pub mod shared;
pub mod value;

pub use collate::{cmp_missing, cmp_values, CollatedValue, TypeRank};
pub use parse::{parse, ParseError};
pub use path::{parse_path, JsonPath, PathStep};
pub use shared::SharedValue;
pub use value::{Number, Value};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_value() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::int),
            // Finite floats only: JSON has no NaN/Inf.
            (-1e15f64..1e15f64).prop_map(Value::float),
            "[a-zA-Z0-9 _\\-\\.\\\\\"/\u{00e9}\u{4e16}]*".prop_map(Value::from),
        ];
        leaf.prop_recursive(4, 64, 8, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 0..8).prop_map(Value::Array),
                prop::collection::vec(("[a-z]{1,6}", inner), 0..8).prop_map(|pairs| {
                    let mut obj = Value::empty_object();
                    for (k, v) in pairs {
                        obj.insert_field(&k, v);
                    }
                    obj
                }),
            ]
        })
    }

    proptest! {
        /// Serialize → parse must be the identity on every representable value.
        #[test]
        fn roundtrip(v in arb_value()) {
            let s = v.to_json_string();
            let back = parse(&s).expect("serializer output must re-parse");
            prop_assert_eq!(v, back);
        }

        /// Collation is a total order: antisymmetric and transitive on triples.
        #[test]
        fn collation_total_order(a in arb_value(), b in arb_value(), c in arb_value()) {
            use std::cmp::Ordering;
            prop_assert_eq!(cmp_values(&a, &a), Ordering::Equal);
            prop_assert_eq!(cmp_values(&a, &b), cmp_values(&b, &a).reverse());
            if cmp_values(&a, &b) == Ordering::Less && cmp_values(&b, &c) == Ordering::Less {
                prop_assert_eq!(cmp_values(&a, &c), Ordering::Less);
            }
        }

        /// Pretty output parses to the same value as compact output.
        #[test]
        fn pretty_roundtrip(v in arb_value()) {
            let s = print::to_json_pretty(&v, 2);
            let back = parse(&s).expect("pretty output must re-parse");
            prop_assert_eq!(v, back);
        }
    }
}
