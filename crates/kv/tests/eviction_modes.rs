//! Integration tests for the cache/storage interplay under memory
//! pressure: value-only vs full eviction (§4.3.3), background fetches,
//! and JSON parser robustness on hostile inputs.

// Tests unwrap freely; the crate's unwrap_used deny targets lib code (the
// allow-unwrap-in-tests config covers #[test] fns but not file helpers).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;
use std::time::Duration;

use cbs_cache::EvictionPolicy;
use cbs_common::Cas;
use cbs_json::Value;
use cbs_kv::{DataEngine, EngineConfig, FlusherHandle, MutateMode};

fn engine_with(policy: EvictionPolicy, quota: usize) -> Arc<DataEngine> {
    let mut cfg = EngineConfig::for_test(16);
    cfg.eviction = policy;
    cfg.cache_quota = quota;
    let e = DataEngine::new(cfg).unwrap();
    e.activate_all();
    e
}

fn big_doc(i: i64) -> Value {
    Value::object([("i", Value::int(i)), ("pad", Value::from("x".repeat(2000)))])
}

#[test]
fn value_eviction_background_fetches_from_disk() {
    // Quota small enough that values must be evicted once clean.
    let engine = engine_with(EvictionPolicy::ValueOnly, 300_000);
    let flusher = FlusherHandle::spawn(Arc::clone(&engine), Duration::from_millis(2)).unwrap();
    let n = 300i64;
    let mut written = 0;
    for i in 0..n {
        // Writes may hit TempOom while the flusher catches up; retry.
        let mut attempts = 0;
        loop {
            match engine.set(&format!("k{i}"), big_doc(i), MutateMode::Upsert, Cas::WILDCARD, 0) {
                Ok(_) => {
                    written += 1;
                    break;
                }
                Err(cbs_common::Error::TempOom) if attempts < 200 => {
                    attempts += 1;
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => panic!("unexpected: {e}"),
            }
        }
    }
    assert_eq!(written, n);
    // Wait for everything to persist, then force eviction pressure off.
    for vb in 0..16u16 {
        let vb = cbs_common::VbId(vb);
        let high = engine.high_seqno(vb);
        if high.0 > 0 {
            engine.wait_persisted(vb, high, Duration::from_secs(10)).unwrap();
        }
    }
    // Every document must still be readable — evicted values come back via
    // background fetch (§4.3.3), proven by the bg_fetch counter.
    for i in 0..n {
        let got = engine.get(&format!("k{i}")).unwrap();
        assert_eq!(got.value.get_field("i"), Some(&Value::int(i)));
    }
    let stats = engine.stats();
    assert!(stats.bg_fetches.get() > 0, "under a tight quota some reads must have gone to disk");
    flusher.shutdown();
}

#[test]
fn full_eviction_still_serves_all_documents() {
    let engine = engine_with(EvictionPolicy::Full, 300_000);
    let flusher = FlusherHandle::spawn(Arc::clone(&engine), Duration::from_millis(2)).unwrap();
    let n = 200i64;
    for i in 0..n {
        loop {
            match engine.set(&format!("k{i}"), big_doc(i), MutateMode::Upsert, Cas::WILDCARD, 0) {
                Ok(_) => break,
                Err(cbs_common::Error::TempOom) => std::thread::sleep(Duration::from_millis(2)),
                Err(e) => panic!("unexpected: {e}"),
            }
        }
    }
    for vb in 0..16u16 {
        let vb = cbs_common::VbId(vb);
        let high = engine.high_seqno(vb);
        if high.0 > 0 {
            engine.wait_persisted(vb, high, Duration::from_secs(10)).unwrap();
        }
    }
    engine.cache_stats(); // warm the accounting paths
    for i in 0..n {
        let got = engine.get(&format!("k{i}")).unwrap();
        assert_eq!(got.value.get_field("i"), Some(&Value::int(i)), "k{i}");
    }
    flusher.shutdown();
}

#[test]
fn json_parser_never_panics_on_garbage() {
    use proptest::prelude::*;
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::default();
    runner
        .run(&any::<Vec<u8>>(), |bytes| {
            if let Ok(s) = std::str::from_utf8(&bytes) {
                let _ = cbs_json::parse(s); // must not panic
            }
            Ok(())
        })
        .unwrap();
    // And some targeted nasties.
    for s in [
        "{\"a\":",
        "[[[[[[",
        "\"\\ud800\\ud800\"",
        "1e99999",
        "-",
        "{\"\":{\"\":{\"\":null}}}",
        "[1,2,3,]",
        "\u{0000}",
    ] {
        let _ = cbs_json::parse(s);
    }
}

#[test]
fn expiry_pager_reaps_without_access() {
    use cbs_dcp::DcpKind;
    let engine = engine_with(EvictionPolicy::ValueOnly, 64 << 20);
    let now = std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_secs()
        as u32;
    engine
        .set("short-lived", Value::int(1), MutateMode::Upsert, Cas::WILDCARD, now.saturating_sub(1))
        .unwrap();
    engine.set("immortal", Value::int(2), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
    // Watch DCP: the pager must publish an Expiration without any read.
    let vb = engine.vb_for_key("short-lived");
    let mut stream = engine.open_dcp_stream(vb, engine.high_seqno(vb)).unwrap();
    let reaped = engine.run_expiry_pager();
    assert_eq!(reaped, 1, "exactly the expired doc");
    let items = stream.drain_available();
    assert!(items.iter().any(|i| i.kind == DcpKind::Expiration && i.key == "short-lived"));
    assert!(engine.get("immortal").is_ok());
    assert!(engine.get("short-lived").is_err());
    // Second sweep is a no-op.
    assert_eq!(engine.run_expiry_pager(), 0);
}
