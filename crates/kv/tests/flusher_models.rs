//! Exhaustive interleaving models of the flusher shard protocol.
//!
//! Each model reproduces one of the three concurrency bugs found in the
//! review of the sharded-flusher PR, as a small explicit state machine run
//! through `cbs_common::model::Explorer` (the workspace's loom substitute —
//! see DESIGN.md §9). Every model comes in two variants:
//!
//! - **buggy** — the pre-fix protocol shape. The explorer must find a
//!   counterexample (the bad interleaving is reachable). These variants are
//!   *revert detection*: if someone re-introduces the old shape, the
//!   matching `fixed` model stops verifying, and the buggy model here
//!   documents exactly which schedule kills it.
//! - **fixed** — the shipped protocol. The explorer must verify every
//!   interleaving clean.
//!
//! The three bugs:
//!
//! 1. `checkpoint` could truncate the WAL between a drain cycle's WAL sync
//!    and its (unsynced) store appends → acknowledged writes unrecoverable
//!    after a crash. Fixed by the per-shard `flush_lock` held across the
//!    whole cycle and taken by `checkpoint_shard`.
//! 2. `wait_for_dirty` could miss a shutdown wakeup: `stop` was set and the
//!    condvar notified between the flusher's stop check and its wait
//!    registration → thread slept a full interval (forever, with a long
//!    one). Fixed by the generation counter bumped under the signal lock
//!    plus a stop recheck inside the wait loop.
//! 3. A failed drain dropped its snapshotted keys (queue already taken,
//!    counter already decremented) → items stranded dirty-but-unqueued and
//!    `wait_persisted` callers hung. Fixed by re-enqueueing the snapshot
//!    (deduped against newer writes) and restoring the counter.

// Tests unwrap freely; the crate's unwrap_used deny targets lib code (the
// allow-unwrap-in-tests config covers #[test] fns but not file helpers).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use cbs_common::model::{Explorer, Step, Violation};

// ---------------------------------------------------------------------------
// Model 1: drain cycle vs. checkpoint (WAL truncation)
// ---------------------------------------------------------------------------

/// One record moving through a drain cycle while a checkpoint runs. Lock
/// regions are single atomic steps, matching the real code's granularity.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct CkptState {
    /// Which thread holds the shard flush lock (0 = flusher, 1 = checkpoint).
    flush_lock: Option<u8>,
    /// Record is covered by a synced WAL.
    wal: bool,
    /// Record appended to the vbstore but not fsynced.
    store_unsynced: bool,
    /// Record fsynced in the vbstore.
    store_synced: bool,
    /// Drain cycle completed: the write is acknowledged as durable
    /// (`persisted_seqnos` bumped, `wait_persisted` released).
    acked: bool,
    f_pc: u8,
    c_pc: u8,
}

/// `buggy = true` models the pre-fix code where checkpoint did not take the
/// shard flush lock.
fn drain_vs_checkpoint(buggy: bool) -> Result<(), String> {
    let init = CkptState {
        flush_lock: None,
        wal: false,
        store_unsynced: false,
        store_synced: false,
        acked: false,
        f_pc: 0,
        c_pc: 0,
    };
    let result = Explorer::new(init)
        // Flusher: lock → WAL append+sync → store append (unsynced) → ack+unlock.
        .thread(|s: &mut CkptState| match s.f_pc {
            0 => {
                if s.flush_lock.is_some() {
                    return Step::Blocked;
                }
                s.flush_lock = Some(0);
                s.f_pc = 1;
                Step::Progressed
            }
            1 => {
                s.wal = true; // append_cycle + sync: the cycle's durability point
                s.f_pc = 2;
                Step::Progressed
            }
            2 => {
                s.store_unsynced = true; // persist_batch, no fsync
                s.f_pc = 3;
                Step::Progressed
            }
            _ => {
                s.acked = true; // mark_clean + persisted_seqnos bump
                s.flush_lock = None;
                Step::Finished
            }
        })
        // Checkpoint: [lock →] store fsync → WAL reset [→ unlock].
        .thread(move |s: &mut CkptState| match s.c_pc {
            0 => {
                if !buggy {
                    if s.flush_lock.is_some() {
                        return Step::Blocked;
                    }
                    s.flush_lock = Some(1);
                }
                s.c_pc = 1;
                Step::Progressed
            }
            1 => {
                // store.sync(): whatever was appended becomes durable
                if s.store_unsynced {
                    s.store_unsynced = false;
                    s.store_synced = true;
                }
                s.c_pc = 2;
                Step::Progressed
            }
            _ => {
                s.wal = false; // wal.reset()
                if !buggy {
                    s.flush_lock = None;
                }
                Step::Finished
            }
        })
        // Crash safety: an acknowledged write must be recoverable — either
        // the synced WAL still covers it or the store has fsynced it.
        .invariant(|s: &CkptState| {
            if s.acked && !s.wal && !s.store_synced {
                Err("acked write recoverable from neither WAL nor store".into())
            } else {
                Ok(())
            }
        })
        .run();
    match result {
        Ok(_) => Ok(()),
        Err(cex) => Err(cex.to_string()),
    }
}

#[test]
fn checkpoint_cannot_truncate_unsynced_drain() {
    drain_vs_checkpoint(false).expect("fixed protocol must verify clean");
}

#[test]
fn lockless_checkpoint_loses_acked_writes() {
    let err =
        drain_vs_checkpoint(true).expect_err("explorer must find the WAL-truncation interleaving");
    assert!(err.contains("recoverable from neither"), "unexpected violation: {err}");
}

// ---------------------------------------------------------------------------
// Model 2: wait_for_dirty vs. shutdown (lost wakeup)
// ---------------------------------------------------------------------------

/// A flusher thread going to sleep while shutdown fires. The condvar is
/// modelled honestly as *lossy*: a notify only wakes a thread already
/// waiting. The generation counter is what makes the handshake lossless.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct WakeState {
    stop: bool,
    /// Signal generation, bumped under the signal lock by writers/shutdown.
    gen: u8,
    /// Generation recorded by the flusher when it began waiting.
    f_start: u8,
    /// Buggy variant only: is the flusher parked on the (lossy) condvar?
    f_waiting: bool,
    /// Buggy variant only: did a notify land while it was parked?
    wake: bool,
    f_pc: u8,
    s_pc: u8,
}

/// `buggy = true` models the pre-fix shape: no generation handshake, stop
/// not rechecked under the signal lock — just a raw condvar wait.
fn wait_vs_shutdown(buggy: bool) -> Result<(), String> {
    let init = WakeState {
        stop: false,
        gen: 0,
        f_start: 0,
        f_waiting: false,
        wake: false,
        f_pc: 0,
        s_pc: 0,
    };
    let result = Explorer::new(init)
        // Flusher: outer stop check, then wait for a signal.
        .thread(move |s: &mut WakeState| match s.f_pc {
            0 => {
                // `while !stop.load()` in the pool thread's loop head.
                if s.stop {
                    return Step::Finished;
                }
                s.f_pc = 1;
                Step::Progressed
            }
            1 => {
                if buggy {
                    // Raw wait: park on the condvar; only a notify that
                    // arrives *while parked* can wake us.
                    s.f_waiting = true;
                } else {
                    // Fixed: record the generation under the signal lock.
                    s.f_start = s.gen;
                }
                s.f_pc = 2;
                Step::Progressed
            }
            _ => {
                if buggy {
                    if s.wake {
                        Step::Finished
                    } else {
                        Step::Blocked // parked; nothing rechecks stop
                    }
                } else {
                    // Fixed wait loop: `while *gen == start && !stop`.
                    if s.gen != s.f_start || s.stop {
                        Step::Finished
                    } else {
                        Step::Blocked
                    }
                }
            }
        })
        // Shutdown: set stop, then wake the shard.
        .thread(move |s: &mut WakeState| match s.s_pc {
            0 => {
                s.stop = true;
                s.s_pc = 1;
                Step::Progressed
            }
            _ => {
                if buggy {
                    // Plain notify: lost unless the flusher is already parked.
                    if s.f_waiting {
                        s.wake = true;
                    }
                } else {
                    // wake_flushers(): bump the generation under the signal
                    // lock (and notify, which the gen check subsumes).
                    s.gen = s.gen.wrapping_add(1);
                    if s.f_waiting {
                        s.wake = true;
                    }
                }
                Step::Finished
            }
        })
        .run();
    match result {
        Ok(_) => Ok(()),
        Err(cex) => match cex.violation {
            Violation::Deadlock => Err(format!("lost wakeup: {cex}")),
            _ => Err(cex.to_string()),
        },
    }
}

#[test]
fn shutdown_wakeup_cannot_be_lost() {
    wait_vs_shutdown(false).expect("fixed handshake must verify clean");
}

#[test]
fn raw_condvar_wait_sleeps_through_shutdown() {
    let err = wait_vs_shutdown(true).expect_err("explorer must find the lost-wakeup interleaving");
    assert!(err.contains("lost wakeup"), "unexpected violation: {err}");
}

// ---------------------------------------------------------------------------
// Model 3: failed drain vs. concurrent writer (stranded dirty items)
// ---------------------------------------------------------------------------

/// One key, one flusher whose first commit fails (injected I/O error), one
/// concurrent writer re-writing the same key. Tracks the dirty queue, the
/// shard's dirty counter, and the cache item's dirty flag.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct RetryState {
    /// Key present in the dirty queue.
    queued: bool,
    /// Shard dirty_count (must always equal the queue's length).
    dirty_count: u8,
    /// Cache item carries unpersisted data.
    item_dirty: bool,
    f_pc: u8,
    f_done: bool,
    w_done: bool,
}

/// `buggy = true` models the pre-fix error path: the failed cycle's
/// snapshot is dropped instead of re-enqueued.
fn failed_drain_vs_writer(buggy: bool) -> Result<(), String> {
    let init = RetryState {
        queued: true, // one pending write already acknowledged into the queue
        dirty_count: 1,
        item_dirty: true,
        f_pc: 0,
        f_done: false,
        w_done: false,
    };
    let result = Explorer::new(init)
        // Flusher: snapshot → commit fails → [re-enqueue] → snapshot → commit ok.
        .thread(move |s: &mut RetryState| match s.f_pc {
            0 => {
                // First drain: take the queue, decrement the counter.
                if s.queued {
                    s.queued = false;
                    s.dirty_count -= 1;
                }
                s.f_pc = 1;
                Step::Progressed
            }
            1 => {
                // commit_cycle fails (injected). Buggy: snapshot dropped.
                // Fixed: re-enqueue, deduped against newer writes.
                if !buggy && !s.queued {
                    s.queued = true;
                    s.dirty_count += 1;
                }
                s.f_pc = 2;
                Step::Progressed
            }
            2 => {
                // Retry cycle: only runs if the queue has work.
                if s.queued {
                    s.queued = false;
                    s.dirty_count -= 1;
                    s.f_pc = 3;
                } else {
                    s.f_done = true;
                    return Step::Finished;
                }
                Step::Progressed
            }
            _ => {
                // commit_cycle succeeds. mark_clean is seqno-guarded: if a
                // newer write re-queued the key meanwhile, the item stays
                // dirty (and queued) for the next cycle.
                if !s.queued {
                    s.item_dirty = false;
                }
                s.f_done = true;
                Step::Finished
            }
        })
        // Writer: one more write to the same key (enqueue_dirty dedups).
        .thread(|s: &mut RetryState| {
            s.item_dirty = true;
            if !s.queued {
                s.queued = true;
                s.dirty_count += 1;
            }
            s.w_done = true;
            Step::Finished
        })
        .invariant(|s: &RetryState| {
            // Counter consistency: dirty_count is exactly the queue length.
            if s.dirty_count != s.queued as u8 {
                return Err(format!(
                    "dirty_count {} != queue length {}",
                    s.dirty_count, s.queued as u8
                ));
            }
            // No stranded items: once both threads are done, a dirty item
            // must still be queued (a later cycle will retry it) — otherwise
            // wait_persisted callers hang forever.
            if s.f_done && s.w_done && s.item_dirty && !s.queued {
                return Err("dirty item stranded out of the queue".into());
            }
            Ok(())
        })
        .run();
    match result {
        Ok(_) => Ok(()),
        Err(cex) => Err(cex.to_string()),
    }
}

#[test]
fn failed_drain_requeues_its_snapshot() {
    failed_drain_vs_writer(false).expect("fixed error path must verify clean");
}

#[test]
fn dropped_snapshot_strands_dirty_items() {
    let err = failed_drain_vs_writer(true)
        .expect_err("explorer must find the stranded-item interleaving");
    assert!(err.contains("stranded"), "unexpected violation: {err}");
}

// ---------------------------------------------------------------------------
// Meta: the models are small enough to stay exhaustive
// ---------------------------------------------------------------------------

/// Guard against the models silently outgrowing exhaustive exploration: all
/// three verify within a tight state bound, so `cargo test` stays fast.
#[test]
fn models_are_exhaustively_explorable() {
    let stats = Explorer::new(0u8)
        .thread(|n: &mut u8| {
            *n += 1;
            Step::Finished
        })
        .check();
    assert!(stats.states >= 1);
    // The real bound check: re-run the three fixed models and assert they
    // explore completely (Ok), which run() only returns after visiting
    // every reachable interleaving.
    drain_vs_checkpoint(false).unwrap();
    wait_vs_shutdown(false).unwrap();
    failed_drain_vs_writer(false).unwrap();
}
