//! Hot-path allocation check for the *instrumented* KV read path: the
//! service-entry `kv.engine.get` trace is compiled in unconditionally, so a
//! resident get with no PROFILE capture active must still not touch the
//! allocator once the thread's span scratch buffer is warm — profiling that
//! is free when idle is the contract that lets it stay always-on.
//!
//! Runs under a counting global allocator; integration tests get their own
//! binary, so the allocator swap is invisible to the rest of the suite.

// Tests unwrap freely; the crate's unwrap_used deny targets lib code.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use cbs_common::Cas;
use cbs_json::Value;
use cbs_kv::{DataEngine, EngineConfig, MutateMode};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn instrumented_resident_get_is_allocation_free() {
    let engine = DataEngine::new(EngineConfig::for_test(16)).unwrap();
    engine.activate_all();
    let doc = Value::object([("v", Value::int(1)), ("name", Value::from("resident"))]);
    engine.set("user::1", doc, MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();

    // Warm the path: the first gets may allocate the TLS span scratch
    // buffer and any lazily-built lookup state.
    for _ in 0..64 {
        engine.get("user::1").unwrap();
    }

    // The counting allocator is global, so the engine's own background
    // threads (flushers waking up to commit the set above) can land a
    // handful of allocations inside the measurement window. A per-read
    // allocation would show up ~10k times in every window; background
    // noise is O(1) and transient — so measure a few windows and require
    // at least one to be completely clean.
    let mut last = u64::MAX;
    for _ in 0..5 {
        let before = ALLOCS.load(Ordering::SeqCst);
        for _ in 0..10_000 {
            let g = engine.get("user::1").unwrap();
            // The shared document must come back by refcount, not by copy.
            assert!(!g.meta.is_expired_at(0));
        }
        last = ALLOCS.load(Ordering::SeqCst) - before;
        if last == 0 {
            return;
        }
    }
    panic!("instrumented resident get allocated {last} times over 10k reads in every window");
}
