//! The flusher: the background thread draining the disk-write queue.
//!
//! Figure 6 of the paper: mutations are acknowledged from memory and "then
//! asynchronously written to disk via the disk write queue". The flusher is
//! that path. It also periodically triggers fragmentation-threshold
//! compaction (§4.3.3).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::engine::DataEngine;

/// Handle to a running flusher thread; stops (after a final drain) on drop.
pub struct FlusherHandle {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl FlusherHandle {
    /// Spawn a flusher for `engine`, draining every `interval` (and
    /// immediately when the queue is non-empty — the loop is adaptive:
    /// it spins while there is work and sleeps when idle).
    pub fn spawn(engine: Arc<DataEngine>, interval: Duration) -> FlusherHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("cbs-flusher".to_string())
            .spawn(move || {
                let mut since_compaction = 0u32;
                while !stop2.load(Ordering::Relaxed) {
                    let persisted = engine.flush_once().unwrap_or(0);
                    if persisted == 0 {
                        // Sleep in small slices so shutdown stays responsive
                        // even with long idle intervals.
                        let mut remaining = interval;
                        let slice = Duration::from_millis(10);
                        while remaining > Duration::ZERO && !stop2.load(Ordering::Relaxed) {
                            let nap = remaining.min(slice);
                            std::thread::sleep(nap);
                            remaining -= nap;
                        }
                    }
                    since_compaction += 1;
                    // Periodic maintenance roughly once per 64 drain
                    // cycles: fragmentation-threshold compaction and the
                    // expiry pager.
                    if since_compaction >= 64 {
                        since_compaction = 0;
                        let _ = engine.compact_if_needed();
                        let _ = engine.run_expiry_pager();
                    }
                }
                // Final drain so a clean shutdown persists everything.
                let _ = engine.flush_once();
            })
            .expect("spawn flusher");
        FlusherHandle { stop, handle: Some(handle) }
    }

    /// Request stop and wait for the final drain.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for FlusherHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{EngineConfig, MutateMode};
    use cbs_common::Cas;
    use cbs_json::Value;

    #[test]
    fn flusher_persists_in_background() {
        let engine = DataEngine::new(EngineConfig::for_test(16)).unwrap();
        engine.activate_all();
        let flusher = FlusherHandle::spawn(Arc::clone(&engine), Duration::from_millis(5));
        let m = engine
            .set("k", Value::int(1), MutateMode::Upsert, Cas::WILDCARD, 0)
            .unwrap();
        // Durability wait is now satisfied by the background flusher.
        engine.wait_persisted(m.vb, m.seqno, Duration::from_secs(5)).unwrap();
        flusher.shutdown();
        assert!(engine.persisted_seqno(m.vb) >= m.seqno);
    }

    #[test]
    fn shutdown_drains_pending_writes() {
        let engine = DataEngine::new(EngineConfig::for_test(16)).unwrap();
        engine.activate_all();
        let flusher = FlusherHandle::spawn(Arc::clone(&engine), Duration::from_secs(3600));
        for i in 0..50 {
            engine
                .set(&format!("k{i}"), Value::int(i), MutateMode::Upsert, Cas::WILDCARD, 0)
                .unwrap();
        }
        flusher.shutdown();
        assert_eq!(engine.disk_queue_len(), 0, "shutdown flushes the queue");
    }
}
