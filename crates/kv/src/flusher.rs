//! The flusher pool: background threads draining the disk-write queue.
//!
//! Figure 6 of the paper: mutations are acknowledged from memory and "then
//! asynchronously written to disk via the disk write queue". The pool is
//! that path, sharded: each thread owns a static slice of vBuckets
//! ([`DataEngine::flush_shard`]) and group-commits every drain cycle with a
//! single WAL fsync instead of one fsync per vBucket. Threads sleep on a
//! condvar and are woken by `enqueue_dirty`, so a write starts persisting
//! immediately rather than after a polling interval. Shard 0's thread also
//! runs periodic maintenance (fragmentation-threshold compaction and the
//! expiry pager, §4.3.3).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use cbs_common::{Error, Result};

use crate::engine::DataEngine;

/// Handle to a running flusher pool; stops (after a final drain and
/// checkpoint) on drop.
pub struct FlusherPool {
    engine: Arc<DataEngine>,
    stop: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
}

/// The pre-pool name, kept so single-flusher call sites read naturally.
pub type FlusherHandle = FlusherPool;

impl FlusherPool {
    /// Spawn one thread per flusher shard of `engine`. Each thread drains
    /// its shard immediately when woken by a write and at least every
    /// `interval` otherwise. Fails (with already-spawned shards stopped and
    /// joined) if the OS refuses a thread.
    pub fn spawn(engine: Arc<DataEngine>, interval: Duration) -> Result<FlusherPool> {
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles: Vec<JoinHandle<()>> = Vec::new();
        for shard in 0..engine.num_flusher_shards() {
            let thread_engine = Arc::clone(&engine);
            let thread_stop = Arc::clone(&stop);
            let spawned =
                std::thread::Builder::new().name(format!("cbs-flusher-{shard}")).spawn(move || {
                    let engine = thread_engine;
                    let stop = thread_stop;
                    let mut since_maintenance = 0u32;
                    while !stop.load(Ordering::Relaxed) {
                        let persisted = match engine.flush_shard(shard) {
                            Ok(n) => n,
                            Err(_) => {
                                // The failed cycle re-queued its keys, so
                                // dirty_count stays > 0 and wait_for_dirty
                                // would return immediately; back off
                                // instead of retrying in a hot loop.
                                std::thread::sleep(Duration::from_millis(50).min(interval));
                                0
                            }
                        };
                        if persisted == 0 {
                            engine.wait_for_dirty(shard, interval, &stop);
                        }
                        // Periodic maintenance on one shard only, roughly
                        // once per 64 drain cycles.
                        if shard == 0 {
                            since_maintenance += 1;
                            if since_maintenance >= 64 {
                                since_maintenance = 0;
                                let _ = engine.compact_if_needed();
                                let _ = engine.run_expiry_pager();
                            }
                        }
                    }
                    // Final drain + checkpoint so a clean shutdown persists
                    // everything and leaves the WAL empty.
                    let _ = engine.flush_shard(shard);
                    let _ = engine.checkpoint_shard(shard);
                });
            match spawned {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    // Unwind the partial pool before reporting: stop and
                    // join the shards that did start.
                    stop.store(true, Ordering::Relaxed);
                    engine.wake_flushers();
                    for h in handles {
                        let _ = h.join();
                    }
                    return Err(Error::Io(format!("spawn flusher shard {shard}: {e}")));
                }
            }
        }
        Ok(FlusherPool { engine, stop, handles })
    }

    /// Number of shard threads in this pool.
    pub fn num_shards(&self) -> usize {
        self.handles.len()
    }

    /// Request stop and wait for every shard's final drain.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Kick sleeping shard threads out of their condvar waits.
        self.engine.wake_flushers();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for FlusherPool {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{EngineConfig, MutateMode};
    use cbs_common::Cas;
    use cbs_json::Value;

    #[test]
    fn flusher_persists_in_background() {
        let engine = DataEngine::new(EngineConfig::for_test(16)).unwrap();
        engine.activate_all();
        let flusher = FlusherPool::spawn(Arc::clone(&engine), Duration::from_millis(5)).unwrap();
        assert!(flusher.num_shards() >= 2, "pool must actually be sharded");
        let m = engine.set("k", Value::int(1), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
        // Durability wait is now satisfied by the background flusher.
        engine.wait_persisted(m.vb, m.seqno, Duration::from_secs(5)).unwrap();
        flusher.shutdown();
        assert!(engine.persisted_seqno(m.vb) >= m.seqno);
    }

    #[test]
    fn shutdown_drains_pending_writes_across_all_shards() {
        let engine = DataEngine::new(EngineConfig::for_test(16)).unwrap();
        engine.activate_all();
        // A huge interval: threads only drain on wakeup or shutdown, so
        // this exercises both the condvar path and the final drain.
        let flusher = FlusherPool::spawn(Arc::clone(&engine), Duration::from_secs(3600)).unwrap();
        let mut vbs_hit = std::collections::HashSet::new();
        for i in 0..50 {
            let m = engine
                .set(&format!("k{i}"), Value::int(i), MutateMode::Upsert, Cas::WILDCARD, 0)
                .unwrap();
            vbs_hit.insert(m.vb);
        }
        // With 16 vBuckets and 50 keys, every shard's slice gets writes.
        assert!(vbs_hit.len() > 4, "keys must spread across vBuckets");
        flusher.shutdown();
        assert_eq!(engine.disk_queue_len(), 0, "shutdown flushes every shard's queue");
        // Every write is durably on disk: a fresh engine over the same
        // directory recovers all 50.
        let mut cfg2 = EngineConfig::for_test(16);
        cfg2.data_dir = engine.config().data_dir.clone();
        drop(engine);
        let e2 = DataEngine::new(cfg2).unwrap();
        for vbi in 0..16 {
            e2.recover_vb(cbs_common::VbId(vbi)).unwrap();
        }
        e2.activate_all();
        for i in 0..50 {
            assert_eq!(
                e2.get(&format!("k{i}")).unwrap().value,
                Value::int(i),
                "k{i} must survive restart"
            );
        }
    }

    #[test]
    fn condvar_wakeup_beats_the_polling_interval() {
        let engine = DataEngine::new(EngineConfig::for_test(16)).unwrap();
        engine.activate_all();
        // Interval is effectively "never": only the enqueue_dirty wakeup
        // can trigger a drain before shutdown.
        let flusher = FlusherPool::spawn(Arc::clone(&engine), Duration::from_secs(3600)).unwrap();
        std::thread::sleep(Duration::from_millis(30)); // let threads reach their waits
        let m = engine.set("wake", Value::int(7), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
        engine
            .wait_persisted(m.vb, m.seqno, Duration::from_secs(5))
            .expect("write must persist via condvar wakeup, not the interval");
        flusher.shutdown();
    }
}
