//! Data-service vocabulary types.

use cbs_common::{Cas, DocMeta, SeqNo, VbId};
use cbs_json::{SharedValue, Value};

/// Lifecycle state of a vBucket on a node (paper §4.3.1):
///
/// - *Active*: "the server hosting the partition is servicing all types of
///   requests for this partition."
/// - *Replica*: "cannot handle client requests, but it will receive
///   replication commands."
/// - *Pending*: transitional state while a rebalance mover builds the copy.
/// - *Dead*: "this server is not in any way responsible for this partition."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VbState {
    /// Serving reads and writes.
    Active,
    /// Receiving replication traffic only.
    Replica,
    /// Being built by a rebalance mover.
    Pending,
    /// Not hosted here.
    #[default]
    Dead,
}

/// How a write treats an existing document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutateMode {
    /// Insert-or-update (the memcached `set`).
    Upsert,
    /// Insert only; fails with `KeyExists` if present.
    Insert,
    /// Update only; fails with `KeyNotFound` if absent.
    Replace,
}

/// A read result. The body is a [`SharedValue`]: on a cache hit it aliases
/// the cached document (a reference-count bump, never a deep clone).
#[derive(Debug, Clone, PartialEq)]
pub struct GetResult {
    /// Document body.
    pub value: SharedValue,
    /// Metadata (CAS for optimistic locking, etc.).
    pub meta: DocMeta,
}

/// An acknowledged mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutationResult {
    /// The vBucket the document hashed to.
    pub vb: VbId,
    /// Seqno assigned within that vBucket.
    pub seqno: SeqNo,
    /// Fresh CAS of the new version.
    pub cas: Cas,
}

/// A full document (used by scans and tests).
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    /// Document ID.
    pub id: String,
    /// Body.
    pub value: Value,
    /// Metadata.
    pub meta: DocMeta,
}

/// Per-vBucket operational snapshot (the `cbstats vbucket` surface).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VbucketStats {
    /// The vBucket.
    pub vb: VbId,
    /// Current lifecycle state.
    pub state: VbState,
    /// Highest assigned seqno.
    pub high_seqno: SeqNo,
    /// Highest persisted seqno.
    pub persisted_seqno: SeqNo,
    /// Keys waiting in this vBucket's disk-write queue.
    pub queued_items: u64,
}

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of vBuckets (1024 in production; tests may shrink).
    pub num_vbuckets: u16,
    /// Cache quota in bytes.
    pub cache_quota: usize,
    /// Cache eviction policy.
    pub eviction: cbs_cache::EvictionPolicy,
    /// Storage directory.
    pub data_dir: std::path::PathBuf,
    /// Compaction trigger: stale-byte fraction (§4.3.3 "based on a
    /// fragmentation threshold").
    pub fragmentation_threshold: f64,
    /// GETL default lock timeout ("this lock will be released after a
    /// certain timeout to avoid deadlocks", §3.1.1).
    pub lock_timeout: std::time::Duration,
    /// Number of flusher shards: each owns a static slice of vBuckets and
    /// group-commits its drain cycles with one fsync. Clamped to
    /// `1..=num_vbuckets`.
    pub flusher_shards: usize,
    /// Causal trace sink for this engine's node lane (DESIGN.md §17).
    /// `None` disables cross-boundary tracing; span recording then costs
    /// one `Option` check.
    pub trace: Option<cbs_obs::TraceSink>,
}

impl EngineConfig {
    /// A small-footprint config for tests, rooted at a scratch directory.
    pub fn for_test(num_vbuckets: u16) -> EngineConfig {
        EngineConfig {
            num_vbuckets,
            cache_quota: 256 << 20,
            eviction: cbs_cache::EvictionPolicy::ValueOnly,
            data_dir: cbs_storage::scratch_dir("kv"),
            fragmentation_threshold: 0.6,
            lock_timeout: std::time::Duration::from_secs(15),
            flusher_shards: 4,
            trace: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        assert_eq!(VbState::default(), VbState::Dead);
        let cfg = EngineConfig::for_test(16);
        assert_eq!(cfg.num_vbuckets, 16);
        assert!(cfg.fragmentation_threshold > 0.0);
    }
}
