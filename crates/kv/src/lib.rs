//! The Data Service (the paper's §4.3.3) — Couchbase's "ep-engine".
//!
//! "The Data Service provides the KV API that allows developers to create,
//! retrieve, update and delete records by primary key. The Data Service
//! forms the base data management layer of Couchbase and is leveraged by
//! the Indexing and Query services."
//!
//! [`DataEngine`] composes the substrates into the memory-first write path
//! of Figure 6:
//!
//! ```text
//!  client write ──► object cache (hash table, +seqno, +CAS) ──► ACK
//!                        │                    │
//!                        ▼ (async)            ▼ (sync, in-memory)
//!                  disk-write queue       DCP publish ──► replicas,
//!                        │                               views, GSI, XDCR
//!                        ▼
//!                  flusher pool ──► group-commit WAL (1 fsync/cycle)
//!                   (N shards)        └─► append-only storage ──► mark clean
//! ```
//!
//! - **CAS optimistic locking** and **GETL hard locks with timeout**
//!   (§3.1.1);
//! - **durability options**: callers can wait for persistence
//!   (`wait_persisted`) and the cluster layer composes replication waits
//!   (§2.3.2 "Durability guarantees");
//! - **TTL expiry** (lazy, on access);
//! - **vBucket states** (`Active`/`Replica`/`Pending`/`Dead`) driving
//!   failover and rebalance transitions (§4.3.1);
//! - **replica apply** and **set-with-meta** paths used by intra-cluster
//!   replication and XDCR;
//! - a [`cbs_dcp::BackfillSource`] implementation that merges the storage
//!   engine's by-seqno index with the dirty in-memory tail, so DCP streams
//!   see every acknowledged write.

pub mod engine;
pub mod flusher;
pub mod stats;
pub mod types;

pub use engine::DataEngine;
pub use flusher::{FlusherHandle, FlusherPool};
pub use stats::EngineStats;
pub use types::{
    Document, EngineConfig, GetResult, MutateMode, MutationResult, VbState, VbucketStats,
};

/// Current unix time in seconds (expiry granularity). Delegates to the
/// workspace's single wall-clock read point (`cbs_common::time`).
pub(crate) fn now_secs() -> u32 {
    cbs_common::time::now_unix_secs()
}
