//! Engine operation counters and latency histograms.
//!
//! All handles are resolved from the engine's [`cbs_obs::Registry`] once at
//! construction (`service.component.metric` names under `kv.*`); recording
//! on the hot path is a single relaxed atomic op per metric.

use std::sync::Arc;

use cbs_obs::{Counter, Histogram, Registry};

/// Metric handles for one [`crate::DataEngine`].
#[derive(Debug)]
pub struct EngineStats {
    /// Successful + failed get attempts (`kv.engine.gets`).
    pub gets: Arc<Counter>,
    /// Acknowledged sets (`kv.engine.sets`).
    pub sets: Arc<Counter>,
    /// Acknowledged deletes (`kv.engine.deletes`).
    pub deletes: Arc<Counter>,
    /// Lazy TTL expirations performed (`kv.engine.expirations`).
    pub expirations: Arc<Counter>,
    /// Background fetches (value evicted, read from disk;
    /// `kv.engine.bg_fetches`).
    pub bg_fetches: Arc<Counter>,
    /// Items persisted by the flusher (`kv.flusher.items_flushed`).
    pub flushed: Arc<Counter>,
    /// Writes de-duplicated in the disk-write queue
    /// (`kv.flusher.dedup_writes`).
    pub dedup_writes: Arc<Counter>,
    /// Mutations applied on replica vBuckets (`kv.engine.replica_applies`).
    pub replica_applies: Arc<Counter>,
    /// XDCR set-with-meta applies (incoming won; `kv.engine.xdcr_applies`).
    pub xdcr_applies: Arc<Counter>,
    /// XDCR set-with-meta rejects (existing won; `kv.engine.xdcr_rejects`).
    pub xdcr_rejects: Arc<Counter>,
    /// Front-end get latency (`kv.engine.get_latency`).
    pub get_latency: Arc<Histogram>,
    /// Front-end set latency (`kv.engine.set_latency`).
    pub set_latency: Arc<Histogram>,
    /// Group-commit WAL fsync latency, one sample per drain cycle
    /// (`kv.flusher.fsync_latency`).
    pub fsync_latency: Arc<Histogram>,
}

impl EngineStats {
    /// Resolve every handle in `registry`.
    pub fn new(registry: &Registry) -> EngineStats {
        EngineStats {
            gets: registry.counter("kv.engine.gets"),
            sets: registry.counter("kv.engine.sets"),
            deletes: registry.counter("kv.engine.deletes"),
            expirations: registry.counter("kv.engine.expirations"),
            bg_fetches: registry.counter("kv.engine.bg_fetches"),
            flushed: registry.counter("kv.flusher.items_flushed"),
            dedup_writes: registry.counter("kv.flusher.dedup_writes"),
            replica_applies: registry.counter("kv.engine.replica_applies"),
            xdcr_applies: registry.counter("kv.engine.xdcr_applies"),
            xdcr_rejects: registry.counter("kv.engine.xdcr_rejects"),
            get_latency: registry.histogram("kv.engine.get_latency"),
            set_latency: registry.histogram("kv.engine.set_latency"),
            fsync_latency: registry.histogram("kv.flusher.fsync_latency"),
        }
    }

    /// Total front-end ops (gets + sets + deletes).
    pub fn total_ops(&self) -> u64 {
        self.gets.get() + self.sets.get() + self.deletes.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let s = EngineStats::new(&Registry::new("kv"));
        s.gets.add(3);
        s.sets.add(2);
        s.deletes.add(1);
        assert_eq!(s.total_ops(), 6);
    }

    #[test]
    fn handles_feed_the_registry() {
        let r = Registry::new("kv");
        let s = EngineStats::new(&r);
        s.bg_fetches.inc();
        s.fsync_latency.record(std::time::Duration::from_micros(250));
        let snap = r.snapshot();
        assert_eq!(snap.counter("kv.engine.bg_fetches"), 1);
        assert_eq!(snap.histogram("kv.flusher.fsync_latency").count(), 1);
    }
}
