//! Engine operation counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic operation counters for one [`crate::DataEngine`].
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Successful + failed get attempts.
    pub gets: AtomicU64,
    /// Acknowledged sets.
    pub sets: AtomicU64,
    /// Acknowledged deletes.
    pub deletes: AtomicU64,
    /// Lazy TTL expirations performed.
    pub expirations: AtomicU64,
    /// Background fetches (value evicted, read from disk).
    pub bg_fetches: AtomicU64,
    /// Items persisted by the flusher.
    pub flushed: AtomicU64,
    /// Writes de-duplicated in the disk-write queue.
    pub dedup_writes: AtomicU64,
    /// Mutations applied on replica vBuckets.
    pub replica_applies: AtomicU64,
    /// XDCR set-with-meta applies (incoming won).
    pub xdcr_applies: AtomicU64,
    /// XDCR set-with-meta rejects (existing won).
    pub xdcr_rejects: AtomicU64,
}

impl EngineStats {
    /// Total front-end ops (gets + sets + deletes).
    pub fn total_ops(&self) -> u64 {
        self.gets.load(Ordering::Relaxed)
            + self.sets.load(Ordering::Relaxed)
            + self.deletes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let s = EngineStats::default();
        s.gets.store(3, Ordering::Relaxed);
        s.sets.store(2, Ordering::Relaxed);
        s.deletes.store(1, Ordering::Relaxed);
        assert_eq!(s.total_ops(), 6);
    }
}
