//! The data engine: memory-first write path, KV API, vBucket states.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use cbs_cache::{CacheLookup, ObjectCache};
use cbs_common::sync::{rank, OrderedMutex};
use cbs_common::{vbucket_for_key, Cas, CasClock, DocMeta, Error, Result, RevNo, SeqNo, VbId};
use cbs_dcp::{BackfillSource, DcpHub, DcpItem, DcpKind, DcpStream};
use cbs_json::{SharedValue, Value};
use cbs_obs::{span, Gauge, Registry, TraceContext};
use cbs_storage::{BucketStore, GroupCommitWal, StoredDoc};
use parking_lot::Condvar;

use crate::now_secs;
use crate::stats::EngineStats;
use crate::types::{Document, EngineConfig, GetResult, MutateMode, MutationResult, VbState};

/// One vBucket's snapshotted dirty queue: the keys drained this cycle plus
/// the trace contexts attached to them, kept around so a failed commit can
/// re-enqueue both.
type DirtySnapshot = (VbId, Vec<Arc<str>>, HashMap<Arc<str>, TraceContext>);

/// Per-vBucket mutable state, guarded by one mutex per vBucket. The mutex
/// also serializes the write path (seqno assignment → cache → dirty queue →
/// DCP publish), which is what guarantees seqno-ordered DCP delivery.
struct VbMeta {
    state: VbState,
    /// GETL hard locks: key → (lock token, expiry instant). "This lock will
    /// be released after a certain timeout to avoid deadlocks" (§3.1.1).
    locks: HashMap<String, (Cas, Instant)>,
}

/// Per-vBucket disk-write queue with de-duplication: "asynchrony [...]
/// provides an opportunity for repeated updates to an object to be
/// aggregated at the level of persistence" (§2.3.2). Keys are `Arc<str>`
/// shared between the ordered queue and the de-dup set, so each enqueued
/// key costs one allocation, not two.
#[derive(Default)]
struct DirtyQueue {
    keys: Vec<Arc<str>>,
    queued: std::collections::HashSet<Arc<str>>,
    /// Causal trace contexts of queued writes (DESIGN.md §17): the flusher
    /// records a `kv.flusher.wal_commit` span against each at the group
    /// commit that persists the key. Only traced writes pay the entry.
    ctxs: HashMap<Arc<str>, TraceContext>,
}

impl DirtyQueue {
    fn enqueue(&mut self, key: &str) -> bool {
        if self.queued.contains(key) {
            return false;
        }
        self.enqueue_shared(Arc::from(key))
    }

    /// Enqueue an already-shared key (the flusher's error path re-queuing
    /// a failed cycle's snapshot) without reallocating it.
    fn enqueue_shared(&mut self, key: Arc<str>) -> bool {
        if self.queued.contains(&*key) {
            return false;
        }
        self.queued.insert(Arc::clone(&key));
        self.keys.push(key);
        true
    }

    /// Remember the trace that last dirtied `key` (latest write wins, which
    /// matches de-duplication: the retained version is the newest).
    fn attach_ctx(&mut self, key: &str, ctx: TraceContext) {
        if let Some(shared) = self.queued.get(key) {
            self.ctxs.insert(Arc::clone(shared), ctx);
        }
    }

    fn take(&mut self) -> (Vec<Arc<str>>, HashMap<Arc<str>, TraceContext>) {
        self.queued.clear();
        (std::mem::take(&mut self.keys), std::mem::take(&mut self.ctxs))
    }
}

/// One flusher shard: a static slice of vBuckets drained together, with the
/// cycle's records group-committed through a single WAL fsync.
struct FlushShard {
    /// The vBuckets this shard owns (static assignment).
    vbs: Vec<VbId>,
    /// Group-commit write-ahead log; one `sync()` per drain cycle.
    wal: GroupCommitWal,
    /// Dirty keys queued across this shard's vBuckets — exported as the
    /// per-shard backpressure gauge `kv.flusher.queue_depth_s<N>`.
    dirty_count: Arc<Gauge>,
    /// WAL bytes since the last checkpoint
    /// (`kv.flusher.wal_bytes_s<N>`), refreshed after every drain cycle
    /// and checkpoint.
    wal_bytes: Arc<Gauge>,
    /// Wakeup generation counter; bumped (under the lock) by
    /// `enqueue_dirty` so a sleeping flusher thread cannot miss a write.
    signal: OrderedMutex<u64>,
    signal_cv: Condvar,
    /// vBuckets with store writes not yet covered by a checkpoint fsync.
    touched: OrderedMutex<std::collections::HashSet<VbId>>,
    /// Serializes a whole drain cycle (WAL append → sync → store writes →
    /// touched-set insert) against checkpoints. Without it a checkpoint
    /// from another thread (e.g. `purge_vb` on the cluster manager) could
    /// truncate WAL records whose covering store writes are still
    /// unsynced, or an in-flight cycle could append a purged vBucket's
    /// records after its checkpoint. Also makes concurrent `flush_shard`
    /// calls on one shard (public `flush_once` vs. the pool) safe.
    flush_lock: OrderedMutex<()>,
}

/// The data service engine for one bucket on one node.
pub struct DataEngine {
    cfg: EngineConfig,
    cache: ObjectCache,
    store: BucketStore,
    hub: DcpHub,
    clock: CasClock,
    vbs: Vec<OrderedMutex<VbMeta>>,
    high_seqnos: Vec<AtomicU64>,
    persisted_seqnos: Vec<AtomicU64>,
    dirty: Vec<OrderedMutex<DirtyQueue>>,
    shards: Vec<FlushShard>,
    persist_mutex: OrderedMutex<()>,
    persist_cv: Condvar,
    registry: Arc<Registry>,
    stats: EngineStats,
}

/// Checkpoint the WAL (sync touched stores, truncate the log) once it grows
/// past this many bytes.
const WAL_CHECKPOINT_BYTES: u64 = 4 << 20;

impl DataEngine {
    /// Create an engine. All vBuckets start `Dead`; the cluster manager (or
    /// a test) activates the ones this node owns. Existing storage files
    /// for activated vBuckets are recovered lazily.
    pub fn new(cfg: EngineConfig) -> Result<Arc<DataEngine>> {
        let n = cfg.num_vbuckets;
        let store = BucketStore::open(cfg.data_dir.clone())?;
        Self::replay_wals(&store, &cfg.data_dir)?;
        let registry = Arc::new(Registry::new("kv"));
        let num_shards = cfg.flusher_shards.clamp(1, n.max(1) as usize);
        let mut shards = Vec::with_capacity(num_shards);
        for s in 0..num_shards {
            shards.push(FlushShard {
                vbs: (0..n).map(VbId).filter(|vb| shard_for_vb(*vb, num_shards, n) == s).collect(),
                wal: GroupCommitWal::open(&cfg.data_dir, s)?,
                dirty_count: registry.gauge(&format!("kv.flusher.queue_depth_s{s}")),
                wal_bytes: registry.gauge(&format!("kv.flusher.wal_bytes_s{s}")),
                signal: OrderedMutex::new(rank::FLUSH_SIGNAL, 0),
                signal_cv: Condvar::new(),
                touched: OrderedMutex::new(rank::TOUCHED_SET, std::collections::HashSet::new()),
                flush_lock: OrderedMutex::new(rank::FLUSH_CYCLE, ()),
            });
        }
        Ok(Arc::new(DataEngine {
            cache: ObjectCache::new_with_registry(n, cfg.cache_quota, cfg.eviction, &registry),
            store,
            hub: DcpHub::new_with_registry(n, &registry),
            clock: CasClock::new(),
            vbs: (0..n)
                .map(|_| {
                    OrderedMutex::new(
                        rank::VB_META,
                        VbMeta { state: VbState::Dead, locks: HashMap::new() },
                    )
                })
                .collect(),
            high_seqnos: (0..n).map(|_| AtomicU64::new(0)).collect(),
            persisted_seqnos: (0..n).map(|_| AtomicU64::new(0)).collect(),
            dirty: (0..n)
                .map(|_| OrderedMutex::new(rank::DIRTY_QUEUE, DirtyQueue::default()))
                .collect(),
            shards,
            persist_mutex: OrderedMutex::new(rank::PERSIST_WAITERS, ()),
            persist_cv: Condvar::new(),
            stats: EngineStats::new(&registry),
            registry,
            cfg,
        }))
    }

    /// Recovery: re-apply any group-commit WAL records newer than what the
    /// per-vBucket stores hold (the stores are written unsynced between
    /// checkpoints; the WAL is the durable copy of that window). Synced
    /// stores in hand, the WALs are deleted — the new shard layout creates
    /// fresh ones.
    fn replay_wals(store: &BucketStore, dir: &std::path::Path) -> Result<()> {
        let records = cbs_storage::replay_wals(dir)?;
        let mut touched: Vec<VbId> = Vec::new();
        for (vb, doc) in records {
            let s = store.vb(vb)?;
            if doc.meta.seqno > s.high_seqno() {
                s.persist(&doc)?;
                if !touched.contains(&vb) {
                    touched.push(vb);
                }
            }
        }
        for vb in touched {
            store.vb(vb)?.sync()?;
        }
        cbs_storage::remove_wals(dir)?;
        Ok(())
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The DCP hub consumers subscribe through.
    pub fn hub(&self) -> &DcpHub {
        &self.hub
    }

    /// This engine's causal trace sink (`None` when tracing is disabled).
    /// Cross-boundary consumers — the replication pump, the txn drain —
    /// use it to attach their spans to an in-flight trace (DESIGN.md §17).
    pub fn trace_sink(&self) -> Option<&cbs_obs::TraceSink> {
        self.cfg.trace.as_ref()
    }

    /// Open a DCP stream over one vBucket, backfilled from this engine.
    pub fn open_dcp_stream(&self, vb: VbId, since: SeqNo) -> Result<DcpStream> {
        self.hub.open_stream(vb, since, self)
    }

    /// Statistics handles.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The metrics/tracing registry for this engine (shared with its cache
    /// and DCP hub). The cluster layer aggregates these into `cbstats`
    /// snapshots.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Cache statistics.
    pub fn cache_stats(&self) -> cbs_cache::CacheStats {
        self.cache.stats()
    }

    // ------------------------------------------------------------------
    // vBucket state management (driven by the cluster manager)
    // ------------------------------------------------------------------

    /// Set a vBucket's state.
    pub fn set_vb_state(&self, vb: VbId, state: VbState) {
        let mut meta = self.vbs[vb.index()].lock();
        meta.state = state;
        if state == VbState::Dead {
            meta.locks.clear();
        }
    }

    /// Read a vBucket's state.
    pub fn vb_state(&self, vb: VbId) -> VbState {
        self.vbs[vb.index()].lock().state
    }

    /// Activate every vBucket (single-node setups and tests).
    pub fn activate_all(&self) {
        for vb in 0..self.cfg.num_vbuckets {
            self.set_vb_state(VbId(vb), VbState::Active);
        }
    }

    /// vBuckets currently in a given state.
    pub fn vbs_in_state(&self, state: VbState) -> Vec<VbId> {
        (0..self.cfg.num_vbuckets).map(VbId).filter(|&vb| self.vb_state(vb) == state).collect()
    }

    /// Recover a vBucket's persisted data after a restart: resume seqno
    /// counters from the log and *warm up* the cache with keys, metadata
    /// and values (ep-engine's warmup phase — required because under
    /// value-only eviction a cache miss is authoritative).
    pub fn recover_vb(&self, vb: VbId) -> Result<()> {
        let s = self.store.vb(vb)?;
        let high = s.high_seqno();
        self.high_seqnos[vb.index()].fetch_max(high.0, Ordering::SeqCst);
        self.persisted_seqnos[vb.index()].fetch_max(high.0, Ordering::SeqCst);
        for doc in s.changes_since(SeqNo::ZERO)? {
            if doc.deleted {
                let _ = self.cache.delete(vb, &doc.key, doc.meta, false);
            } else {
                let value = parse_stored_value(&doc)?;
                let _ = self.cache.set(vb, &doc.key, doc.meta, value, false);
            }
        }
        Ok(())
    }

    /// Drop all state for a vBucket (rebalance hand-off / `Dead`).
    pub fn purge_vb(&self, vb: VbId) -> Result<()> {
        self.set_vb_state(vb, VbState::Dead);
        self.cache.clear_vb(vb);
        let shard = self.shard_for(vb);
        let dropped = self.dirty[vb.index()].lock().take().0.len() as u64;
        self.shards[shard].dirty_count.sub(dropped);
        // Checkpoint first: the shard's WAL may still hold records for this
        // vBucket, and a replay after restart must not resurrect it.
        self.checkpoint_shard(shard)?;
        self.store.drop_vb(vb)?;
        self.high_seqnos[vb.index()].store(0, Ordering::SeqCst);
        self.persisted_seqnos[vb.index()].store(0, Ordering::SeqCst);
        Ok(())
    }

    /// The vBucket a key hashes to (CRC32, §4.1 / Figure 5).
    pub fn vb_for_key(&self, key: &str) -> VbId {
        VbId(vbucket_for_key(key.as_bytes(), self.cfg.num_vbuckets))
    }

    /// Highest assigned seqno for a vBucket.
    pub fn high_seqno(&self, vb: VbId) -> SeqNo {
        SeqNo(self.high_seqnos[vb.index()].load(Ordering::SeqCst))
    }

    /// Highest persisted seqno for a vBucket.
    pub fn persisted_seqno(&self, vb: VbId) -> SeqNo {
        SeqNo(self.persisted_seqnos[vb.index()].load(Ordering::SeqCst))
    }

    /// The high-seqno vector across all vBuckets — the consistency token
    /// `request_plus` queries snapshot at admission (§4.2: "If a N1QL query
    /// chooses request_plus scan consistency, the query engine will wait
    /// until the index is updated up to the maximum sequence number for
    /// each vBucket").
    pub fn seqno_vector(&self) -> Vec<SeqNo> {
        self.high_seqnos.iter().map(|a| SeqNo(a.load(Ordering::SeqCst))).collect()
    }

    // ------------------------------------------------------------------
    // KV API (§3.1.1)
    // ------------------------------------------------------------------

    /// Read a document by key.
    pub fn get(&self, key: &str) -> Result<GetResult> {
        // Service-entry trace: standalone gets become slow-op candidates;
        // gets issued inside a query nest under the request's span tree,
        // where the profiler attributes them to the fetch phase.
        let _trace = self.registry.trace("kv.engine.get");
        let vb = self.vb_for_key(key);
        let start = Instant::now();
        let result = self.get_in_vb(vb, key);
        self.stats.get_latency.record(start.elapsed());
        result
    }

    fn get_in_vb(&self, vb: VbId, key: &str) -> Result<GetResult> {
        if self.vb_state(vb) != VbState::Active {
            return Err(Error::VbucketNotActive(vb));
        }
        self.stats.gets.inc();
        match self.cache.get(vb, key) {
            CacheLookup::Hit { meta, value } => {
                if meta.is_expired_at(now_secs()) {
                    self.lazy_expire(vb, key, meta);
                    return Err(Error::KeyNotFound(key.to_string()));
                }
                Ok(GetResult { value, meta })
            }
            CacheLookup::Tombstone { .. } => Err(Error::KeyNotFound(key.to_string())),
            CacheLookup::ValueGone { meta } => {
                // Background fetch: the value was evicted; metadata stayed
                // resident (§4.3.3 value-only eviction).
                self.stats.bg_fetches.inc();
                if meta.is_expired_at(now_secs()) {
                    self.lazy_expire(vb, key, meta);
                    return Err(Error::KeyNotFound(key.to_string()));
                }
                let _bg = span("kv.engine.bg_fetch");
                let stored = self.store.vb(vb)?.get(key)?.ok_or_else(|| {
                    Error::Storage(format!("meta resident but no disk copy: {key}"))
                })?;
                let value = SharedValue::new(parse_stored_value(&stored)?);
                self.cache.repopulate(vb, key, value.clone());
                Ok(GetResult { value, meta })
            }
            CacheLookup::Miss => {
                // Under full eviction the document may still be on disk.
                if self.cache.policy() == cbs_cache::EvictionPolicy::Full {
                    let _bg = span("kv.engine.bg_fetch");
                    if let Some(stored) = self.store.vb(vb)?.get(key)? {
                        if !stored.deleted && !stored.meta.is_expired_at(now_secs()) {
                            self.stats.bg_fetches.inc();
                            let value = SharedValue::new(parse_stored_value(&stored)?);
                            let _ = self.cache.set(vb, key, stored.meta, value.clone(), false);
                            return Ok(GetResult { value, meta: stored.meta });
                        }
                    }
                }
                Err(Error::KeyNotFound(key.to_string()))
            }
        }
    }

    /// Write a document. `cas_check` of [`Cas::WILDCARD`] skips the
    /// optimistic-concurrency check; otherwise the write fails with
    /// [`Error::CasMismatch`] if the document changed since the client read
    /// it (§3.1.1).
    pub fn set(
        &self,
        key: &str,
        value: impl Into<SharedValue>,
        mode: MutateMode,
        cas_check: Cas,
        expiry: u32,
    ) -> Result<MutationResult> {
        // One shared allocation serves the cache, the DCP item, and every
        // subscriber — the zero-copy write path.
        let _trace = self.registry.trace("kv.engine.set");
        // Causal child span under the caller's ambient context (None when
        // the op is untraced — the common case costs one TLS read).
        let causal = self.cfg.trace.as_ref().and_then(|s| s.child("kv.engine.set"));
        let ctx = causal.as_ref().map(|g| g.ctx());
        let start = Instant::now();
        let value: SharedValue = value.into();
        let vb = self.vb_for_key(key);
        let mut meta = self.vbs[vb.index()].lock();
        if meta.state != VbState::Active {
            return Err(Error::VbucketNotActive(vb));
        }
        let via_lock_token = self.check_lock(&mut meta, key, cas_check)?;
        let existing = self.cache.peek_meta(vb, key);
        let (live, prev_rev) = match &existing {
            Some((m, deleted)) => (!*deleted && !m.is_expired_at(now_secs()), m.rev),
            None => (false, RevNo(0)),
        };
        match mode {
            MutateMode::Insert if live => return Err(Error::KeyExists(key.to_string())),
            MutateMode::Replace if !live => return Err(Error::KeyNotFound(key.to_string())),
            _ => {}
        }
        // The lock token *is* the CAS handed out by GETL; presenting it both
        // authorizes the write and satisfies the optimistic check.
        if !cas_check.is_wildcard() && !via_lock_token {
            let current = existing.map(|(m, _)| m.cas).unwrap_or(Cas::WILDCARD);
            if current != cas_check {
                return Err(Error::CasMismatch(key.to_string()));
            }
        }
        let seqno = SeqNo(self.high_seqnos[vb.index()].fetch_add(1, Ordering::SeqCst) + 1);
        let new_meta =
            DocMeta { seqno, cas: self.clock.next(), rev: prev_rev.next(), flags: 0, expiry };
        self.cache.set(vb, key, new_meta, value.clone(), true)?;
        self.enqueue_dirty_traced(vb, key, ctx);
        meta.locks.remove(key);
        let mut item = DcpItem::mutation(vb, key, new_meta, value);
        item.trace = ctx;
        self.hub.publish(&item);

        drop(meta);
        self.stats.sets.inc();
        self.stats.set_latency.record(start.elapsed());
        Ok(MutationResult { vb, seqno, cas: new_meta.cas })
    }

    /// Delete a document (CAS-checked like [`DataEngine::set`]).
    pub fn delete(&self, key: &str, cas_check: Cas) -> Result<MutationResult> {
        let causal = self.cfg.trace.as_ref().and_then(|s| s.child("kv.engine.delete"));
        let ctx = causal.as_ref().map(|g| g.ctx());
        let vb = self.vb_for_key(key);
        let mut meta = self.vbs[vb.index()].lock();
        if meta.state != VbState::Active {
            return Err(Error::VbucketNotActive(vb));
        }
        let via_lock_token = self.check_lock(&mut meta, key, cas_check)?;
        // Bind the live predecessor directly: dead/expired/absent all mean
        // "not found", and everything below needs its metadata anyway.
        let prev = match self.cache.peek_meta(vb, key) {
            Some((m, deleted)) if !deleted && !m.is_expired_at(now_secs()) => m,
            _ => return Err(Error::KeyNotFound(key.to_string())),
        };
        if !cas_check.is_wildcard() && !via_lock_token && prev.cas != cas_check {
            return Err(Error::CasMismatch(key.to_string()));
        }
        let seqno = SeqNo(self.high_seqnos[vb.index()].fetch_add(1, Ordering::SeqCst) + 1);
        let new_meta =
            DocMeta { seqno, cas: self.clock.next(), rev: prev.rev.next(), flags: 0, expiry: 0 };
        self.cache.delete(vb, key, new_meta, true)?;
        self.enqueue_dirty_traced(vb, key, ctx);
        meta.locks.remove(key);
        let mut item = DcpItem::deletion(vb, key, new_meta);
        item.trace = ctx;
        self.hub.publish(&item);
        drop(meta);
        self.stats.deletes.inc();
        Ok(MutationResult { vb, seqno, cas: new_meta.cas })
    }

    /// Read and hard-lock a document ("an application can opt to request a
    /// hard lock at the document level", §3.1.1). The returned CAS is the
    /// lock token; a subsequent write presenting it releases the lock.
    pub fn get_and_lock(&self, key: &str, duration: Option<Duration>) -> Result<GetResult> {
        let vb = self.vb_for_key(key);
        let result = self.get_in_vb(vb, key)?;
        let mut meta = self.vbs[vb.index()].lock();
        if let Some((_, deadline)) = meta.locks.get(key) {
            if *deadline > Instant::now() {
                return Err(Error::Locked(key.to_string()));
            }
        }
        let token = self.clock.next();
        let deadline = Instant::now() + duration.unwrap_or(self.cfg.lock_timeout);
        meta.locks.insert(key.to_string(), (token, deadline));
        Ok(GetResult { value: result.value, meta: DocMeta { cas: token, ..result.meta } })
    }

    /// Explicitly release a GETL lock using its token.
    pub fn unlock(&self, key: &str, token: Cas) -> Result<()> {
        let vb = self.vb_for_key(key);
        let mut meta = self.vbs[vb.index()].lock();
        match meta.locks.get(key) {
            Some((t, deadline)) if *deadline > Instant::now() => {
                if *t == token {
                    meta.locks.remove(key);
                    Ok(())
                } else {
                    Err(Error::Locked(key.to_string()))
                }
            }
            _ => Err(Error::Timeout(format!("no active lock on {key}"))),
        }
    }

    /// Update only the expiry of a document (memcached `touch`).
    pub fn touch(&self, key: &str, expiry: u32) -> Result<MutationResult> {
        let current = self.get(key)?;
        self.set(key, current.value, MutateMode::Replace, current.meta.cas, expiry)
    }

    /// Enforce GETL locks. Returns true when `cas_check` is the active
    /// lock token (the caller then skips the normal CAS comparison).
    fn check_lock(&self, meta: &mut VbMeta, key: &str, cas_check: Cas) -> Result<bool> {
        if let Some((token, deadline)) = meta.locks.get(key) {
            if *deadline <= Instant::now() {
                meta.locks.remove(key);
            } else if cas_check != *token {
                return Err(Error::Locked(key.to_string()));
            } else {
                return Ok(true);
            }
        }
        Ok(false)
    }

    fn lazy_expire(&self, vb: VbId, key: &str, prev: DocMeta) {
        // Expiry is observed lazily on access; issue the tombstone under
        // the vb lock like any write.
        let meta = self.vbs[vb.index()].lock();
        if meta.state != VbState::Active {
            return;
        }
        // Re-check: a concurrent write may have replaced the expired version.
        match self.cache.peek_meta(vb, key) {
            Some((m, false)) if m.seqno == prev.seqno => {}
            _ => return,
        }
        let seqno = SeqNo(self.high_seqnos[vb.index()].fetch_add(1, Ordering::SeqCst) + 1);
        let new_meta =
            DocMeta { seqno, cas: self.clock.next(), rev: prev.rev.next(), flags: 0, expiry: 0 };
        if self.cache.delete(vb, key, new_meta, true).is_ok() {
            self.enqueue_dirty(vb, key);
            self.hub.publish(&DcpItem {
                vb,
                key: key.to_string(),
                meta: new_meta,
                kind: DcpKind::Expiration,
                value: None,
                trace: None,
            });
            self.stats.expirations.inc();
        }
    }

    // ------------------------------------------------------------------
    // Replication / XDCR apply paths
    // ------------------------------------------------------------------

    /// Apply a replicated mutation to a `Replica`/`Pending` vBucket,
    /// preserving the active copy's metadata (seqno, CAS, rev).
    pub fn apply_replica(&self, item: &DcpItem) -> Result<()> {
        let _s = span("kv.engine.apply_replica");
        // Stitch onto the originating client op's trace: prefer the
        // delivering thread's ambient span (the pump's
        // `cluster.replication.deliver` guard) so the apply nests under
        // the hop that carried it, falling back to the context shipped on
        // the DCP item for callers that didn't open one.
        let causal = match (cbs_obs::current_context().or(item.trace), &self.cfg.trace) {
            (Some(ctx), Some(sink)) => Some(sink.child_of(ctx, "kv.engine.replica_apply")),
            _ => None,
        };
        let ctx = causal.as_ref().map(|g| g.ctx());
        let vb = item.vb;
        let meta = self.vbs[vb.index()].lock();
        if !matches!(meta.state, VbState::Replica | VbState::Pending) {
            return Err(Error::VbucketNotActive(vb));
        }
        // Idempotency / reorder guard: a rebalance mover and the steady
        // replication stream may both deliver this vBucket; per-document
        // seqnos decide which version is newest.
        if let Some((existing, _)) = self.cache.peek_meta(vb, &item.key) {
            if existing.seqno >= item.meta.seqno {
                self.high_seqnos[vb.index()].fetch_max(item.meta.seqno.0, Ordering::SeqCst);
                return Ok(());
            }
        }
        if item.is_deletion() {
            self.cache.delete(vb, &item.key, item.meta, true)?;
        } else {
            // Reference-count bump: the replica shares the active copy's
            // document allocation.
            self.cache.set(
                vb,
                &item.key,
                item.meta,
                item.value.clone().unwrap_or_else(|| SharedValue::new(Value::Null)),
                true,
            )?;
        }
        self.high_seqnos[vb.index()].fetch_max(item.meta.seqno.0, Ordering::SeqCst);
        self.enqueue_dirty_traced(vb, &item.key, ctx);
        drop(meta);
        self.stats.replica_applies.inc();
        Ok(())
    }

    /// XDCR apply with conflict resolution (§4.6.1): "the document with the
    /// most updates is considered the winner. If both clusters have the
    /// same number of updates [...] additional metadata fields are used."
    /// Returns `Ok(true)` if the incoming version won and was applied.
    pub fn set_with_meta(
        &self,
        key: &str,
        incoming: DocMeta,
        value: Option<SharedValue>,
        deleted: bool,
    ) -> Result<bool> {
        let vb = self.vb_for_key(key);
        let mut vbmeta = self.vbs[vb.index()].lock();
        if vbmeta.state != VbState::Active {
            return Err(Error::VbucketNotActive(vb));
        }
        if let Some((existing, _)) = self.cache.peek_meta(vb, key) {
            if !incoming_wins(&incoming, &existing) {
                self.stats.xdcr_rejects.inc();
                return Ok(false);
            }
        }
        // Apply: new local seqno, but preserve the origin's rev/cas so both
        // clusters converge to identical metadata.
        let seqno = SeqNo(self.high_seqnos[vb.index()].fetch_add(1, Ordering::SeqCst) + 1);
        let new_meta = DocMeta { seqno, ..incoming };
        let value = value.unwrap_or_else(|| SharedValue::new(Value::Null));
        if deleted {
            self.cache.delete(vb, key, new_meta, true)?;
        } else {
            self.cache.set(vb, key, new_meta, value.clone(), true)?;
        }
        self.enqueue_dirty(vb, key);
        vbmeta.locks.remove(key);
        let item = if deleted {
            DcpItem::deletion(vb, key, new_meta)
        } else {
            DcpItem::mutation(vb, key, new_meta, value)
        };
        self.hub.publish(&item);
        drop(vbmeta);
        self.stats.xdcr_applies.inc();
        Ok(true)
    }

    // ------------------------------------------------------------------
    // Durability (§2.3.2)
    // ------------------------------------------------------------------

    /// Block until `seqno` of `vb` is persisted, or `timeout` elapses.
    pub fn wait_persisted(&self, vb: VbId, seqno: SeqNo, timeout: Duration) -> Result<()> {
        let _s = span("kv.engine.wait_persisted");
        let deadline = Instant::now() + timeout;
        let mut guard = self.persist_mutex.lock();
        while self.persisted_seqno(vb) < seqno {
            let now = Instant::now();
            if now >= deadline {
                return Err(Error::Timeout(format!(
                    "persistence of {vb:?} {seqno:?} (persisted {:?})",
                    self.persisted_seqno(vb)
                )));
            }
            self.persist_cv.wait_until(guard.inner_mut(), deadline);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Flusher internals (driven by `crate::flusher`)
    // ------------------------------------------------------------------

    fn shard_for(&self, vb: VbId) -> usize {
        shard_for_vb(vb, self.shards.len(), self.cfg.num_vbuckets)
    }

    /// Number of flusher shards (each served by one pool thread).
    pub fn num_flusher_shards(&self) -> usize {
        self.shards.len()
    }

    fn enqueue_dirty(&self, vb: VbId, key: &str) {
        self.enqueue_dirty_traced(vb, key, None);
    }

    fn enqueue_dirty_traced(&self, vb: VbId, key: &str, ctx: Option<TraceContext>) {
        let fresh = {
            let mut queue = self.dirty[vb.index()].lock();
            let fresh = queue.enqueue(key);
            if let Some(ctx) = ctx {
                queue.attach_ctx(key, ctx);
            }
            fresh
        };
        if fresh {
            let shard = &self.shards[self.shard_for(vb)];
            shard.dirty_count.add(1);
            // Bump the generation under the lock, so a flusher thread that
            // checked the counter and is about to sleep still sees the
            // change — no missed wakeups, no 10 ms polling latency.
            let mut gen = shard.signal.lock();
            *gen += 1;
            shard.signal_cv.notify_all();
        } else {
            self.stats.dedup_writes.inc();
        }
    }

    /// Block until `shard` has dirty work, a writer signals, `stop` is
    /// set, or `timeout` elapses. Called by idle flusher-pool threads.
    /// `stop` is rechecked inside the wait loop: `shutdown` sets it and
    /// then bumps the generation under the signal lock, so a thread that
    /// passed its caller's stop check but has not yet recorded the
    /// generation cannot sleep through the shutdown wakeup.
    pub fn wait_for_dirty(&self, shard: usize, timeout: Duration, stop: &AtomicBool) {
        let sh = &self.shards[shard];
        if sh.dirty_count.get() > 0 || stop.load(Ordering::Relaxed) {
            return;
        }
        let deadline = Instant::now() + timeout;
        let mut gen = sh.signal.lock();
        let start = *gen;
        while *gen == start && sh.dirty_count.get() == 0 && !stop.load(Ordering::Relaxed) {
            if sh.signal_cv.wait_until(gen.inner_mut(), deadline).timed_out() {
                break;
            }
        }
    }

    /// Wake every shard's flusher thread (shutdown path).
    pub fn wake_flushers(&self) {
        for sh in &self.shards {
            let mut gen = sh.signal.lock();
            *gen += 1;
            sh.signal_cv.notify_all();
        }
    }

    /// Current disk-write queue length (items awaiting persistence).
    pub fn disk_queue_len(&self) -> u64 {
        self.shards.iter().map(|s| s.dirty_count.get()).sum()
    }

    /// Drain every shard once (synchronous persistence for tests and
    /// single-threaded callers). Returns the number of items persisted.
    pub fn flush_once(&self) -> Result<u64> {
        let mut persisted = 0u64;
        for shard in 0..self.shards.len() {
            persisted += self.flush_shard(shard)?;
        }
        Ok(persisted)
    }

    /// Drain one shard's vBuckets to the storage engine: every dirty queue
    /// in the shard is snapshotted, serialized, and group-committed with a
    /// **single** WAL `sync()` — the durability point for the whole cycle.
    /// The per-vBucket stores are then appended *without* syncing; the WAL
    /// covers them until [`DataEngine::checkpoint_shard`] runs.
    pub fn flush_shard(&self, shard: usize) -> Result<u64> {
        // Root trace on the flusher thread (a child span when a traced
        // caller flushes synchronously): the drain cycle's WAL append,
        // group-commit fsync, store writes and checkpoint all show up as
        // children in the slow-op log.
        let _trace = self.registry.trace("kv.flusher.cycle");
        let sh = &self.shards[shard];
        // Hold the shard's flush lock for the whole cycle so a concurrent
        // checkpoint (purge_vb, shutdown) can neither truncate the WAL
        // between our sync and our store writes nor run between a purge
        // and a late append of the purged vBucket's records.
        let _flush = sh.flush_lock.lock();
        let mut cycle: Vec<(VbId, Vec<StoredDoc>, SeqNo)> = Vec::new();
        let mut snapshots: Vec<DirtySnapshot> = Vec::new();
        // Trace contexts persisted by this cycle: each gets one
        // `kv.flusher.wal_commit` span covering the group commit.
        let mut traced: Vec<TraceContext> = Vec::new();
        for &vb in &sh.vbs {
            // Snapshot the queue and the high seqno atomically w.r.t.
            // writers (both sides take the vb mutex).
            let (keys, ctxs, high) = {
                let _meta = self.vbs[vb.index()].lock();
                let (keys, ctxs) = self.dirty[vb.index()].lock().take();
                (keys, ctxs, self.high_seqno(vb))
            };
            if keys.is_empty() {
                continue;
            }
            sh.dirty_count.sub(keys.len() as u64);
            let mut batch = Vec::with_capacity(keys.len());
            for key in &keys {
                if let Some((meta, value, deleted, dirty)) = self.cache.peek_item(vb, key) {
                    if !dirty {
                        continue;
                    }
                    let value_bytes = match (&value, deleted) {
                        (_, true) => Bytes::new(),
                        (Some(v), false) => Bytes::from(v.to_json_string()),
                        (None, false) => continue, // evicted ⇒ already clean
                    };
                    if let Some(ctx) = ctxs.get(&**key) {
                        traced.push(*ctx);
                    }
                    batch.push(StoredDoc {
                        key: key.to_string(),
                        meta,
                        deleted,
                        value: value_bytes,
                    });
                }
            }
            // Sort by seqno so the log's by-seqno order matches mutation
            // order even with de-duplicated, map-ordered drains.
            batch.sort_by_key(|d| d.meta.seqno);
            cycle.push((vb, batch, high));
            snapshots.push((vb, keys, ctxs));
        }

        let mut persisted = 0u64;
        if !cycle.is_empty() {
            let commit_start = (self.cfg.trace.is_some() && !traced.is_empty()).then(Instant::now);
            // lint:allow(guard-blocking): the flush-cycle lock exists to
            // cover exactly this WAL append + fsync + store write; drains
            // and checkpoints serialize on it by design (DESIGN.md §9).
            if let Err(e) = self.commit_cycle(sh, &cycle) {
                // The queues were already snapshotted and the counter
                // decremented; put the keys back (skipping any a newer
                // write has re-queued) so the items are retried instead of
                // stranded dirty-but-unqueued, which would hang
                // `wait_persisted` callers forever.
                let mut restored = 0u64;
                for (vb, keys, ctxs) in snapshots {
                    let mut queue = self.dirty[vb.index()].lock();
                    for key in keys {
                        if queue.enqueue_shared(key) {
                            restored += 1;
                        }
                    }
                    for (key, ctx) in ctxs {
                        queue.attach_ctx(&key, ctx);
                    }
                }
                sh.dirty_count.add(restored);
                return Err(e);
            }
            if let (Some(sink), Some(start)) = (&self.cfg.trace, commit_start) {
                let end = Instant::now();
                for ctx in &traced {
                    sink.record_span(*ctx, "kv.flusher.wal_commit", start, end);
                }
            }
            for (vb, batch, high) in &cycle {
                for doc in batch {
                    self.cache.mark_clean(*vb, &doc.key, doc.meta.seqno);
                }
                persisted += batch.len() as u64;
                self.persisted_seqnos[vb.index()].fetch_max(high.0, Ordering::SeqCst);
            }
        }
        if persisted > 0 {
            self.stats.flushed.add(persisted);
        }
        // Wake durability waiters even on empty drains (their seqno may
        // have been covered by a previous partial drain).
        {
            let _guard = self.persist_mutex.lock();
            self.persist_cv.notify_all();
        }
        if sh.wal.len_bytes() >= WAL_CHECKPOINT_BYTES {
            // lint:allow(guard-blocking): size-triggered checkpoint runs
            // under the same flush-cycle lock on purpose — the WAL must
            // not be truncated while this drain's store writes are
            // unsynced.
            self.checkpoint_shard_locked(sh)?;
        }
        sh.wal_bytes.set(sh.wal.len_bytes());
        Ok(persisted)
    }

    /// The durability half of a drain cycle: group-commit the records to
    /// the WAL (one fsync), then apply the unsynced store writes. Store
    /// writes go *before* acknowledging: `backfill` reads the dirty tail
    /// first and the store second, so an item must never be
    /// clean-but-unwritten — that ordering pair is what keeps stream open
    /// race-free against a concurrent drain.
    fn commit_cycle(&self, sh: &FlushShard, cycle: &[(VbId, Vec<StoredDoc>, SeqNo)]) -> Result<()> {
        sh.wal.append_cycle(cycle.iter().map(|(vb, batch, _)| (*vb, batch.as_slice())))?;
        let fsync_start = Instant::now();
        sh.wal.sync()?;
        self.stats.fsync_latency.record(fsync_start.elapsed());
        let mut touched = sh.touched.lock();
        for (vb, batch, _) in cycle {
            if batch.is_empty() {
                continue;
            }
            // lint:allow(guard-blocking): the touched set must record the
            // store write atomically with it (checkpoint drains the set
            // and fsyncs exactly those stores); store.vb() only does file
            // I/O on the first touch of a vBucket (lazy open).
            self.store.vb(*vb)?.persist_batch(batch)?;
            touched.insert(*vb);
        }
        Ok(())
    }

    /// Checkpoint one shard: fsync every store written since the last
    /// checkpoint, then truncate the WAL that was covering them. Excludes
    /// any in-flight drain cycle on the shard (per-shard flush lock), so
    /// the WAL is never truncated while store writes it covers are still
    /// unsynced.
    pub fn checkpoint_shard(&self, shard: usize) -> Result<()> {
        let sh = &self.shards[shard];
        let _flush = sh.flush_lock.lock();
        // lint:allow(guard-blocking): excluding in-flight drains while the
        // checkpoint fsyncs and truncates is this function's contract (see
        // doc comment above).
        self.checkpoint_shard_locked(sh)
    }

    fn checkpoint_shard_locked(&self, sh: &FlushShard) -> Result<()> {
        let _s = span("kv.flusher.checkpoint");
        let mut touched = sh.touched.lock();
        for vb in touched.drain() {
            // lint:allow(guard-blocking): the checkpoint must fsync the
            // exact set of stores the drained WAL covered; releasing the
            // touched lock mid-drain would let a concurrent cycle add a
            // store the truncated WAL no longer protects.
            self.store.vb(vb)?.sync()?;
        }
        sh.wal.reset()?;
        sh.wal_bytes.set(0);
        Ok(())
    }

    /// The expiry pager: sweep resident metadata for expired documents and
    /// reap them (publishing DCP expirations so indexes and replicas drop
    /// them too). Complements lazy on-access expiry — without the pager an
    /// expired-but-never-read document would linger in views/GSIs. Returns
    /// the number of documents expired.
    pub fn run_expiry_pager(&self) -> usize {
        let now = now_secs();
        let mut reaped = 0;
        for vb in self.vbs_in_state(VbState::Active) {
            for key in self.cache.keys(vb) {
                if let Some((meta, deleted)) = self.cache.peek_meta(vb, &key) {
                    if !deleted && meta.is_expired_at(now) {
                        self.lazy_expire(vb, &key, meta);
                        reaped += 1;
                    }
                }
            }
        }
        reaped
    }

    /// Run compaction on fragmented vBucket files (§4.3.3: "Compaction is
    /// periodically run, based on a fragmentation threshold").
    pub fn compact_if_needed(&self) -> Result<usize> {
        self.store.compact_all(self.cfg.fragmentation_threshold)
    }

    /// Per-vBucket operational snapshot (state, seqnos, queue depth) for
    /// the cbstats surface.
    pub fn vbucket_stats(&self) -> Vec<crate::types::VbucketStats> {
        (0..self.cfg.num_vbuckets)
            .map(VbId)
            .map(|vb| crate::types::VbucketStats {
                vb,
                state: self.vb_state(vb),
                high_seqno: self.high_seqno(vb),
                persisted_seqno: self.persisted_seqno(vb),
                queued_items: self.dirty[vb.index()].lock().keys.len() as u64,
            })
            .collect()
    }

    /// Aggregate storage stats across open vBuckets.
    pub fn storage_stats(&self) -> Vec<(VbId, cbs_storage::StoreStats)> {
        self.store
            .open_vbs()
            .into_iter()
            .filter_map(|vb| self.store.vb(vb).ok().map(|s| (vb, s.stats())))
            .collect()
    }

    // ------------------------------------------------------------------
    // Scans (PrimaryScan support for N1QL, initial index builds)
    // ------------------------------------------------------------------

    /// Every live document in every `Active` vBucket. This is the
    /// "PrimaryScan [...] equivalent of a full table scan" data source
    /// (§4.5.3); deliberately expensive.
    pub fn scan_active_docs(&self) -> Result<Vec<Document>> {
        let mut out = Vec::new();
        for vb in self.vbs_in_state(VbState::Active) {
            let (items, _) = self.backfill(vb, SeqNo::ZERO)?;
            for item in items {
                if item.is_deletion() {
                    continue;
                }
                if item.meta.is_expired_at(now_secs()) {
                    continue;
                }
                out.push(Document {
                    id: item.key,
                    value: item.value.map(SharedValue::into_value).unwrap_or(Value::Null),
                    meta: item.meta,
                });
            }
        }
        Ok(out)
    }
}

/// Merge-based backfill: persisted changes plus the dirty in-memory tail.
impl BackfillSource for DataEngine {
    fn backfill(&self, vb: VbId, since: SeqNo) -> Result<(Vec<DcpItem>, SeqNo)> {
        // Snapshot order matters: dirty tail FIRST, store SECOND. The
        // flusher writes the store before clearing dirty bits, so an item
        // that leaves the dirty set mid-backfill is guaranteed to show up
        // in the store read. The reverse order can lose a just-flushed
        // item from both snapshots (it then sits below the stream's
        // `start_after` and is never delivered).
        let dirty = self.cache.dirty_snapshot(vb);
        let stored = self.store.vb(vb)?.changes_since(since)?;
        let mut high = since;
        // Latest version per key wins.
        let mut latest: HashMap<String, DcpItem> = HashMap::new();
        for doc in stored {
            high = high.max(doc.meta.seqno);
            let item = stored_to_item(vb, &doc)?;
            merge_latest(&mut latest, item);
        }
        for (key, meta, deleted, value) in dirty {
            high = high.max(meta.seqno);
            if meta.seqno <= since {
                continue;
            }
            let item = if deleted {
                DcpItem::deletion(vb, key, meta)
            } else {
                let value = value.unwrap_or_else(|| SharedValue::new(Value::Null));
                DcpItem::mutation(vb, key, meta, value)
            };
            merge_latest(&mut latest, item);
        }
        let mut items: Vec<DcpItem> = latest.into_values().collect();
        items.sort_by_key(|i| i.meta.seqno);
        Ok((items, high))
    }
}

/// Static shard assignment: contiguous slices of the vBucket space, so each
/// flusher shard drains a disjoint set and no cross-shard coordination is
/// needed.
fn shard_for_vb(vb: VbId, num_shards: usize, num_vbuckets: u16) -> usize {
    if num_vbuckets == 0 {
        return 0;
    }
    vb.index() * num_shards / num_vbuckets as usize
}

fn merge_latest(map: &mut HashMap<String, DcpItem>, item: DcpItem) {
    match map.get(&item.key) {
        Some(existing) if existing.meta.seqno >= item.meta.seqno => {}
        _ => {
            map.insert(item.key.clone(), item);
        }
    }
}

fn stored_to_item(vb: VbId, doc: &StoredDoc) -> Result<DcpItem> {
    if doc.deleted {
        Ok(DcpItem::deletion(vb, doc.key.clone(), doc.meta))
    } else {
        Ok(DcpItem::mutation(vb, doc.key.clone(), doc.meta, parse_stored_value(doc)?))
    }
}

fn parse_stored_value(doc: &StoredDoc) -> Result<Value> {
    let text = std::str::from_utf8(&doc.value)
        .map_err(|_| Error::Storage(format!("non-utf8 value for {}", doc.key)))?;
    cbs_json::parse(text).map_err(|e| Error::Json(format!("{}: {e}", doc.key)))
}

/// XDCR conflict resolution (§4.6.1): higher rev (update count) wins; ties
/// broken by CAS, then expiry, then flags — the identical deterministic
/// rule on both clusters.
fn incoming_wins(incoming: &DocMeta, existing: &DocMeta) -> bool {
    (incoming.rev, incoming.cas, incoming.expiry, incoming.flags)
        > (existing.rev, existing.cas, existing.expiry, existing.flags)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Arc<DataEngine> {
        let e = DataEngine::new(EngineConfig::for_test(16)).unwrap();
        e.activate_all();
        e
    }

    fn doc(v: i64) -> Value {
        Value::object([("v", Value::int(v))])
    }

    #[test]
    fn upsert_get_roundtrip() {
        let e = engine();
        let m = e.set("user::1", doc(1), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
        assert_eq!(m.seqno, SeqNo(1));
        let g = e.get("user::1").unwrap();
        assert_eq!(g.value, doc(1));
        assert_eq!(g.meta.cas, m.cas);
        assert_eq!(g.meta.rev, RevNo(1));
    }

    #[test]
    fn insert_and_replace_modes() {
        let e = engine();
        e.set("k", doc(1), MutateMode::Insert, Cas::WILDCARD, 0).unwrap();
        assert!(matches!(
            e.set("k", doc(2), MutateMode::Insert, Cas::WILDCARD, 0),
            Err(Error::KeyExists(_))
        ));
        assert!(matches!(
            e.set("absent", doc(1), MutateMode::Replace, Cas::WILDCARD, 0),
            Err(Error::KeyNotFound(_))
        ));
        e.set("k", doc(2), MutateMode::Replace, Cas::WILDCARD, 0).unwrap();
        assert_eq!(e.get("k").unwrap().value, doc(2));
        // Delete then insert succeeds (tombstone is not "live").
        e.delete("k", Cas::WILDCARD).unwrap();
        e.set("k", doc(3), MutateMode::Insert, Cas::WILDCARD, 0).unwrap();
    }

    #[test]
    fn cas_optimistic_locking_flow() {
        // The exact client flow from §3.1.1.
        let e = engine();
        e.set("k", doc(1), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
        let read = e.get("k").unwrap();
        // Another client sneaks in a write.
        e.set("k", doc(99), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
        // Original client's CAS-checked update fails.
        let err = e.set("k", doc(2), MutateMode::Upsert, read.meta.cas, 0).unwrap_err();
        assert!(matches!(err, Error::CasMismatch(_)));
        // Client re-reads and retries: succeeds.
        let read2 = e.get("k").unwrap();
        e.set("k", doc(2), MutateMode::Upsert, read2.meta.cas, 0).unwrap();
        assert_eq!(e.get("k").unwrap().value, doc(2));
    }

    #[test]
    fn cas_checked_delete() {
        let e = engine();
        let m = e.set("k", doc(1), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
        assert!(matches!(e.delete("k", Cas(12345)), Err(Error::CasMismatch(_))));
        e.delete("k", m.cas).unwrap();
        assert!(matches!(e.get("k"), Err(Error::KeyNotFound(_))));
        assert!(matches!(e.delete("k", Cas::WILDCARD), Err(Error::KeyNotFound(_))));
    }

    #[test]
    fn getl_hard_lock() {
        let e = engine();
        e.set("k", doc(1), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
        let locked = e.get_and_lock("k", Some(Duration::from_secs(5))).unwrap();
        // Second lock attempt fails.
        assert!(matches!(e.get_and_lock("k", None), Err(Error::Locked(_))));
        // Unchecked write fails while locked.
        assert!(matches!(
            e.set("k", doc(2), MutateMode::Upsert, Cas::WILDCARD, 0),
            Err(Error::Locked(_))
        ));
        // Write with the lock token succeeds and releases the lock.
        e.set("k", doc(2), MutateMode::Upsert, locked.meta.cas, 0).unwrap();
        e.set("k", doc(3), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
    }

    #[test]
    fn getl_lock_expires() {
        let e = engine();
        e.set("k", doc(1), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
        e.get_and_lock("k", Some(Duration::from_millis(30))).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        // Lock timed out: plain write allowed again (§3.1.1 deadlock avoidance).
        e.set("k", doc(2), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
    }

    #[test]
    fn unlock_with_token() {
        let e = engine();
        e.set("k", doc(1), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
        let locked = e.get_and_lock("k", Some(Duration::from_secs(5))).unwrap();
        assert!(matches!(e.unlock("k", Cas(1)), Err(Error::Locked(_))));
        e.unlock("k", locked.meta.cas).unwrap();
        e.set("k", doc(2), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
        assert!(e.unlock("k", locked.meta.cas).is_err(), "lock already gone");
    }

    #[test]
    fn ttl_expiry_is_lazy() {
        let e = engine();
        // Expiry in the past: immediately expired.
        e.set("k", doc(1), MutateMode::Upsert, Cas::WILDCARD, now_secs() - 1).unwrap();
        assert!(matches!(e.get("k"), Err(Error::KeyNotFound(_))));
        assert_eq!(e.stats().expirations.get(), 1);
        // Future expiry: alive.
        e.set("k2", doc(2), MutateMode::Upsert, Cas::WILDCARD, now_secs() + 1000).unwrap();
        assert!(e.get("k2").is_ok());
        // touch() updates expiry.
        e.touch("k2", now_secs() - 1).unwrap();
        assert!(matches!(e.get("k2"), Err(Error::KeyNotFound(_))));
    }

    #[test]
    fn writes_to_non_active_vb_rejected() {
        let e = DataEngine::new(EngineConfig::for_test(16)).unwrap();
        // All vbs Dead by default.
        assert!(matches!(
            e.set("k", doc(1), MutateMode::Upsert, Cas::WILDCARD, 0),
            Err(Error::VbucketNotActive(_))
        ));
        assert!(matches!(e.get("k"), Err(Error::VbucketNotActive(_))));
        let vb = e.vb_for_key("k");
        e.set_vb_state(vb, VbState::Replica);
        assert!(matches!(
            e.set("k", doc(1), MutateMode::Upsert, Cas::WILDCARD, 0),
            Err(Error::VbucketNotActive(_))
        ));
    }

    #[test]
    fn flush_persists_and_marks_clean() {
        let e = engine();
        let m1 = e.set("a", doc(1), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
        let m2 = e.set("b", doc(2), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
        assert_eq!(e.disk_queue_len(), 2);
        let n = e.flush_once().unwrap();
        assert_eq!(n, 2);
        assert_eq!(e.disk_queue_len(), 0);
        assert!(e.persisted_seqno(m1.vb) >= m1.seqno);
        assert!(e.persisted_seqno(m2.vb) >= m2.seqno);
        // wait_persisted returns immediately now.
        e.wait_persisted(m1.vb, m1.seqno, Duration::from_millis(10)).unwrap();
    }

    #[test]
    fn repeated_updates_dedup_in_disk_queue() {
        let e = engine();
        for i in 0..10 {
            e.set("hot", doc(i), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
        }
        assert_eq!(e.disk_queue_len(), 1, "same key queued once");
        assert_eq!(e.stats().dedup_writes.get(), 9);
        assert_eq!(e.flush_once().unwrap(), 1, "only the latest version hits disk");
        let vb = e.vb_for_key("hot");
        let stored = e.storage_stats().into_iter().find(|(v, _)| *v == vb).unwrap().1;
        assert_eq!(stored.live_docs, 1);
    }

    #[test]
    fn wait_persisted_times_out_without_flusher() {
        let e = engine();
        let m = e.set("a", doc(1), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
        let err = e.wait_persisted(m.vb, m.seqno, Duration::from_millis(40)).unwrap_err();
        assert!(matches!(err, Error::Timeout(_)));
    }

    #[test]
    fn dcp_stream_sees_memory_first_writes() {
        let e = engine();
        e.set("a", doc(1), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
        let vb = e.vb_for_key("a");
        // No flush has run: the write exists only in memory.
        let mut stream = e.open_dcp_stream(vb, SeqNo::ZERO).unwrap();
        let items = stream.drain_available();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].key, "a");
        // Live tail after open.
        if e.vb_for_key("c") == vb {
            e.set("c", doc(3), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
            assert_eq!(stream.drain_available().len(), 1);
        }
    }

    #[test]
    fn dcp_backfill_merges_disk_and_memory() {
        let e = engine();
        e.set("a", doc(1), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
        e.flush_once().unwrap();
        e.set("a", doc(2), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap(); // dirty overwrite
        let vb = e.vb_for_key("a");
        let (items, high) = e.backfill(vb, SeqNo::ZERO).unwrap();
        assert_eq!(items.len(), 1, "one latest version of 'a'");
        assert_eq!(items[0].value.as_ref().unwrap(), &doc(2));
        assert_eq!(high, SeqNo(2));
    }

    #[test]
    fn replica_apply_preserves_meta() {
        let e = DataEngine::new(EngineConfig::for_test(16)).unwrap();
        let vb = VbId(3);
        e.set_vb_state(vb, VbState::Replica);
        let meta = DocMeta { seqno: SeqNo(42), cas: Cas(777), rev: RevNo(5), flags: 1, expiry: 0 };
        e.apply_replica(&DcpItem::mutation(vb, "k", meta, doc(1))).unwrap();
        assert_eq!(e.high_seqno(vb), SeqNo(42));
        // Promote and read: metadata identical to the active copy's.
        e.set_vb_state(vb, VbState::Active);
        let g = e.get_in_vb(vb, "k").unwrap();
        assert_eq!(g.meta, meta);
        // Replica apply to an Active vb is rejected.
        assert!(e.apply_replica(&DcpItem::mutation(vb, "k2", meta, doc(2))).is_err());
    }

    #[test]
    fn xdcr_conflict_resolution() {
        let e = engine();
        e.set("k", doc(1), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap(); // rev 1
        let local = e.get("k").unwrap().meta;

        // Incoming with higher rev wins.
        let winner = DocMeta { rev: RevNo(5), cas: Cas(1), ..local };
        assert!(e.set_with_meta("k", winner, Some(doc(100).into()), false).unwrap());
        assert_eq!(e.get("k").unwrap().value, doc(100));
        assert_eq!(e.get("k").unwrap().meta.rev, RevNo(5));

        // Incoming with lower rev loses.
        let loser = DocMeta { rev: RevNo(2), cas: Cas(u64::MAX), ..local };
        assert!(!e.set_with_meta("k", loser, Some(doc(0).into()), false).unwrap());
        assert_eq!(e.get("k").unwrap().value, doc(100));

        // Equal rev: higher CAS wins.
        let current = e.get("k").unwrap().meta;
        let tie_win = DocMeta { rev: current.rev, cas: Cas(current.cas.0 + 1), ..current };
        assert!(e.set_with_meta("k", tie_win, Some(doc(200).into()), false).unwrap());
        assert_eq!(e.get("k").unwrap().value, doc(200));

        // XDCR deletion.
        let newer = e.get("k").unwrap().meta;
        let del = DocMeta { rev: newer.rev.next(), ..newer };
        assert!(e.set_with_meta("k", del, None, true).unwrap());
        assert!(matches!(e.get("k"), Err(Error::KeyNotFound(_))));
    }

    #[test]
    fn purge_vb_clears_everything() {
        let e = engine();
        e.set("k", doc(1), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
        let vb = e.vb_for_key("k");
        e.flush_once().unwrap();
        e.purge_vb(vb).unwrap();
        assert_eq!(e.vb_state(vb), VbState::Dead);
        assert_eq!(e.high_seqno(vb), SeqNo::ZERO);
        e.set_vb_state(vb, VbState::Active);
        assert!(matches!(e.get("k"), Err(Error::KeyNotFound(_))));
    }

    #[test]
    fn scan_active_docs_sees_memory_and_disk() {
        let e = engine();
        e.set("a", doc(1), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
        e.flush_once().unwrap();
        e.set("b", doc(2), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
        e.set("c", doc(3), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
        e.delete("c", Cas::WILDCARD).unwrap();
        let mut docs = e.scan_active_docs().unwrap();
        docs.sort_by(|a, b| a.id.cmp(&b.id));
        let ids: Vec<&str> = docs.iter().map(|d| d.id.as_str()).collect();
        assert_eq!(ids, ["a", "b"]);
    }

    #[test]
    fn seqno_vector_tracks_highs() {
        let e = engine();
        let m = e.set("k", doc(1), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
        let vec = e.seqno_vector();
        assert_eq!(vec[m.vb.index()], m.seqno);
        assert_eq!(vec.len(), 16);
    }

    #[test]
    fn concurrent_cas_writers_single_winner_per_round() {
        use std::sync::atomic::AtomicU32;
        let e = engine();
        e.set("ctr", doc(0), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
        let successes = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let e = Arc::clone(&e);
            let successes = Arc::clone(&successes);
            handles.push(std::thread::spawn(move || {
                // Each thread does 50 CAS-increment rounds with retries.
                for _ in 0..50 {
                    loop {
                        let cur = e.get("ctr").unwrap();
                        let n = cur.value.get_field("v").unwrap().as_i64().unwrap();
                        match e.set(
                            "ctr",
                            Value::object([("v", Value::int(n + 1))]),
                            MutateMode::Upsert,
                            cur.meta.cas,
                            0,
                        ) {
                            Ok(_) => {
                                successes.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(Error::CasMismatch(_)) => continue,
                            Err(e) => panic!("unexpected {e}"),
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let final_v = e.get("ctr").unwrap().value.get_field("v").unwrap().as_i64().unwrap();
        assert_eq!(final_v, 400, "CAS must make increments atomic");
        assert_eq!(successes.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn restart_recovery_via_recover_vb() {
        let cfg = EngineConfig::for_test(16);
        let dir = cfg.data_dir.clone();
        let vb;
        {
            let e = DataEngine::new(cfg).unwrap();
            e.activate_all();
            e.set("k", doc(7), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
            vb = e.vb_for_key("k");
            e.flush_once().unwrap();
        }
        // "Restart": new engine over the same directory.
        let mut cfg2 = EngineConfig::for_test(16);
        cfg2.data_dir = dir;
        let e = DataEngine::new(cfg2).unwrap();
        e.recover_vb(vb).unwrap();
        e.set_vb_state(vb, VbState::Active);
        assert_eq!(e.get_in_vb(vb, "k").unwrap().value, doc(7));
        // Seqno counter resumed past the recovered high.
        let m = e.set("k", doc(8), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
        assert_eq!(m.seqno, SeqNo(2));
    }
}
