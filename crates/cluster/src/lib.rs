//! The clustered architecture (paper §4.1, §4.3, §4.4).
//!
//! "Couchbase Server has a shared-nothing architecture. [...] A cluster of
//! Couchbase Servers consists of one or more nodes, with each containing a
//! configurable set of services."
//!
//! The cluster is simulated **in-process**: each [`Node`] owns real service
//! state (a `cbs-kv` data engine + `cbs-views` view engine per bucket when
//! it runs the data service, a `cbs-index` manager when it runs the index
//! service) and the "network" is direct method calls guarded by per-node
//! liveness flags — killing a node makes every call to it fail, which is
//! all the cluster manager can observe over a real network anyway.
//!
//! Reproduced mechanisms:
//!
//! - **cluster map** (§4.1): vBucket → active/replica node placement, with
//!   an epoch so smart clients detect staleness ([`map`]);
//! - **multi-dimensional scaling** (§4.4): per-node service sets — data,
//!   index, query — so workloads scale independently ([`ServiceSet`]);
//! - **orchestrator election, heartbeats, failover** (§4.3.1): the
//!   orchestrator promotes replica vBuckets of a failed node to active and
//!   bumps the map epoch ([`Cluster::failover`]);
//! - **rebalance** (§4.3.1): per-vBucket movers copy data via DCP
//!   (backfill + live tail), then perform "an atomic and consistent
//!   switchover" ([`Cluster::rebalance`]);
//! - **intra-cluster replication** (§4.1.1): memory-to-memory DCP pumps
//!   from active to replica copies ([`replication`]);
//! - **smart clients** (§4.1): CRC32 key hashing against a cached map copy
//!   with not-my-vbucket refresh/retry ([`client::SmartClient`]);
//! - **cluster-wide query/view access**: an `cbs-n1ql` [`Datastore`]
//!   implementation that routes fetches through the map, fans primary
//!   scans out to all data nodes, and scatter/gathers view queries
//!   ([`query::ClusterDatastore`], [`Cluster::view_query`]).
//!
//! [`Datastore`]: cbs_n1ql::Datastore

pub mod client;
pub mod cluster;
pub mod config;
pub mod fault;
pub mod lag;
pub mod map;
pub mod node;
pub mod query;
pub mod replication;
pub mod stats;
pub mod txnlog;

pub use client::{Durability, SmartClient};
pub use cluster::{AutoFailover, Cluster};
pub use config::{ClusterConfig, ServiceSet};
pub use fault::{FaultAction, FaultInjector};
pub use lag::{ReplicationLagRow, ReplicationLagTable, StalenessRow, LAG_WINDOW_CYCLES};
pub use map::ClusterMap;
pub use node::Node;
pub use query::ClusterDatastore;
pub use stats::{BucketStats, ClusterStats, NodeStats};
pub use txnlog::{TxnLog, TxnLogRow, TxnState};
