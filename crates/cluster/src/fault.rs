//! Fault-injection seam for the simulated transport.
//!
//! The cluster is in-process, so there is no real network to cut; instead
//! the two message paths — replication deliveries inside the DCP pump and
//! client dispatches inside [`SmartClient`] — consult an optional
//! [`FaultInjector`] installed in [`ClusterConfig`]. The production default
//! is `None`, which compiles down to a branch on an `Option`; the chaos
//! harness (`cbs-chaos`) installs a seeded plan that makes every decision a
//! pure function of the seed and the delivery site, so failures replay.
//!
//! [`SmartClient`]: crate::client::SmartClient
//! [`ClusterConfig`]: crate::config::ClusterConfig

use std::time::Duration;

use cbs_common::{NodeId, SeqNo, VbId};

/// What the transport should do with one replication-stream delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver normally.
    Deliver,
    /// Drop the message. The pump treats a drop as a connection reset: the
    /// affected vBucket stream is torn down and rebuilt from the replicas'
    /// high seqnos, so the item is redelivered later (messages are lost,
    /// the replication protocol recovers — same contract as TCP reconnect
    /// in the real system).
    Drop,
    /// Deliver after sleeping this long (network delay / slow receiver).
    Delay(Duration),
    /// Deliver the message twice (at-least-once duplication; exercises
    /// `apply_replica` idempotency).
    Duplicate,
}

/// Decision hooks consulted by the in-memory transport. Implementations
/// must be deterministic given their construction parameters — decisions
/// are made per *site* (vBucket, seqno, destination, attempt), never from
/// wall-clock or ambient randomness, so a failing run replays from its
/// seed.
pub trait FaultInjector: Send + Sync + std::fmt::Debug {
    /// Replication delivery of `(vb, seqno)` to replica `dst`. `attempt`
    /// counts redeliveries of the same site, so injectors can drop the
    /// first attempt and let the retry through.
    fn repl_delivery(&self, vb: VbId, seqno: SeqNo, dst: NodeId, attempt: u32) -> FaultAction {
        let _ = (vb, seqno, dst, attempt);
        FaultAction::Deliver
    }

    /// Client dispatch of an operation for `vb` to `node`: an optional
    /// stall before the call (slow-node simulation). The client still
    /// performs the operation after the stall.
    fn client_dispatch(&self, node: NodeId, vb: VbId) -> Option<Duration> {
        let _ = (node, vb);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Nop;
    impl FaultInjector for Nop {}

    #[test]
    fn default_hooks_are_transparent() {
        let inj = Nop;
        assert_eq!(inj.repl_delivery(VbId(0), SeqNo(1), NodeId(0), 0), FaultAction::Deliver);
        assert_eq!(inj.client_dispatch(NodeId(0), VbId(0)), None);
    }
}
