//! The cluster-wide [`cbs_n1ql::Datastore`] implementation — how the Query
//! Service reaches the Data and Index Services (§4.5.1, Figure 10).
//!
//! "The receiving node will analyze the query [...] During execution,
//! depending on the query and the available indexes, the query node works
//! with the index and data nodes to retrieve keys and data."

use std::sync::Arc;
use std::time::Duration;

use crate::client::SmartClient;
use crate::cluster::Cluster;
use cbs_common::sync::{rank, OrderedRwLock};
use cbs_common::{Error, Result, SeqNo};
use cbs_index::{IndexDef, IndexEntry, ScanConsistency, ScanRange};
use cbs_json::Value;
use cbs_n1ql::{Datastore, KeyspaceStats, QueryOptions, QueryResult, StatsCache};

/// Cluster-backed datastore for the query engine. One instance per bucket
/// per query node.
pub struct ClusterDatastore {
    cluster: Arc<Cluster>,
    /// One smart client per keyspace (bucket) the service has touched.
    clients: OrderedRwLock<Vec<Arc<SmartClient>>>,
    /// Lazily collected keyspace/index statistics for the cost-based
    /// planner, memoized per plan-cache epoch.
    stats_cache: StatsCache,
    requests: Arc<cbs_obs::Counter>,
    errors: Arc<cbs_obs::Counter>,
    latency: Arc<cbs_obs::Histogram>,
    /// Per-phase latency breakdowns (only non-zero phases are recorded, so
    /// e.g. `n1ql.phase.index_scan` counts only queries that scanned GSI).
    phase_plan: Arc<cbs_obs::Histogram>,
    phase_index_scan: Arc<cbs_obs::Histogram>,
    phase_primary_scan: Arc<cbs_obs::Histogram>,
    phase_fetch: Arc<cbs_obs::Histogram>,
    phase_run: Arc<cbs_obs::Histogram>,
    /// Causal trace sink on the `query` lane (DESIGN.md §17).
    query_trace: cbs_obs::TraceSink,
}

impl ClusterDatastore {
    /// Create the datastore facade over a cluster.
    pub fn new(cluster: Arc<Cluster>) -> ClusterDatastore {
        let registry = Arc::clone(cluster.query_registry());
        let query_trace = cbs_obs::TraceSink::new(Arc::clone(cluster.trace_store()), "query");
        ClusterDatastore {
            cluster,
            query_trace,
            clients: OrderedRwLock::new(rank::QUERY_CLIENTS, Vec::new()),
            stats_cache: StatsCache::new(),
            requests: registry.counter_with_help("n1ql.query.requests", "N1QL statements received"),
            errors: registry.counter_with_help("n1ql.query.errors", "N1QL statements that failed"),
            latency: registry
                .histogram_with_help("n1ql.query.latency", "End-to-end N1QL request service time"),
            phase_plan: registry
                .histogram_with_help("n1ql.phase.plan", "Per-request parse + plan time"),
            phase_index_scan: registry.histogram_with_help(
                "n1ql.phase.index_scan",
                "Per-request GSI scan time (index service included)",
            ),
            phase_primary_scan: registry.histogram_with_help(
                "n1ql.phase.primary_scan",
                "Per-request primary (full keyspace) scan time",
            ),
            phase_fetch: registry.histogram_with_help(
                "n1ql.phase.fetch",
                "Per-request KV fetch time (data service included)",
            ),
            phase_run: registry.histogram_with_help(
                "n1ql.phase.run",
                "Per-request executor time outside scans and fetches",
            ),
        }
    }

    fn client(&self, bucket: &str) -> Result<Arc<SmartClient>> {
        if let Some(c) = self.clients.read().iter().find(|c| c.bucket() == bucket) {
            return Ok(Arc::clone(c));
        }
        let c = Arc::new(SmartClient::connect(Arc::clone(&self.cluster), bucket)?);
        self.clients.write().push(Arc::clone(&c));
        Ok(c)
    }

    /// Run a N1QL statement through this cluster (the Query Service entry
    /// point: any query node can receive a statement).
    pub fn query(&self, statement: &str, opts: &QueryOptions) -> Result<QueryResult> {
        // MDS gate: a query must land on a node running the query service.
        if !self.cluster.nodes().iter().any(|n| n.is_alive() && n.services().query) {
            return Err(Error::Cluster("no query service in the cluster".to_string()));
        }
        self.requests.inc();
        let _timer = self.latency.timer();
        let _trace = self.cluster.query_registry().trace("n1ql.query.execute");
        // Causal root on the query lane: KV fetches/mutations issued by the
        // executor (through the smart clients) join as child spans.
        let mut causal = self.query_trace.mint("n1ql.query.request");
        let result = cbs_n1ql::query(self, statement, opts);
        match &result {
            Ok(r) => self.record_phases(&r.phases),
            Err(_) => {
                self.errors.inc();
                if let Some(g) = causal.as_mut() {
                    g.fail();
                }
            }
        }
        result
    }

    /// Feed a finished request's phase rollups into the per-phase
    /// histograms (zero phases skipped — a query that never scanned an
    /// index should not drag `n1ql.phase.index_scan` toward zero).
    fn record_phases(&self, phases: &cbs_n1ql::PhaseTimes) {
        for (histogram, d) in [
            (&self.phase_plan, phases.plan),
            (&self.phase_index_scan, phases.index_scan),
            (&self.phase_primary_scan, phases.primary_scan),
            (&self.phase_fetch, phases.fetch),
            (&self.phase_run, phases.run),
        ] {
            if !d.is_zero() {
                histogram.record(d);
            }
        }
    }
}

impl Datastore for ClusterDatastore {
    fn keyspace_exists(&self, keyspace: &str) -> bool {
        self.cluster.map(keyspace).is_ok()
    }

    fn fetch(&self, keyspace: &str, key: &str) -> Result<Option<Value>> {
        match self.client(keyspace)?.get(key) {
            // The Datastore trait wants an owned Value; `into_value` clones
            // only if the document is still shared.
            Ok(r) => Ok(Some(r.value.into_value())),
            Err(Error::KeyNotFound(_)) => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn primary_scan(&self, keyspace: &str) -> Result<Vec<(String, Value)>> {
        // Fan out to every data node's active vBuckets.
        let mut out = Vec::new();
        for node in self.cluster.nodes() {
            if !node.is_alive() || !node.services().data {
                continue;
            }
            let engine = node.engine(keyspace)?;
            for doc in engine.scan_active_docs()? {
                out.push((doc.id, doc.value));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    fn insert(&self, keyspace: &str, key: &str, value: Value) -> Result<()> {
        self.client(keyspace)?.insert(key, value).map(|_| ())
    }

    fn upsert(&self, keyspace: &str, key: &str, value: Value) -> Result<()> {
        self.client(keyspace)?.upsert(key, value).map(|_| ())
    }

    fn replace(&self, keyspace: &str, key: &str, value: Value) -> Result<()> {
        self.client(keyspace)?.replace(key, value, cbs_common::Cas::WILDCARD).map(|_| ())
    }

    fn delete(&self, keyspace: &str, key: &str) -> Result<()> {
        self.client(keyspace)?.remove(key, cbs_common::Cas::WILDCARD).map(|_| ())
    }

    fn seqno_vector(&self, keyspace: &str) -> Vec<SeqNo> {
        self.cluster.seqno_vector(keyspace).unwrap_or_default()
    }

    fn list_indexes(&self, keyspace: &str) -> Vec<IndexDef> {
        self.cluster.index_manager().map(|m| m.list_online(keyspace)).unwrap_or_default()
    }

    fn index_scan(
        &self,
        keyspace: &str,
        index: &str,
        range: &ScanRange,
        consistency: &ScanConsistency,
        timeout: Duration,
        limit: usize,
    ) -> Result<Vec<IndexEntry>> {
        self.cluster.index_manager()?.scan(keyspace, index, range, consistency, timeout, limit)
    }

    fn create_index(&self, def: IndexDef) -> Result<()> {
        let mgr = self.cluster.index_manager()?;
        if def.deferred {
            return mgr.create_index(def);
        }
        // Initial build streams from every data node's active vBuckets.
        let keyspace = def.keyspace.clone();
        let name = def.name.clone();
        mgr.create_index(def)?;
        self.build_index(&keyspace, &name)
    }

    fn drop_index(&self, keyspace: &str, name: &str) -> Result<()> {
        self.cluster.index_manager()?.drop_index(keyspace, name)
    }

    fn build_index(&self, keyspace: &str, name: &str) -> Result<()> {
        let mgr = self.cluster.index_manager()?;
        // Build against a cluster-wide backfill source that reads each
        // vBucket from its active node.
        let source =
            ClusterBackfill { cluster: Arc::clone(&self.cluster), bucket: keyspace.to_string() };
        mgr.build(keyspace, name, &source)
    }

    fn request_log(&self) -> Option<&cbs_n1ql::RequestLog> {
        Some(self.cluster.request_log())
    }

    fn plan_cache(&self) -> Option<&cbs_n1ql::PlanCache> {
        Some(self.cluster.plan_cache())
    }

    /// Optimizer statistics, derived from the index service: each online
    /// index reports live entries / distinct keys / leading-key bounds,
    /// and the keyspace document count is taken from the widest index's
    /// per-document counter (a primary index sees every document). No
    /// online index means no statistics — the planner falls back to its
    /// rule-based ordering.
    fn keyspace_stats(&self, keyspace: &str) -> Option<Arc<KeyspaceStats>> {
        let epoch = self.cluster.plan_cache().epoch(keyspace);
        self.stats_cache.get_or_refresh(keyspace, epoch, || {
            let mgr = self.cluster.index_manager().ok()?;
            let mut doc_count = 0u64;
            let mut indexes = Vec::new();
            for def in mgr.list_online(keyspace) {
                let Ok(stats) = mgr.index_stats(keyspace, &def.name) else { continue };
                doc_count = doc_count.max(stats.docs);
                let Ok(card) = mgr.index_cardinality(keyspace, &def.name) else { continue };
                indexes.push(cbs_n1ql::IndexStat {
                    name: def.name.clone(),
                    entries: card.entries,
                    distinct_keys: card.distinct_keys,
                    min_leading: card.min_leading,
                    max_leading: card.max_leading,
                });
            }
            if doc_count == 0 {
                return None;
            }
            Some(KeyspaceStats { doc_count, indexes })
        })
    }

    /// The `system:` catalog keyspaces, backed live by cluster state — the
    /// Query Catalog of §4.3.5 exposed through N1QL itself.
    fn system_scan(&self, keyspace: &str) -> Result<Vec<(String, Value)>> {
        match keyspace {
            "system:completed_requests" => Ok(self.cluster.request_log().completed_rows()),
            "system:active_requests" => Ok(self.cluster.request_log().active_rows()),
            "system:prepareds" => Ok(self.cluster.plan_cache().prepared_rows()),
            "system:transactions" => Ok(self.cluster.txn_log().catalog_rows()),
            "system:indexes" => {
                // Every definition on every index-service node, deduped by
                // keyspace/name (managers replicate definitions).
                let mut rows = std::collections::BTreeMap::new();
                for mgr in self.cluster.index_managers() {
                    for bucket in self.cluster.buckets() {
                        for def in mgr.list(&bucket) {
                            let state = match mgr.state(&bucket, &def.name) {
                                Ok(cbs_index::IndexState::Online) => "online",
                                Ok(cbs_index::IndexState::Building) => "building",
                                _ => "deferred",
                            };
                            rows.entry(format!("{bucket}/{}", def.name)).or_insert_with(|| {
                                Value::object([
                                    ("name", Value::from(def.name.as_str())),
                                    ("keyspace", Value::from(bucket.as_str())),
                                    ("isPrimary", Value::Bool(def.primary)),
                                    ("state", Value::from(state)),
                                    ("using", Value::from("gsi")),
                                ])
                            });
                        }
                    }
                }
                Ok(rows.into_iter().collect())
            }
            "system:keyspaces" => {
                let mut rows = Vec::new();
                for bucket in self.cluster.buckets() {
                    let mut count = 0usize;
                    for node in self.cluster.nodes() {
                        if !node.is_alive() || !node.services().data {
                            continue;
                        }
                        if let Ok(engine) = node.engine(&bucket) {
                            count += engine.scan_active_docs()?.len();
                        }
                    }
                    rows.push((
                        bucket.clone(),
                        Value::object([
                            ("name", Value::from(bucket.as_str())),
                            ("count", Value::from(count)),
                        ]),
                    ));
                }
                Ok(rows)
            }
            "system:nodes" => Ok(self
                .cluster
                .nodes()
                .iter()
                .map(|node| {
                    let s = node.services();
                    let mut services = Vec::new();
                    if s.data {
                        services.push(Value::from("kv"));
                    }
                    if s.index {
                        services.push(Value::from("index"));
                    }
                    if s.query {
                        services.push(Value::from("n1ql"));
                    }
                    let name = format!("n{}", node.id().0);
                    (
                        name.clone(),
                        Value::object([
                            ("name", Value::from(name.as_str())),
                            ("alive", Value::Bool(node.is_alive())),
                            ("services", Value::Array(services)),
                        ]),
                    )
                })
                .collect()),
            "system:replication" => {
                // Live per-(bucket, vBucket, replica) seqno lag straight
                // from each pump's lag table — no locks held while reading.
                let mut rows = Vec::new();
                for lag in self.cluster.lag_tables() {
                    for row in lag.rows() {
                        rows.push((
                            format!("{}/vb{}/r{}", row.bucket, row.vb, row.replica.0),
                            Value::object([
                                ("bucket", Value::from(row.bucket.as_str())),
                                ("vb", Value::from(u64::from(row.vb))),
                                ("replica", Value::from(format!("n{}", row.replica.0))),
                                ("lag", Value::from(row.lag)),
                                ("ageCycles", Value::from(row.age_cycles)),
                            ]),
                        ));
                    }
                }
                Ok(rows)
            }
            "system:staleness" => {
                // One summary row per bucket: aggregate lag gauges plus the
                // windowed lag-age distribution (values are pump cycles).
                let mut rows = Vec::new();
                for lag in self.cluster.lag_tables() {
                    let s = lag.staleness_row();
                    let cycles =
                        |p: f64| s.lag_age.merged.percentile(p).map_or(0, |d| d.as_nanos() as u64);
                    rows.push((
                        s.bucket.clone(),
                        Value::object([
                            ("bucket", Value::from(s.bucket.as_str())),
                            ("cycles", Value::from(s.cycles)),
                            ("laggingVbuckets", Value::from(s.lagging_vbuckets)),
                            ("lagMax", Value::from(s.lag_max)),
                            ("lagTotal", Value::from(s.lag_total)),
                            ("windowEpoch", Value::from(s.lag_age.epoch)),
                            ("lagAgeEpisodes", Value::from(s.lag_age.merged.count())),
                            ("lagAgeP50Cycles", Value::from(cycles(50.0))),
                            ("lagAgeP95Cycles", Value::from(cycles(95.0))),
                            ("lagAgeP99Cycles", Value::from(cycles(99.0))),
                        ]),
                    ));
                }
                Ok(rows)
            }
            "system:completed_traces" => {
                // Stitched causal traces (live root-done slots + the
                // completed ring), one row per trace.
                let rows = self
                    .cluster
                    .trace_store()
                    .completed_traces()
                    .into_iter()
                    .map(|t| {
                        let lanes: Vec<Value> =
                            t.lanes().into_iter().map(|l| Value::from(l.as_ref())).collect();
                        (
                            format!("t{}", t.trace_id),
                            Value::object([
                                ("traceId", Value::from(t.trace_id)),
                                ("root", Value::from(t.root_name)),
                                ("totalUs", Value::from(t.total.as_micros() as u64)),
                                ("spans", Value::from(t.spans.len())),
                                ("lanes", Value::Array(lanes)),
                                ("failed", Value::Bool(t.failed)),
                                ("droppedSpans", Value::from(u64::from(t.dropped_spans))),
                            ]),
                        )
                    })
                    .collect();
                Ok(rows)
            }
            "system:events" => {
                // The flight recorder: cluster lifecycle + query/txn
                // events, ordered by (service, seq).
                let rows = self
                    .cluster
                    .flight_events()
                    .into_iter()
                    .map(|e| {
                        let attrs = Value::object(
                            e.attrs
                                .iter()
                                .map(|(k, v)| (*k, Value::from(v.as_str())))
                                .collect::<Vec<_>>(),
                        );
                        (
                            format!("{}#{}", e.service, e.seq),
                            Value::object([
                                ("service", Value::from(e.service.as_str())),
                                ("seq", Value::from(e.seq)),
                                ("event", Value::from(e.name)),
                                ("attrs", attrs),
                            ]),
                        )
                    })
                    .collect();
                Ok(rows)
            }
            other => Err(Error::Plan(format!("no such keyspace: {other}"))),
        }
    }
}

/// A [`cbs_dcp::BackfillSource`] that reads every vBucket from whichever
/// node is currently active for it — the initial-build path of Figure 9.
struct ClusterBackfill {
    cluster: Arc<Cluster>,
    bucket: String,
}

impl cbs_dcp::BackfillSource for ClusterBackfill {
    fn backfill(
        &self,
        vb: cbs_common::VbId,
        since: SeqNo,
    ) -> Result<(Vec<cbs_dcp::DcpItem>, SeqNo)> {
        let engine = self.cluster.active_engine(&self.bucket, vb)?;
        engine.backfill(vb, since)
    }
}
