//! The cbstats-style operator surface: one call that freezes every metric
//! in the cluster into a typed, navigable snapshot.
//!
//! Mirrors the shape an operator sees through `cbstats` against a real
//! cluster: stats are collected **per node** (each node's data service has
//! its own registry per bucket), broken out **per service** (kv, index,
//! query, fts, xdcr run their own registries) and **per vBucket** (state,
//! seqnos, outstanding disk queue). Cluster-wide totals are derived by
//! merging — counters add, gauges add (they are sizes here), histograms
//! merge bucket-wise — so the aggregate is exactly what one registry would
//! have recorded.

use cbs_common::NodeId;
use cbs_json::Value;
use cbs_kv::VbucketStats;
use cbs_obs::{HistogramSnapshot, PrometheusText, RegistrySnapshot, SlowOp};

use crate::config::ServiceSet;
use crate::lag::ReplicationLagRow;

/// One bucket's data-service stats on one node.
#[derive(Debug, Clone)]
pub struct BucketStats {
    /// Bucket name.
    pub bucket: String,
    /// kv / cache / flusher / dcp / views metrics for this bucket here.
    pub metrics: RegistrySnapshot,
    /// Per-vBucket detail: state, high/persisted seqno, disk-queue depth.
    pub vbuckets: Vec<VbucketStats>,
}

/// Everything one node reports.
#[derive(Debug, Clone)]
pub struct NodeStats {
    /// The node.
    pub node: NodeId,
    /// Services configured on the node (MDS, §4.4).
    pub services: ServiceSet,
    /// Whether the node answered (dead nodes report no metrics).
    pub alive: bool,
    /// Data-service stats, one entry per bucket hosted here.
    pub buckets: Vec<BucketStats>,
    /// Node-local non-data services (the GSI index service).
    pub service_metrics: Vec<RegistrySnapshot>,
}

/// A full cluster statistics snapshot ([`crate::Cluster::stats`]).
#[derive(Debug, Clone)]
pub struct ClusterStats {
    /// Per-node breakdown.
    pub nodes: Vec<NodeStats>,
    /// Cluster-singleton services (query, full-text search).
    pub cluster_services: Vec<RegistrySnapshot>,
    /// Slow operations drained from every registry's ring, with full span
    /// trees (oldest first within each source registry).
    pub slow_ops: Vec<SlowOp>,
    /// The query service's retained completed requests (slow or failed),
    /// oldest first — the rows of `system:completed_requests`, keyed by
    /// request id.
    pub completed_requests: Vec<(String, Value)>,
    /// Requests in flight at snapshot time — the rows of
    /// `system:active_requests`, keyed by request id.
    pub active_requests: Vec<(String, Value)>,
    /// Prepared statements registered with the query service — the rows of
    /// `system:prepareds`, keyed by prepared name.
    pub prepareds: Vec<(String, Value)>,
    /// Live per-(bucket, vBucket, replica) seqno-lag measurements from the
    /// replication pumps — the rows of `system:replication`.
    pub replication: Vec<ReplicationLagRow>,
}

impl ClusterStats {
    /// Cluster-wide totals: every registry merged into one snapshot.
    pub fn merged(&self) -> RegistrySnapshot {
        let mut out = RegistrySnapshot::default();
        for node in &self.nodes {
            for bucket in &node.buckets {
                out.merge(&bucket.metrics);
            }
            for svc in &node.service_metrics {
                out.merge(svc);
            }
        }
        for svc in &self.cluster_services {
            out.merge(svc);
        }
        out
    }

    /// Cluster-wide counter total by metric name.
    pub fn counter(&self, name: &str) -> u64 {
        self.merged().counter(name)
    }

    /// Cluster-wide histogram (bucket-merged across nodes) by metric name.
    pub fn histogram(&self, name: &str) -> HistogramSnapshot {
        self.merged().histogram(name)
    }

    /// Per-vBucket `(bucket, vb, max, mean)` replica lag derived from the
    /// live replication rows, so an operator can spot one lagging replica
    /// without running a chaos workload. vBuckets with no replicas are
    /// omitted.
    pub fn per_vb_replica_lag(&self) -> Vec<(String, u16, u64, f64)> {
        let mut acc: std::collections::BTreeMap<(String, u16), (u64, u64, u64)> =
            std::collections::BTreeMap::new();
        for row in &self.replication {
            let e = acc.entry((row.bucket.clone(), row.vb)).or_insert((0, 0, 0));
            e.0 = e.0.max(row.lag);
            e.1 += row.lag;
            e.2 += 1;
        }
        acc.into_iter()
            .map(|((bucket, vb), (max, sum, n))| (bucket, vb, max, sum as f64 / n as f64))
            .collect()
    }

    /// Prometheus text exposition of the whole snapshot, labelled by
    /// node/bucket so per-node series stay distinguishable.
    pub fn prometheus(&self) -> String {
        let mut p = PrometheusText::new();
        for node in &self.nodes {
            let n = format!("n{}", node.node.0);
            for bucket in &node.buckets {
                p.section(&[("node", &n), ("bucket", &bucket.bucket)], &bucket.metrics);
            }
            for svc in &node.service_metrics {
                p.section(&[("node", &n)], svc);
            }
        }
        for svc in &self.cluster_services {
            p.section(&[], svc);
        }
        p.finish()
    }
}
