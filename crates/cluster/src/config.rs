//! Cluster configuration and multi-dimensional scaling service sets.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use crate::fault::FaultInjector;

/// Which services a node runs (§4.4): "an administrator can choose to run
/// the Data, Index and Query Services on all or different nodes. This
/// ability to have multiple 'dimensions' in which to scale the cluster is
/// called multi-dimensional scaling (MDS)."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceSet {
    /// KV data service (object cache + storage + DCP).
    pub data: bool,
    /// Global secondary index service.
    pub index: bool,
    /// N1QL query service.
    pub query: bool,
}

impl ServiceSet {
    /// All services on one node (the homogeneous topology of Figure 4 and
    /// the appendix's benchmark setup).
    pub fn all() -> ServiceSet {
        ServiceSet { data: true, index: true, query: true }
    }

    /// Data service only.
    pub fn data_only() -> ServiceSet {
        ServiceSet { data: true, index: false, query: false }
    }

    /// Index service only.
    pub fn index_only() -> ServiceSet {
        ServiceSet { data: false, index: true, query: false }
    }

    /// Query service only.
    pub fn query_only() -> ServiceSet {
        ServiceSet { data: false, index: false, query: true }
    }
}

/// Cluster-wide construction parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// vBuckets per bucket (1024 in production, §4.1; shrinkable in tests).
    pub num_vbuckets: u16,
    /// Replica copies per bucket (0..=3, §4.1.1).
    pub num_replicas: u8,
    /// Root directory for node storage (`<root>/node<N>/<bucket>/`).
    pub data_root: PathBuf,
    /// Per-bucket cache quota per node.
    pub cache_quota: usize,
    /// Cache eviction policy.
    pub eviction: cbs_cache::EvictionPolicy,
    /// Flusher drain interval.
    pub flush_interval: Duration,
    /// Flusher shards per bucket engine (each group-commits a static slice
    /// of vBuckets with one fsync per drain cycle).
    pub flusher_shards: usize,
    /// Storage fragmentation threshold for compaction.
    pub fragmentation_threshold: f64,
    /// Optional fault-injection hooks for the simulated transport (chaos
    /// testing). `None` in production configurations.
    pub fault_injector: Option<Arc<dyn FaultInjector>>,
}

impl ClusterConfig {
    /// Small-footprint test configuration rooted in a scratch directory.
    pub fn for_test(num_vbuckets: u16, num_replicas: u8) -> ClusterConfig {
        ClusterConfig {
            num_vbuckets,
            num_replicas,
            data_root: cbs_storage::scratch_dir("cluster"),
            cache_quota: 256 << 20,
            eviction: cbs_cache::EvictionPolicy::ValueOnly,
            flush_interval: Duration::from_millis(10),
            flusher_shards: 4,
            fragmentation_threshold: 0.6,
            fault_injector: None,
        }
    }

    /// The test configuration with a fault injector installed (chaos
    /// harness entry point).
    pub fn for_chaos(
        num_vbuckets: u16,
        num_replicas: u8,
        injector: Arc<dyn FaultInjector>,
    ) -> ClusterConfig {
        ClusterConfig {
            fault_injector: Some(injector),
            ..ClusterConfig::for_test(num_vbuckets, num_replicas)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_sets() {
        assert!(ServiceSet::all().data && ServiceSet::all().index && ServiceSet::all().query);
        assert!(ServiceSet::data_only().data && !ServiceSet::data_only().query);
        assert!(ServiceSet::index_only().index && !ServiceSet::index_only().data);
        assert!(ServiceSet::query_only().query && !ServiceSet::query_only().index);
    }
}
