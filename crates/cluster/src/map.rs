//! The cluster map (§4.1): "vBuckets are mapped to physical servers across
//! the cluster, and the mapping is stored in a lookup structure called the
//! cluster map."

use cbs_common::{NodeId, VbId};

/// One bucket's vBucket→node placement at a given epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterMap {
    /// Monotonically increasing version; bumped on failover / rebalance so
    /// clients can detect staleness ("the cluster updates each connected
    /// client library with the new cluster map").
    pub epoch: u64,
    /// Active owner per vBucket.
    pub active: Vec<NodeId>,
    /// Replica owners per vBucket (up to 3, §4.1.1).
    pub replicas: Vec<Vec<NodeId>>,
}

impl ClusterMap {
    /// Compute a balanced placement of `num_vbuckets` over `data_nodes`
    /// with `num_replicas` replica chains: vBucket `v` is active on node
    /// `v mod n` with replicas on the next nodes around the ring. This is
    /// the canonical layout a fresh rebalance converges to.
    pub fn balanced(
        epoch: u64,
        num_vbuckets: u16,
        data_nodes: &[NodeId],
        num_replicas: u8,
    ) -> ClusterMap {
        assert!(!data_nodes.is_empty(), "cluster map needs at least one data node");
        let n = data_nodes.len();
        let replicas_per_vb = (num_replicas as usize).min(n - 1);
        let mut active = Vec::with_capacity(num_vbuckets as usize);
        let mut replicas = Vec::with_capacity(num_vbuckets as usize);
        for v in 0..num_vbuckets as usize {
            active.push(data_nodes[v % n]);
            replicas.push((1..=replicas_per_vb).map(|r| data_nodes[(v + r) % n]).collect());
        }
        ClusterMap { epoch, active, replicas }
    }

    /// The active node for a vBucket.
    pub fn active_node(&self, vb: VbId) -> NodeId {
        self.active[vb.index()]
    }

    /// Replica nodes for a vBucket.
    pub fn replica_nodes(&self, vb: VbId) -> &[NodeId] {
        &self.replicas[vb.index()]
    }

    /// All vBuckets active on `node`.
    pub fn active_vbs(&self, node: NodeId) -> Vec<VbId> {
        self.active
            .iter()
            .enumerate()
            .filter(|(_, &n)| n == node)
            .map(|(v, _)| VbId(v as u16))
            .collect()
    }

    /// All vBuckets with a replica on `node`.
    pub fn replica_vbs(&self, node: NodeId) -> Vec<VbId> {
        self.replicas
            .iter()
            .enumerate()
            .filter(|(_, reps)| reps.contains(&node))
            .map(|(v, _)| VbId(v as u16))
            .collect()
    }

    /// Number of vBuckets.
    pub fn num_vbuckets(&self) -> u16 {
        self.active.len() as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn balanced_distribution_is_even() {
        let map = ClusterMap::balanced(1, 1024, &nodes(4), 1);
        for n in nodes(4) {
            assert_eq!(map.active_vbs(n).len(), 256, "1024/4 active each");
            assert_eq!(map.replica_vbs(n).len(), 256);
        }
        // Replica is never the active node.
        for v in 0..1024u16 {
            let vb = VbId(v);
            assert!(!map.replica_nodes(vb).contains(&map.active_node(vb)));
        }
    }

    #[test]
    fn replicas_capped_by_cluster_size() {
        let map = ClusterMap::balanced(1, 64, &nodes(2), 3);
        for v in 0..64u16 {
            assert_eq!(map.replica_nodes(VbId(v)).len(), 1, "only one other node exists");
        }
        let map = ClusterMap::balanced(1, 64, &nodes(1), 3);
        for v in 0..64u16 {
            assert!(map.replica_nodes(VbId(v)).is_empty());
        }
    }

    #[test]
    fn three_replica_chains_distinct() {
        let map = ClusterMap::balanced(1, 256, &nodes(4), 3);
        for v in 0..256u16 {
            let vb = VbId(v);
            let mut all = vec![map.active_node(vb)];
            all.extend_from_slice(map.replica_nodes(vb));
            all.sort();
            all.dedup();
            assert_eq!(all.len(), 4, "active + 3 replicas cover 4 distinct nodes");
        }
    }
}
