//! Per-(vBucket, replica) replication-lag tracking for the DCP pump.
//!
//! The paper's intra-cluster replication (§4.1.1) is asynchronous: an
//! active vBucket's mutations reach its replicas through the memory-to-
//! memory DCP pump, so at any instant a replica may be *behind* — and a
//! failover promoting it loses the tail. The chaos checker can prove a
//! history legal; this table is the complementary *measuring* instrument:
//! every pump cycle it samples, per (vBucket, replica), the seqno distance
//! between the active copy and the replica, and how many cycles the
//! replica has been continuously behind.
//!
//! Everything here is atomics — the table lives inside the pump entry
//! (rank `CLUSTER_PUMPS` map) but is read lock-free by `Cluster::stats()`,
//! the `system:replication` / `system:staleness` catalogs, and the
//! Prometheus export. The logical clock is the pump cycle counter: lag-age
//! is measured in cycles, and the windowed lag-age histogram rotates every
//! [`LAG_WINDOW_CYCLES`] cycles so snapshots answer "how far behind are
//! replicas *now*", not "since boot".

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use cbs_common::{NodeId, VbId};
use cbs_obs::{Counter, Gauge, Registry, WindowedHistogram, WindowedSnapshot};

use crate::replication::PumpTopology;

/// Pump cycles per lag-age window: with the pump's ~1 ms idle cadence a
/// window is roughly 64 ms, so the 8-window ring covers the last ~half
/// second of replication behaviour.
pub const LAG_WINDOW_CYCLES: u64 = 64;

/// Sentinel for "this replica slot is unused / unmeasurable".
const EMPTY_NODE: u32 = u32::MAX;

/// Sentinel for "this replica is fully caught up" in `behind_since`.
const CAUGHT_UP: u64 = u64::MAX;

/// One (vBucket, replica-position) measurement slot.
#[derive(Debug)]
struct ReplicaSlot {
    /// Replica node id (`EMPTY_NODE` when the slot is unused).
    node: AtomicU32,
    /// Seqno distance active − replica at the last pump cycle.
    lag: AtomicU64,
    /// Pump cycle at which the replica fell behind (`CAUGHT_UP` when not
    /// behind); age in cycles is `cycle − behind_since`.
    behind_since: AtomicU64,
}

impl ReplicaSlot {
    fn new() -> ReplicaSlot {
        ReplicaSlot {
            node: AtomicU32::new(EMPTY_NODE),
            lag: AtomicU64::new(0),
            behind_since: AtomicU64::new(CAUGHT_UP),
        }
    }

    fn clear(&self) {
        self.node.store(EMPTY_NODE, Ordering::Relaxed);
        self.lag.store(0, Ordering::Relaxed);
        self.behind_since.store(CAUGHT_UP, Ordering::Relaxed);
    }
}

/// One live lag measurement, as surfaced through `ClusterStats` and the
/// `system:replication` catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicationLagRow {
    /// Bucket the measurement belongs to.
    pub bucket: String,
    /// vBucket id.
    pub vb: u16,
    /// Replica node the lag is measured against.
    pub replica: NodeId,
    /// Seqno distance active − replica at the last pump cycle.
    pub lag: u64,
    /// Consecutive pump cycles this replica has been behind (0 when caught
    /// up).
    pub age_cycles: u64,
}

/// Per-bucket staleness summary, as surfaced through `system:staleness`.
#[derive(Debug, Clone, PartialEq)]
pub struct StalenessRow {
    /// Bucket the summary describes.
    pub bucket: String,
    /// Pump cycles completed (the logical clock).
    pub cycles: u64,
    /// vBuckets with at least one lagging replica at the last cycle.
    pub lagging_vbuckets: u64,
    /// Largest per-replica seqno lag at the last cycle.
    pub lag_max: u64,
    /// Sum of per-replica seqno lags at the last cycle.
    pub lag_total: u64,
    /// Windowed lag-age distribution (in pump cycles): one sample per
    /// resolved lag episode, covering the live windows only.
    pub lag_age: WindowedSnapshot,
}

/// Lock-free per-bucket lag table, updated by the pump every cycle.
#[derive(Debug)]
pub struct ReplicationLagTable {
    bucket: String,
    registry: Arc<Registry>,
    cycle: AtomicU64,
    /// `slots[vb][replica_position]`, capacity fixed at construction.
    slots: Vec<Vec<ReplicaSlot>>,
    lag_max: Arc<Gauge>,
    lag_total: Arc<Gauge>,
    lagging_vbuckets: Arc<Gauge>,
    cycles: Arc<Counter>,
    lag_age: Arc<WindowedHistogram>,
}

impl ReplicationLagTable {
    /// A fresh table for `bucket` with `num_vbuckets × num_replicas`
    /// measurement slots.
    pub fn new(bucket: &str, num_vbuckets: u16, num_replicas: usize) -> ReplicationLagTable {
        let registry = Arc::new(Registry::new("cluster"));
        let lag_max = registry.gauge_with_help(
            "cluster.replication.lag_max",
            "Largest active-to-replica seqno lag across all vBuckets at the last pump cycle",
        );
        let lag_total = registry.gauge_with_help(
            "cluster.replication.lag_total",
            "Sum of active-to-replica seqno lags across all vBuckets at the last pump cycle",
        );
        let lagging_vbuckets = registry.gauge_with_help(
            "cluster.replication.lagging_vbuckets",
            "vBuckets with at least one replica behind the active copy at the last pump cycle",
        );
        let cycles = registry.counter_with_help(
            "cluster.replication.cycles",
            "Replication pump cycles completed (the lag table's logical clock)",
        );
        let lag_age = registry.windowed_histogram_with_help(
            "cluster.replication.lag_age",
            "Pump cycles a replica stayed continuously behind, one sample per resolved lag \
             episode, over the live windows",
        );
        ReplicationLagTable {
            bucket: bucket.to_string(),
            registry,
            cycle: AtomicU64::new(0),
            slots: (0..num_vbuckets)
                .map(|_| (0..num_replicas.max(1)).map(|_| ReplicaSlot::new()).collect())
                .collect(),
            lag_max,
            lag_total,
            lagging_vbuckets,
            cycles,
            lag_age,
        }
    }

    /// Bucket this table measures.
    pub fn bucket(&self) -> &str {
        &self.bucket
    }

    /// The registry holding the `cluster.replication.*` metrics.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Pump cycles observed so far.
    pub fn cycle(&self) -> u64 {
        self.cycle.load(Ordering::Relaxed)
    }

    /// Called by the pump once per cycle: sample every (vBucket, replica)
    /// seqno distance from the topology it just pumped with, maintain the
    /// lag-age episodes, and refresh the aggregate gauges. Single-writer
    /// (the pump thread); readers are lock-free.
    pub fn observe(&self, topo: &PumpTopology) {
        let cycle = self.cycle.fetch_add(1, Ordering::Relaxed) + 1;
        self.cycles.inc();
        // Rotate the lag-age window on the logical clock, never wall time,
        // so seeded chaos runs stay deterministic.
        self.lag_age.advance_to(cycle / LAG_WINDOW_CYCLES);

        let mut max = 0u64;
        let mut total = 0u64;
        let mut lagging_vbs = 0u64;
        for (v, vb_slots) in self.slots.iter().enumerate() {
            let vb = VbId(v as u16);
            if v >= topo.map.num_vbuckets() as usize {
                for slot in vb_slots {
                    slot.clear();
                }
                continue;
            }
            let active = topo.map.active_node(vb);
            let src_high = topo.engines.get(&active).map(|e| e.high_seqno(vb));
            let replicas = topo.map.replica_nodes(vb);
            let mut vb_lagging = false;
            for (i, slot) in vb_slots.iter().enumerate() {
                let (replica, src) = match (replicas.get(i), src_high) {
                    (Some(r), Some(s)) => (*r, s),
                    // No replica in this position, or the active copy is
                    // unreachable: lag is undefined here.
                    _ => {
                        self.finish_episode(slot, cycle);
                        slot.clear();
                        continue;
                    }
                };
                let Some(dst) = topo.engines.get(&replica) else {
                    self.finish_episode(slot, cycle);
                    slot.clear();
                    continue;
                };
                let lag = src.0.saturating_sub(dst.high_seqno(vb).0);
                slot.node.store(replica.0, Ordering::Relaxed);
                slot.lag.store(lag, Ordering::Relaxed);
                if lag == 0 {
                    self.finish_episode(slot, cycle);
                } else {
                    if slot.behind_since.load(Ordering::Relaxed) == CAUGHT_UP {
                        slot.behind_since.store(cycle, Ordering::Relaxed);
                    }
                    vb_lagging = true;
                    max = max.max(lag);
                    total += lag;
                }
            }
            if vb_lagging {
                lagging_vbs += 1;
            }
        }
        self.lag_max.set(max);
        self.lag_total.set(total);
        self.lagging_vbuckets.set(lagging_vbs);
    }

    /// Close a lag episode if one is open: record its age (in cycles) into
    /// the windowed histogram and mark the slot caught up.
    fn finish_episode(&self, slot: &ReplicaSlot, cycle: u64) {
        let since = slot.behind_since.load(Ordering::Relaxed);
        if since != CAUGHT_UP {
            self.lag_age.record_nanos(cycle.saturating_sub(since));
            slot.behind_since.store(CAUGHT_UP, Ordering::Relaxed);
        }
    }

    /// Live per-(vBucket, replica) rows, one per occupied slot.
    pub fn rows(&self) -> Vec<ReplicationLagRow> {
        let cycle = self.cycle.load(Ordering::Relaxed);
        let mut out = Vec::new();
        for (v, vb_slots) in self.slots.iter().enumerate() {
            for slot in vb_slots {
                let node = slot.node.load(Ordering::Relaxed);
                if node == EMPTY_NODE {
                    continue;
                }
                let since = slot.behind_since.load(Ordering::Relaxed);
                out.push(ReplicationLagRow {
                    bucket: self.bucket.clone(),
                    vb: v as u16,
                    replica: NodeId(node),
                    lag: slot.lag.load(Ordering::Relaxed),
                    age_cycles: if since == CAUGHT_UP { 0 } else { cycle.saturating_sub(since) },
                });
            }
        }
        out
    }

    /// Per-vBucket (max, mean) replica lag over occupied slots, for the
    /// cbstats operator table. vBuckets with no measurable replica are
    /// omitted.
    pub fn per_vb_lag(&self) -> Vec<(u16, u64, f64)> {
        let mut out = Vec::new();
        for (v, vb_slots) in self.slots.iter().enumerate() {
            let mut max = 0u64;
            let mut sum = 0u64;
            let mut n = 0u64;
            for slot in vb_slots {
                if slot.node.load(Ordering::Relaxed) == EMPTY_NODE {
                    continue;
                }
                let lag = slot.lag.load(Ordering::Relaxed);
                max = max.max(lag);
                sum += lag;
                n += 1;
            }
            if n > 0 {
                out.push((v as u16, max, sum as f64 / n as f64));
            }
        }
        out
    }

    /// The bucket's staleness summary row (`system:staleness`).
    pub fn staleness_row(&self) -> StalenessRow {
        StalenessRow {
            bucket: self.bucket.clone(),
            cycles: self.cycle(),
            lagging_vbuckets: self.lagging_vbuckets.get(),
            lag_max: self.lag_max.get(),
            lag_total: self.lag_total.get(),
            lag_age: self.lag_age.windowed_snapshot(),
        }
    }
}
