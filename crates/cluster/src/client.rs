//! The smart client (§4.1): "Applications can use Couchbase's smart
//! clients, which contain a copy of the cluster map [...] A client applies
//! a hash function (CRC32) to every document that needs to be stored in
//! Couchbase, and the document can then be sent directly from the client
//! to the server where it should reside" (Figure 5).

use std::sync::Arc;
use std::time::Duration;

use crate::cluster::Cluster;
use crate::map::ClusterMap;
use cbs_common::sync::{rank, OrderedRwLock};
use cbs_common::{vbucket_for_key, Cas, Error, Result, VbId};
use cbs_json::SharedValue;
use cbs_kv::{GetResult, MutateMode, MutationResult};

/// How many times the client refreshes its map and retries after routing
/// errors before giving up.
const MAX_RETRIES: usize = 8;

/// Durability requirement per mutation (§2.3.2 "Durability guarantees":
/// "Couchbase provides client applications with the option to wait for
/// replication and/or for persistence on a per mutation basis").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Durability {
    /// Wait until the mutation is replicated to this many replica copies.
    pub replicate_to: u8,
    /// Wait until the mutation is persisted on the active copy.
    pub persist_to_master: bool,
}

/// A cluster-map-caching client handle.
pub struct SmartClient {
    cluster: Arc<Cluster>,
    bucket: String,
    map: OrderedRwLock<ClusterMap>,
    /// Causal trace sink on the `client` lane: every KV op mints (or, when
    /// an outer entry point such as a transaction already holds one, joins)
    /// a trace here (DESIGN.md §17).
    trace: cbs_obs::TraceSink,
}

impl SmartClient {
    /// Connect to a bucket (fetches the initial map).
    pub fn connect(cluster: Arc<Cluster>, bucket: &str) -> Result<SmartClient> {
        let map = cluster.map(bucket)?;
        let trace = cbs_obs::TraceSink::new(Arc::clone(cluster.trace_store()), "client");
        Ok(SmartClient {
            cluster,
            bucket: bucket.to_string(),
            map: OrderedRwLock::new(rank::CLIENT_MAP, map),
            trace,
        })
    }

    /// Run `f` under a root span (or a child span when an outer entry
    /// point's context is ambient), marking the trace failed on error.
    fn traced<T>(&self, name: &'static str, f: impl FnOnce() -> Result<T>) -> Result<T> {
        let mut guard = self.trace.mint(name);
        let result = f();
        if result.is_err() {
            if let Some(g) = guard.as_mut() {
                g.fail();
            }
        }
        result
    }

    /// The bucket this client talks to.
    pub fn bucket(&self) -> &str {
        &self.bucket
    }

    /// The vBucket a key routes to.
    pub fn vb_for_key(&self, key: &str) -> VbId {
        VbId(vbucket_for_key(key.as_bytes(), self.map.read().num_vbuckets()))
    }

    /// Epoch of the cached map (tests / diagnostics).
    pub fn cached_epoch(&self) -> u64 {
        self.map.read().epoch
    }

    fn refresh_map(&self) -> Result<()> {
        let fresh = self.cluster.map(&self.bucket)?;
        let mut cached = self.map.write();
        if fresh.epoch > cached.epoch {
            *cached = fresh;
        }
        Ok(())
    }

    /// Route an operation to the active node of the key's vBucket,
    /// refreshing the map and retrying on routing errors (the
    /// NOT_MY_VBUCKET dance).
    fn with_engine<T>(
        &self,
        key: &str,
        op: impl Fn(&cbs_kv::DataEngine) -> Result<T>,
    ) -> Result<T> {
        let mut last_err = Error::Cluster("unreachable".to_string());
        for attempt in 0..MAX_RETRIES {
            let vb = self.vb_for_key(key);
            let node_id = self.map.read().active_node(vb);
            // Slow-node stalls from the fault-injection seam (chaos
            // testing): sleep, then perform the operation normally.
            if let Some(inj) = self.cluster.config().fault_injector.as_ref() {
                if let Some(stall) = inj.client_dispatch(node_id, vb) {
                    std::thread::sleep(stall);
                }
            }
            let result = self
                .cluster
                .node(node_id)
                .and_then(|n| n.engine(&self.bucket))
                .and_then(|e| op(&e));
            match result {
                Ok(v) => return Ok(v),
                Err(
                    e @ (Error::VbucketNotActive(_) | Error::NotMyVbucket(_) | Error::NodeDown(_)),
                ) => {
                    last_err = e;
                    self.refresh_map()?;
                    // Brief backoff: the topology change may still be
                    // propagating (mid-failover).
                    std::thread::sleep(Duration::from_millis(2 << attempt.min(5)));
                }
                Err(other) => return Err(other),
            }
        }
        Err(last_err)
    }

    /// KV get (§3.1.1: "only the cluster node hosting the data with that
    /// key will be contacted").
    pub fn get(&self, key: &str) -> Result<GetResult> {
        self.traced("client.kv.get", || self.with_engine(key, |e| e.get(key)))
    }

    /// KV upsert. The value is wrapped in a [`SharedValue`] once up front;
    /// retries (and the engine's cache/DCP hand-offs) reuse that single
    /// allocation instead of deep-cloning the document per attempt.
    pub fn upsert(&self, key: &str, value: impl Into<SharedValue>) -> Result<MutationResult> {
        let value = value.into();
        self.traced("client.kv.upsert", || {
            self.with_engine(key, |e| {
                e.set(key, value.clone(), MutateMode::Upsert, Cas::WILDCARD, 0)
            })
        })
    }

    /// KV insert (fails on existing key).
    pub fn insert(&self, key: &str, value: impl Into<SharedValue>) -> Result<MutationResult> {
        let value = value.into();
        self.traced("client.kv.insert", || {
            self.with_engine(key, |e| {
                e.set(key, value.clone(), MutateMode::Insert, Cas::WILDCARD, 0)
            })
        })
    }

    /// KV replace with optional CAS check.
    pub fn replace(
        &self,
        key: &str,
        value: impl Into<SharedValue>,
        cas: Cas,
    ) -> Result<MutationResult> {
        let value = value.into();
        self.traced("client.kv.replace", || {
            self.with_engine(key, |e| e.set(key, value.clone(), MutateMode::Replace, cas, 0))
        })
    }

    /// CAS-checked upsert.
    pub fn upsert_with_cas(
        &self,
        key: &str,
        value: impl Into<SharedValue>,
        cas: Cas,
    ) -> Result<MutationResult> {
        let value = value.into();
        self.traced("client.kv.upsert", || {
            self.with_engine(key, |e| e.set(key, value.clone(), MutateMode::Upsert, cas, 0))
        })
    }

    /// KV delete.
    pub fn remove(&self, key: &str, cas: Cas) -> Result<MutationResult> {
        self.traced("client.kv.remove", || self.with_engine(key, |e| e.delete(key, cas)))
    }

    /// Upsert with expiry (TTL).
    pub fn upsert_with_expiry(
        &self,
        key: &str,
        value: impl Into<SharedValue>,
        expiry: u32,
    ) -> Result<MutationResult> {
        let value = value.into();
        self.with_engine(key, |e| {
            e.set(key, value.clone(), MutateMode::Upsert, Cas::WILDCARD, expiry)
        })
    }

    /// Get-and-lock (GETL, §3.1.1).
    pub fn get_and_lock(&self, key: &str, duration: Duration) -> Result<GetResult> {
        self.with_engine(key, |e| e.get_and_lock(key, Some(duration)))
    }

    /// Release a GETL lock.
    pub fn unlock(&self, key: &str, token: Cas) -> Result<()> {
        self.with_engine(key, |e| e.unlock(key, token))
    }

    /// Mutation with durability requirements: ack only once the mutation
    /// is replicated to `replicate_to` replicas and/or persisted on the
    /// active copy (§2.3.2).
    pub fn upsert_durable(
        &self,
        key: &str,
        value: impl Into<SharedValue>,
        durability: Durability,
        timeout: Duration,
    ) -> Result<MutationResult> {
        // The durable root: the inner upsert and observe join it as child
        // spans (their mints see this trace's ambient context), so one
        // durable write reads as a single stitched tree — client set →
        // engine → replication deliver → replica apply → WAL commit →
        // durability ack.
        self.traced("client.kv.durable", || {
            let result = self.upsert(key, value)?;
            self.observe(key, result, durability, timeout)?;
            Ok(result)
        })
    }

    /// Wait (observe-style polling) until a mutation satisfies the given
    /// durability requirement.
    pub fn observe(
        &self,
        key: &str,
        mutation: MutationResult,
        durability: Durability,
        timeout: Duration,
    ) -> Result<()> {
        // Child when called under upsert_durable's root; an app calling
        // observe directly gets its own root.
        let _span = self.trace.mint("client.kv.observe");
        let map = self.map.read().clone();
        let vb = mutation.vb;
        if durability.replicate_to as usize > map.replica_nodes(vb).len() {
            return Err(Error::DurabilityImpossible(format!(
                "replicate_to={} but only {} replicas configured",
                durability.replicate_to,
                map.replica_nodes(vb).len()
            )));
        }
        let deadline = cbs_common::time::Deadline::after(timeout);
        if durability.persist_to_master {
            let node = self.cluster.node(map.active_node(vb))?;
            node.engine(&self.bucket)?.wait_persisted(vb, mutation.seqno, timeout)?;
        }
        if durability.replicate_to > 0 {
            loop {
                let mut satisfied = 0u8;
                for r in map.replica_nodes(vb) {
                    if let Ok(node) = self.cluster.node(*r) {
                        if let Ok(engine) = node.engine(&self.bucket) {
                            if engine.high_seqno(vb) >= mutation.seqno {
                                satisfied += 1;
                            }
                        }
                    }
                }
                if satisfied >= durability.replicate_to {
                    break;
                }
                if deadline.expired() {
                    return Err(Error::Timeout(format!(
                        "replication of {key} to {} replicas",
                        durability.replicate_to
                    )));
                }
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        Ok(())
    }
}
