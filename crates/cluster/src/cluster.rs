//! The cluster manager (§4.3.1): membership, orchestrator election,
//! failover, rebalance.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cbs_common::sync::{rank, OrderedMutex, OrderedRwLock};
use cbs_common::{Error, NodeId, Result, SeqNo, VbId};
use cbs_json::Value;
use cbs_kv::VbState;
use cbs_views::{ViewQuery, ViewResult, ViewRow};

use crate::config::{ClusterConfig, ServiceSet};
use crate::lag::ReplicationLagTable;
use crate::map::ClusterMap;
use crate::node::Node;
use crate::replication::{PumpTopology, ReplicationPump, TopologyFn};

/// A bucket's running pump plus its lock-free lag table. The table is
/// shared out (`Arc`) to stats/catalog readers; the pump thread is the
/// table's single writer.
struct PumpEntry {
    /// Held for its `Drop`: removing the entry stops the pump thread.
    _pump: ReplicationPump,
    lag: Arc<ReplicationLagTable>,
}

pub(crate) struct ClusterInner {
    pub cfg: ClusterConfig,
    pub nodes: OrderedRwLock<Vec<Arc<Node>>>,
    /// Per-bucket cluster maps.
    pub maps: OrderedRwLock<HashMap<String, ClusterMap>>,
    /// The cluster's full-text search service (§6.1.3), fed by the DCP
    /// pump like the GSI service.
    pub fts: Arc<cbs_fts::FtsService>,
    /// The query service's metrics registry ("any query node can receive a
    /// statement"; in-process the query nodes share one registry).
    pub query_registry: Arc<cbs_obs::Registry>,
    /// The query service's request log (active set + completed ring),
    /// feeding `system:active_requests` / `system:completed_requests`.
    /// Shared across query nodes the way the registry is.
    pub request_log: Arc<cbs_n1ql::RequestLog>,
    /// The query service's prepared-statement / plan cache, shared across
    /// query nodes like the registry ("a prepared statement is usable on
    /// any query node"). Its `n1ql.plancache.*` metrics live in
    /// `query_registry`.
    pub plan_cache: Arc<cbs_n1ql::PlanCache>,
    /// Finished-transaction ring (committed/aborted rows from the
    /// `cbs-txn` coordinator), feeding `system:transactions`.
    pub txn_log: Arc<crate::txnlog::TxnLog>,
    /// The cluster-wide causal trace store (DESIGN.md §17): every node's
    /// engine, the replication pumps, and the smart clients stitch their
    /// spans here, keyed by `trace_id`.
    pub trace_store: Arc<cbs_obs::TraceStore>,
    /// Cluster-lifecycle flight recorder (failover, rebalance, node
    /// membership) feeding `system:events` and chaos postmortem dumps.
    pub events: Arc<cbs_obs::Registry>,
}

impl ClusterInner {
    pub fn node(&self, id: NodeId) -> Result<Arc<Node>> {
        self.nodes
            .read()
            .iter()
            .find(|n| n.id() == id)
            .cloned()
            .ok_or_else(|| Error::Cluster(format!("unknown node {id:?}")))
    }

    pub fn alive_data_nodes(&self) -> Vec<Arc<Node>> {
        self.nodes.read().iter().filter(|n| n.is_alive() && n.services().data).cloned().collect()
    }

    pub fn map(&self, bucket: &str) -> Result<ClusterMap> {
        self.maps
            .read()
            .get(bucket)
            .cloned()
            .ok_or_else(|| Error::Cluster(format!("unknown bucket {bucket}")))
    }
}

/// A Couchbase cluster: nodes + buckets + the management plane.
pub struct Cluster {
    inner: Arc<ClusterInner>,
    pumps: OrderedMutex<HashMap<String, PumpEntry>>,
    next_node_id: AtomicU32,
    rebalancing: AtomicBool,
}

impl Cluster {
    /// Build a cluster of `n` nodes all running every service (the
    /// homogeneous Figure 4 topology).
    pub fn homogeneous(n: usize, cfg: ClusterConfig) -> Arc<Cluster> {
        Cluster::with_services(vec![ServiceSet::all(); n], cfg)
    }

    /// Build a cluster with explicit per-node service sets (MDS, §4.4).
    pub fn with_services(services: Vec<ServiceSet>, cfg: ClusterConfig) -> Arc<Cluster> {
        let trace_store = cbs_obs::TraceStore::new();
        let nodes: Vec<Arc<Node>> = services
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                Arc::new(Node::new(NodeId(i as u32), s, &cfg).with_trace_store(&trace_store))
            })
            .collect();
        let next = nodes.len() as u32;
        let query_registry = Arc::new(cbs_obs::Registry::new("n1ql"));
        let plan_cache = Arc::new(cbs_n1ql::PlanCache::with_registry(&query_registry));
        Arc::new(Cluster {
            inner: Arc::new(ClusterInner {
                fts: Arc::new(cbs_fts::FtsService::new(cfg.num_vbuckets)),
                cfg,
                nodes: OrderedRwLock::new(rank::CLUSTER_NODES, nodes),
                maps: OrderedRwLock::new(rank::CLUSTER_MAPS, HashMap::new()),
                query_registry,
                request_log: Arc::new(cbs_n1ql::RequestLog::new("n1ql")),
                plan_cache,
                txn_log: Arc::new(crate::txnlog::TxnLog::default()),
                trace_store,
                events: Arc::new(cbs_obs::Registry::new("cluster")),
            }),
            pumps: OrderedMutex::new(rank::CLUSTER_PUMPS, HashMap::new()),
            next_node_id: AtomicU32::new(next),
            rebalancing: AtomicBool::new(false),
        })
    }

    /// Cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.inner.cfg
    }

    /// All nodes.
    pub fn nodes(&self) -> Vec<Arc<Node>> {
        self.inner.nodes.read().clone()
    }

    /// Look up a node.
    pub fn node(&self, id: NodeId) -> Result<Arc<Node>> {
        self.inner.node(id)
    }

    /// The current orchestrator: "the nodes also elect a cluster-wide
    /// orchestrator node" — deterministic election of the lowest-id alive
    /// node, re-run implicitly whenever liveness changes ("they will elect
    /// a new orchestrator immediately").
    pub fn orchestrator(&self) -> Option<NodeId> {
        self.inner.nodes.read().iter().filter(|n| n.is_alive()).map(|n| n.id()).min()
    }

    /// The map for a bucket (what smart clients cache).
    pub fn map(&self, bucket: &str) -> Result<ClusterMap> {
        self.inner.map(bucket)
    }

    /// Bucket names.
    pub fn buckets(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.maps.read().keys().cloned().collect();
        v.sort();
        v
    }

    // ------------------------------------------------------------------
    // Bucket management
    // ------------------------------------------------------------------

    /// Create a bucket across all data nodes, compute its initial balanced
    /// map, activate vBuckets, and start its replication/index pump.
    pub fn create_bucket(&self, bucket: &str) -> Result<()> {
        if self.inner.maps.read().contains_key(bucket) {
            return Err(Error::Cluster(format!("bucket {bucket} already exists")));
        }
        let data_nodes = self.inner.alive_data_nodes();
        if data_nodes.is_empty() {
            return Err(Error::Cluster("no data nodes available".to_string()));
        }
        for node in self.inner.nodes.read().iter() {
            node.create_bucket(bucket)?;
        }
        let ids: Vec<NodeId> = data_nodes.iter().map(|n| n.id()).collect();
        let map =
            ClusterMap::balanced(1, self.inner.cfg.num_vbuckets, &ids, self.inner.cfg.num_replicas);
        // Activate placement on the engines.
        for node in &data_nodes {
            let engine = node.engine(bucket)?;
            for vb in map.active_vbs(node.id()) {
                engine.set_vb_state(vb, VbState::Active);
            }
            for vb in map.replica_vbs(node.id()) {
                engine.set_vb_state(vb, VbState::Replica);
            }
        }
        self.inner.maps.write().insert(bucket.to_string(), map);
        // Start the DCP pump (replication + GSI feed) for this bucket.
        let inner = Arc::clone(&self.inner);
        let bucket_name = bucket.to_string();
        let topo: TopologyFn = Box::new(move || topology_snapshot(&inner, &bucket_name));
        let lag = Arc::new(ReplicationLagTable::new(
            bucket,
            self.inner.cfg.num_vbuckets,
            self.inner.cfg.num_replicas as usize,
        ));
        // Prime the table with the creation topology before the pump thread
        // (its single writer from here on) starts: stats and the
        // `system:replication` catalog read rows the instant the bucket
        // exists instead of racing the pump's first cycle.
        lag.observe(&topology_snapshot(&self.inner, bucket));
        let pump = ReplicationPump::spawn(bucket.to_string(), topo, Arc::clone(&lag));
        self.pumps.lock().insert(bucket.to_string(), PumpEntry { _pump: pump, lag });
        Ok(())
    }

    // ------------------------------------------------------------------
    // Failure handling (§4.3.1)
    // ------------------------------------------------------------------

    /// Crash a node (failure injection).
    pub fn kill_node(&self, id: NodeId) -> Result<()> {
        self.inner.node(id)?.kill();
        self.inner.events.record_event_with_help(
            "cluster.events.node_killed",
            "a node was crashed (failure injection or hard down)",
            &[("node", format!("n{}", id.0))],
        );
        Ok(())
    }

    /// Fail over a (dead) node: "It promotes to active status replica
    /// partitions associated with the server that went down. The cluster
    /// map will also be updated on all of the cluster nodes and the
    /// clients."
    ///
    /// Returns the number of vBuckets promoted across all buckets. vBuckets
    /// with no surviving replica are lost until the node returns (as in the
    /// real system with replica count 0).
    pub fn failover(&self, dead: NodeId) -> Result<usize> {
        let node = self.inner.node(dead)?;
        if node.is_alive() {
            return Err(Error::Cluster(format!("{dead:?} is still alive; refuse to fail over")));
        }
        let mut promoted = 0usize;
        let buckets = self.buckets();
        for bucket in buckets {
            // Flight-recorder rows for this bucket's promotions, recorded
            // after the maps write guard drops.
            let mut promotions: Vec<(VbId, NodeId)> = Vec::new();
            // Mutate the installed map in place under the write lock: a
            // clone-mutate-insert here would clobber concurrent updates
            // (a rebalance mover's takeover, another failover) that landed
            // between the clone and the insert — a lost-update race that
            // can leave a vBucket pointing at a node that no longer owns
            // it.
            let mut maps = self.inner.maps.write();
            let Some(map) = maps.get_mut(&bucket) else { continue };
            let mut changed = false;
            for v in 0..map.num_vbuckets() {
                let vb = VbId(v);
                if map.active_node(vb) == dead {
                    // Promote the most caught-up replica that is alive AND
                    // still serves the bucket right now (a candidate dying
                    // between the liveness check and the promotion is just
                    // skipped; the next failover pass will handle it).
                    // Choosing the highest seqno both minimises data loss
                    // and keeps every surviving sibling a strict prefix of
                    // the new active's lineage — promoting a lagging
                    // replica would strand the sibling's extra seqnos in a
                    // divergent branch the pump can never reconcile.
                    let candidate = map
                        .replica_nodes(vb)
                        .iter()
                        .copied()
                        .filter_map(|r| {
                            self.inner
                                .node(r)
                                .ok()
                                .filter(|n| n.is_alive())
                                .and_then(|n| n.engine(&bucket).ok())
                                .map(|e| (r, e))
                        })
                        .max_by_key(|(_, e)| e.high_seqno(vb));
                    if let Some((new_active, engine)) = candidate {
                        engine.set_vb_state(vb, VbState::Active);
                        map.active[vb.index()] = new_active;
                        map.replicas[vb.index()].retain(|r| *r != new_active && *r != dead);
                        promoted += 1;
                        changed = true;
                        promotions.push((vb, new_active));
                    }
                } else if map.replicas[vb.index()].contains(&dead) {
                    map.replicas[vb.index()].retain(|r| *r != dead);
                    changed = true;
                }
            }
            if changed {
                map.epoch += 1;
            }
            drop(maps);
            for (vb, new_active) in promotions {
                self.inner.events.record_event_with_help(
                    "cluster.events.replica_promotion",
                    "a replica vBucket was promoted to active during failover",
                    &[
                        ("bucket", bucket.clone()),
                        ("vb", vb.0.to_string()),
                        ("from", format!("n{}", dead.0)),
                        ("to", format!("n{}", new_active.0)),
                    ],
                );
            }
        }
        // Idempotent re-passes (auto-failover polling an already-removed
        // node) promote nothing and record nothing, keeping the flight
        // recorder free of timing-dependent noise.
        if promoted > 0 {
            self.inner.events.record_event_with_help(
                "cluster.events.failover",
                "a dead node was failed over; its vBuckets were promoted",
                &[("node", format!("n{}", dead.0)), ("promoted", promoted.to_string())],
            );
        }
        Ok(promoted)
    }

    /// Install a cluster map verbatim, bypassing promotion and backfill
    /// entirely. Test hook for chaos "teeth" tests that deliberately
    /// re-introduce known failover bugs (e.g. routing a vBucket to a node
    /// that skipped replica promotion) to prove the history checker catches
    /// them. Never called by production code.
    #[doc(hidden)]
    pub fn debug_install_map(&self, bucket: &str, map: ClusterMap) -> Result<()> {
        let mut maps = self.inner.maps.write();
        if !maps.contains_key(bucket) {
            return Err(Error::Cluster(format!("unknown bucket {bucket}")));
        }
        maps.insert(bucket.to_string(), map);
        Ok(())
    }

    /// Spawn the orchestrator's failure monitor: "If a node in the cluster
    /// crashes or otherwise becomes unavailable, the orchestrator notifies
    /// all other machines in the cluster. It promotes to active status
    /// replica partitions associated with the server that went down"
    /// (§4.3.1). The monitor heartbeats every node each `interval` and
    /// fails over any that stop responding. Returns a guard; drop it to
    /// stop monitoring.
    pub fn spawn_auto_failover(self: &Arc<Self>, interval: Duration) -> AutoFailover {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let cluster = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name("cbs-auto-failover".to_string())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    for node in cluster.nodes() {
                        if !node.is_alive() {
                            // The orchestrator performs the promotion; in
                            // this simulation any caller thread can act for
                            // it (election is deterministic). failover() is
                            // idempotent — once the dead node is out of the
                            // map it promotes nothing and changes nothing —
                            // so no bookkeeping is needed across passes.
                            let _ = cluster.failover(node.id());
                        }
                    }
                    std::thread::sleep(interval);
                }
            })
            .expect("spawn auto-failover");
        AutoFailover { stop, handle: Some(handle) }
    }

    // ------------------------------------------------------------------
    // Topology changes + rebalance (§4.3.1)
    // ------------------------------------------------------------------

    /// Add a fresh node with the given services (it owns nothing until a
    /// rebalance).
    pub fn add_node(&self, services: ServiceSet) -> Result<NodeId> {
        let id = NodeId(self.next_node_id.fetch_add(1, Ordering::Relaxed));
        let node = Arc::new(
            Node::new(id, services, &self.inner.cfg).with_trace_store(&self.inner.trace_store),
        );
        for bucket in self.buckets() {
            node.create_bucket(&bucket)?;
        }
        self.inner.nodes.write().push(node);
        self.inner.events.record_event_with_help(
            "cluster.events.node_added",
            "a fresh node joined the cluster (owns nothing until rebalance)",
            &[("node", format!("n{}", id.0))],
        );
        Ok(id)
    }

    /// Rebalance every bucket to the balanced layout over the current
    /// alive data nodes, excluding `exclude` (for rebalance-out). "Once
    /// the cluster moves each partition from one location to another, an
    /// atomic and consistent switchover takes place."
    pub fn rebalance(&self, exclude: &[NodeId]) -> Result<()> {
        if self.rebalancing.swap(true, Ordering::SeqCst) {
            return Err(Error::Cluster("rebalance already in progress".to_string()));
        }
        let result = self.rebalance_inner(exclude);
        self.rebalancing.store(false, Ordering::SeqCst);
        self.inner.events.record_event_with_help(
            "cluster.events.rebalance",
            "a rebalance to the balanced layout finished (ok or failed)",
            &[
                (
                    "excluded",
                    exclude.iter().map(|n| format!("n{}", n.0)).collect::<Vec<_>>().join("+"),
                ),
                ("outcome", if result.is_ok() { "ok".to_string() } else { "failed".to_string() }),
            ],
        );
        result
    }

    fn rebalance_inner(&self, exclude: &[NodeId]) -> Result<()> {
        let target_nodes: Vec<Arc<Node>> = self
            .inner
            .alive_data_nodes()
            .into_iter()
            .filter(|n| !exclude.contains(&n.id()))
            .collect();
        if target_nodes.is_empty() {
            return Err(Error::Cluster("rebalance needs at least one data node".to_string()));
        }
        let ids: Vec<NodeId> = target_nodes.iter().map(|n| n.id()).collect();

        for bucket in self.buckets() {
            let current = self.inner.map(&bucket)?;
            let target = ClusterMap::balanced(
                current.epoch + 1,
                current.num_vbuckets(),
                &ids,
                self.inner.cfg.num_replicas,
            );

            // Phase 1: move actives, one vBucket at a time.
            for v in 0..current.num_vbuckets() {
                let vb = VbId(v);
                let src_id = self.inner.map(&bucket)?.active_node(vb);
                let dst_id = target.active_node(vb);
                if src_id == dst_id {
                    continue;
                }
                self.move_active_vb(&bucket, vb, src_id, dst_id)?;
            }

            // Phase 2: (re)build replica chains. Rebalance is not done
            // until new replicas actually hold the data — a failover right
            // after rebalance must be safe. Map updates are per-vBucket and
            // in place under the write lock: holding a cloned map across
            // the (slow) backfills and installing it wholesale at the end
            // would clobber any concurrent failover's promotions.
            for v in 0..current.num_vbuckets() {
                let vb = VbId(v);
                let wanted = target.replica_nodes(vb).to_vec();
                let snapshot = self.inner.map(&bucket)?;
                let have = snapshot.replica_nodes(vb).to_vec();
                for r in &wanted {
                    if !have.contains(r) && *r != snapshot.active_node(vb) {
                        let engine = self.inner.node(*r)?.engine(&bucket)?;
                        if engine.vb_state(vb) != VbState::Replica {
                            engine.purge_vb(vb)?;
                            engine.set_vb_state(vb, VbState::Replica);
                        }
                        // Synchronous initial copy (backfill + catch-up);
                        // the steady-state pump takes over from here.
                        let src = self
                            .inner
                            .node(self.inner.map(&bucket)?.active_node(vb))?
                            .engine(&bucket)?;
                        let mut stream = src.open_dcp_stream(vb, engine.high_seqno(vb))?;
                        let goal = src.high_seqno(vb);
                        for item in stream.drain_until(goal, Duration::from_secs(30)) {
                            engine.apply_replica(&item)?;
                        }
                    }
                }
                // Install the chain for this vBucket against the *current*
                // map state, then decide removals from the same consistent
                // view: a replica that a concurrent failover just promoted
                // to active must be neither listed nor purged.
                let removals: Vec<NodeId> = {
                    let mut maps = self.inner.maps.write();
                    let map = maps
                        .get_mut(&bucket)
                        .ok_or_else(|| Error::Cluster(format!("bucket {bucket} disappeared")))?;
                    let active = map.active_node(vb);
                    let new_chain: Vec<NodeId> =
                        wanted.iter().copied().filter(|r| *r != active).collect();
                    if map.replicas[vb.index()] != new_chain {
                        map.replicas[vb.index()] = new_chain;
                        map.epoch += 1;
                    }
                    have.into_iter().filter(|r| !wanted.contains(r) && *r != active).collect()
                };
                for r in removals {
                    if let Ok(node) = self.inner.node(r) {
                        if let Ok(engine) = node.engine(&bucket) {
                            engine.purge_vb(vb)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Move one active vBucket from `src` to `dst` via DCP backfill + live
    /// tail, finishing with the atomic takeover.
    fn move_active_vb(&self, bucket: &str, vb: VbId, src_id: NodeId, dst_id: NodeId) -> Result<()> {
        let src = self.inner.node(src_id)?.engine(bucket)?;
        let dst = self.inner.node(dst_id)?.engine(bucket)?;
        // "Rebalance marks the destination partitions as being replicas
        // until they are ready to be switched to active" — our Pending
        // state.
        dst.set_vb_state(vb, VbState::Pending);
        let mut stream = src.open_dcp_stream(vb, dst.high_seqno(vb))?;
        // Backfill + catch up to the source's current high seqno.
        let deadline = cbs_common::time::Deadline::after(Duration::from_secs(60));
        loop {
            let goal = src.high_seqno(vb);
            for item in stream.drain_until(goal, Duration::from_millis(200)) {
                dst.apply_replica(&item)?;
            }
            if stream.cursor() >= goal {
                break;
            }
            if deadline.expired() {
                return Err(Error::Timeout(format!("rebalance mover for {vb:?}")));
            }
        }
        // Atomic takeover: block writes on the source, drain the last few
        // in-flight items, flip the destination to active.
        src.set_vb_state(vb, VbState::Dead);
        for item in stream.drain_available() {
            dst.apply_replica(&item)?;
        }
        dst.set_vb_state(vb, VbState::Active);
        // Install the map change so clients re-route (epoch bump per move:
        // "the cluster updates each connected client library with the new
        // cluster map").
        {
            let mut maps = self.inner.maps.write();
            let map = maps.get_mut(bucket).expect("bucket exists");
            map.active[vb.index()] = dst_id;
            map.replicas[vb.index()].retain(|r| *r != dst_id);
            map.epoch += 1;
        }
        // The source no longer owns the partition at all ("Dead: this
        // server is not in any way responsible for this partition").
        src.purge_vb(vb)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Cluster-wide helpers for services
    // ------------------------------------------------------------------

    /// The engine currently active for a vBucket.
    pub fn active_engine(&self, bucket: &str, vb: VbId) -> Result<Arc<cbs_kv::DataEngine>> {
        let map = self.inner.map(bucket)?;
        self.inner.node(map.active_node(vb))?.engine(bucket)
    }

    /// Cluster-wide high-seqno vector for a bucket (the `request_plus`
    /// consistency token, aggregated over active vBuckets).
    pub fn seqno_vector(&self, bucket: &str) -> Result<Vec<SeqNo>> {
        let map = self.inner.map(bucket)?;
        let mut out = vec![SeqNo::ZERO; map.num_vbuckets() as usize];
        for node in self.inner.alive_data_nodes() {
            if let Ok(engine) = node.engine(bucket) {
                for vb in map.active_vbs(node.id()) {
                    out[vb.index()] = engine.high_seqno(vb);
                }
            }
        }
        Ok(out)
    }

    /// All index managers in the cluster (index-service nodes).
    pub fn index_managers(&self) -> Vec<Arc<cbs_index::IndexManager>> {
        self.inner
            .nodes
            .read()
            .iter()
            .filter(|n| n.is_alive())
            .filter_map(|n| n.index_manager().ok())
            .collect()
    }

    /// The index manager DDL and scans are routed to (first alive
    /// index-service node).
    pub fn index_manager(&self) -> Result<Arc<cbs_index::IndexManager>> {
        self.index_managers()
            .into_iter()
            .next()
            .ok_or_else(|| Error::Cluster("no index service in the cluster".to_string()))
    }

    /// Register a design document on every data node (views are local
    /// indexes co-located with the data, §3.3.1).
    pub fn create_design_doc(&self, bucket: &str, ddoc: cbs_views::DesignDoc) -> Result<()> {
        for node in self.inner.alive_data_nodes() {
            node.view_engine(bucket)?.create_design_doc(ddoc.clone())?;
        }
        Ok(())
    }

    /// Cluster-wide view query: "a given view query will be broadcast to
    /// all servers in the cluster and the results will be merged" (§3.1.2,
    /// Figure 8).
    pub fn view_query(
        &self,
        bucket: &str,
        ddoc: &str,
        view: &str,
        q: &ViewQuery,
    ) -> Result<ViewResult> {
        let mut partials: Vec<ViewResult> = Vec::new();
        for node in self.inner.alive_data_nodes() {
            partials.push(node.view_engine(bucket)?.query(ddoc, view, q)?);
        }
        Ok(merge_view_results(partials, q))
    }

    /// The full-text search service (§6.1.3). Indexes created here are
    /// maintained from the same DCP pump that feeds the GSI service, so
    /// they survive failover and rebalance.
    pub fn fts(&self) -> &Arc<cbs_fts::FtsService> {
        &self.inner.fts
    }

    /// Create a full-text search index over a bucket and build it from the
    /// current data (catch-up happens through the pump's from-zero
    /// streams; this call just registers the definition).
    pub fn create_fts_index(&self, def: cbs_fts::FtsIndexDef) -> Result<()> {
        self.map(&def.keyspace)?; // bucket must exist
        self.inner.fts.create_index(def)
    }

    /// Search a full-text index. With `consistent`, the search waits until
    /// the index has processed every mutation acknowledged before this
    /// call (the FTS analogue of `request_plus`).
    pub fn fts_search(
        &self,
        bucket: &str,
        index: &str,
        query: &cbs_fts::SearchQuery,
        limit: usize,
        consistent: bool,
    ) -> Result<Vec<cbs_fts::SearchHit>> {
        let target = if consistent { Some(self.seqno_vector(bucket)?) } else { None };
        self.inner.fts.search(
            bucket,
            index,
            query,
            limit,
            target.as_deref(),
            Duration::from_secs(30),
        )
    }

    /// Per-node operation counters summed (throughput accounting for the
    /// benchmark harness).
    pub fn total_ops(&self, bucket: &str) -> u64 {
        self.inner
            .alive_data_nodes()
            .iter()
            .filter_map(|n| n.engine(bucket).ok())
            .map(|e| e.stats().total_ops())
            .sum()
    }

    // ------------------------------------------------------------------
    // Observability (the cbstats surface)
    // ------------------------------------------------------------------

    /// The query service's metrics registry.
    pub fn query_registry(&self) -> &Arc<cbs_obs::Registry> {
        &self.inner.query_registry
    }

    /// The query service's request log — the live backing store of the
    /// `system:active_requests` / `system:completed_requests` keyspaces.
    pub fn request_log(&self) -> &Arc<cbs_n1ql::RequestLog> {
        &self.inner.request_log
    }

    /// The query service's prepared-statement / plan cache — the live
    /// backing store of the `system:prepareds` keyspace.
    pub fn plan_cache(&self) -> &Arc<cbs_n1ql::PlanCache> {
        &self.inner.plan_cache
    }

    /// The cluster's finished-transaction log — the live backing store of
    /// the `system:transactions` keyspace, written by the `cbs-txn`
    /// coordinator.
    pub fn txn_log(&self) -> &Arc<crate::txnlog::TxnLog> {
        &self.inner.txn_log
    }

    /// A bucket's live replication-lag table (per-(vBucket, replica) seqno
    /// lag maintained by the DCP pump), `None` for unknown buckets. The
    /// pumps lock is held only to clone the `Arc` out.
    pub fn replication_lag(&self, bucket: &str) -> Option<Arc<ReplicationLagTable>> {
        self.pumps.lock().get(bucket).map(|e| Arc::clone(&e.lag))
    }

    /// Every bucket's lag table, for stats/catalog assembly. The pumps
    /// lock is held only to clone the `Arc`s out.
    pub(crate) fn lag_tables(&self) -> Vec<Arc<ReplicationLagTable>> {
        let mut tables: Vec<Arc<ReplicationLagTable>> =
            self.pumps.lock().values().map(|e| Arc::clone(&e.lag)).collect();
        tables.sort_by(|a, b| a.bucket().cmp(b.bucket()));
        tables
    }

    /// Freeze every registry in the cluster into one typed snapshot:
    /// per node, per service, per bucket, per vBucket — plus the slow-op
    /// rings of every service, span trees included.
    pub fn stats(&self) -> crate::stats::ClusterStats {
        let buckets = self.buckets();
        let mut slow_ops = Vec::new();
        let mut nodes = Vec::new();
        for node in self.nodes() {
            let mut bucket_stats = Vec::new();
            let mut service_metrics = Vec::new();
            if node.is_alive() {
                for bucket in &buckets {
                    if let Ok(engine) = node.engine(bucket) {
                        bucket_stats.push(crate::stats::BucketStats {
                            bucket: bucket.clone(),
                            metrics: engine.registry().snapshot(),
                            vbuckets: engine.vbucket_stats(),
                        });
                        slow_ops.extend(engine.registry().slow_ops());
                    }
                }
                if let Ok(mgr) = node.index_manager() {
                    service_metrics.push(mgr.registry().snapshot());
                    slow_ops.extend(mgr.registry().slow_ops());
                }
            }
            nodes.push(crate::stats::NodeStats {
                node: node.id(),
                services: node.services(),
                alive: node.is_alive(),
                buckets: bucket_stats,
                service_metrics,
            });
        }
        let mut cluster_services = Vec::new();
        for registry in [&self.inner.query_registry, self.inner.fts.registry()] {
            cluster_services.push(registry.snapshot());
            slow_ops.extend(registry.slow_ops());
        }
        // Replication-lag surfaces: each bucket's `cluster.replication.*`
        // registry joins the cluster services, and the live per-(vBucket,
        // replica) rows ride along for `system:replication`.
        let mut replication = Vec::new();
        for lag in self.lag_tables() {
            cluster_services.push(lag.registry().snapshot());
            replication.extend(lag.rows());
        }
        crate::stats::ClusterStats {
            nodes,
            cluster_services,
            slow_ops,
            completed_requests: self.inner.request_log.completed_rows(),
            active_requests: self.inner.request_log.active_rows(),
            prepareds: self.inner.plan_cache.prepared_rows(),
            replication,
        }
    }

    /// The cluster-wide causal trace store: completed span trees stitched
    /// across client, nodes, replication and the flusher (DESIGN.md §17).
    pub fn trace_store(&self) -> &Arc<cbs_obs::TraceStore> {
        &self.inner.trace_store
    }

    /// The cluster-lifecycle flight recorder registry (`cluster.events.*`).
    pub fn events_registry(&self) -> &Arc<cbs_obs::Registry> {
        &self.inner.events
    }

    /// Every flight-recorder event in the cluster — lifecycle events from
    /// the cluster manager, the query service (plan-cache invalidations)
    /// and the txn coordinator, plus any recorded on node engines — sorted
    /// by (service, seq) for a deterministic postmortem timeline.
    pub fn flight_events(&self) -> Vec<cbs_obs::EventRec> {
        let mut evs = self.inner.events.events();
        evs.extend(self.inner.query_registry.events());
        evs.extend(self.inner.fts.registry().events());
        for node in self.nodes() {
            for bucket in self.buckets() {
                if let Some(engine) = node.engine_unchecked(&bucket) {
                    evs.extend(engine.registry().events());
                }
            }
        }
        evs.sort_by(|a, b| (a.service.as_str(), a.seq).cmp(&(b.service.as_str(), b.seq)));
        evs
    }

    /// Set the slow-op capture threshold on every registry in the cluster
    /// (`Duration::ZERO` captures every traced operation).
    pub fn set_slow_threshold(&self, threshold: Duration) {
        for node in self.nodes() {
            for bucket in self.buckets() {
                if let Ok(engine) = node.engine(&bucket) {
                    engine.registry().set_slow_threshold(threshold);
                }
            }
            if let Ok(mgr) = node.index_manager() {
                mgr.registry().set_slow_threshold(threshold);
            }
        }
        self.inner.query_registry.set_slow_threshold(threshold);
        self.inner.fts.registry().set_slow_threshold(threshold);
        // Keep the request log's admission threshold in step so "slow"
        // means the same thing in the slow-op ring and the completed ring.
        self.inner.request_log.set_threshold(threshold);
        // And the causal trace store's retention bar: "slow" traces survive
        // ring eviction under the same definition.
        self.inner.trace_store.set_slow_threshold(threshold);
    }
}

/// Guard for the auto-failover monitor thread.
pub struct AutoFailover {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for AutoFailover {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn topology_snapshot(inner: &Arc<ClusterInner>, bucket: &str) -> PumpTopology {
    let map = inner.map(bucket).expect("bucket exists while pump runs");
    let mut engines = HashMap::new();
    for node in inner.nodes.read().iter() {
        if node.is_alive() {
            if let Ok(e) = node.engine(bucket) {
                engines.insert(node.id(), e);
            }
        }
    }
    let index_managers = inner
        .nodes
        .read()
        .iter()
        .filter(|n| n.is_alive())
        .filter_map(|n| n.index_manager().ok())
        .collect();
    PumpTopology {
        map,
        engines,
        index_managers,
        fts_services: vec![Arc::clone(&inner.fts)],
        injector: inner.cfg.fault_injector.clone(),
    }
}

fn merge_view_results(partials: Vec<ViewResult>, q: &ViewQuery) -> ViewResult {
    let total_rows = partials.iter().map(|p| p.total_rows).sum();
    if q.reduce && !q.group {
        // Re-reduce the single-row partials. Counts/sums add; for stats we
        // merge the JSON objects field-wise.
        let mut rows: Vec<ViewRow> = Vec::new();
        for p in partials {
            for row in p.rows {
                match rows.first_mut() {
                    None => rows.push(row),
                    Some(acc) => acc.value = merge_reduced(&acc.value, &row.value),
                }
            }
        }
        return ViewResult { rows, total_rows };
    }
    // Row results (and grouped reductions) merge in key order.
    let mut rows: Vec<ViewRow> = partials.into_iter().flat_map(|p| p.rows).collect();
    rows.sort_by(|a, b| cbs_json::cmp_values(&a.key, &b.key));
    if q.reduce && q.group {
        // Merge adjacent groups with equal keys.
        let mut merged: Vec<ViewRow> = Vec::new();
        for row in rows {
            match merged.last_mut() {
                Some(last)
                    if cbs_json::cmp_values(&last.key, &row.key) == std::cmp::Ordering::Equal =>
                {
                    last.value = merge_reduced(&last.value, &row.value);
                }
                _ => merged.push(row),
            }
        }
        rows = merged;
    }
    if q.limit > 0 && rows.len() > q.limit {
        rows.truncate(q.limit);
    }
    ViewResult { rows, total_rows }
}

/// Combine two reduced values produced by the same reducer.
fn merge_reduced(a: &Value, b: &Value) -> Value {
    match (a, b) {
        (Value::Number(_), Value::Number(_)) => {
            // _count / _sum: addition.
            Value::float(a.as_f64().unwrap_or(0.0) + b.as_f64().unwrap_or(0.0)).into_int_if_whole()
        }
        (Value::Object(_), Value::Object(_)) => {
            // _stats objects.
            let f = |v: &Value, k: &str| v.get_field(k).and_then(Value::as_f64);
            let sum = f(a, "sum").unwrap_or(0.0) + f(b, "sum").unwrap_or(0.0);
            let count = f(a, "count").unwrap_or(0.0) + f(b, "count").unwrap_or(0.0);
            let sumsqr = f(a, "sumsqr").unwrap_or(0.0) + f(b, "sumsqr").unwrap_or(0.0);
            let min = match (f(a, "min"), f(b, "min")) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, None) => x,
                (None, y) => y,
            };
            let max = match (f(a, "max"), f(b, "max")) {
                (Some(x), Some(y)) => Some(x.max(y)),
                (x, None) => x,
                (None, y) => y,
            };
            Value::object([
                ("sum", Value::float(sum).into_int_if_whole()),
                ("count", Value::float(count).into_int_if_whole()),
                ("min", min.map(|m| Value::float(m).into_int_if_whole()).unwrap_or(Value::Null)),
                ("max", max.map(|m| Value::float(m).into_int_if_whole()).unwrap_or(Value::Null)),
                ("sumsqr", Value::float(sumsqr).into_int_if_whole()),
            ])
        }
        _ => a.clone(),
    }
}

trait IntoIntIfWhole {
    fn into_int_if_whole(self) -> Value;
}

impl IntoIntIfWhole for Value {
    fn into_int_if_whole(self) -> Value {
        match self.as_f64() {
            Some(f) if f.fract() == 0.0 && f.abs() < 9e15 => Value::int(f as i64),
            _ => self,
        }
    }
}
