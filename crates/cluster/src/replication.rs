//! The per-bucket DCP pump: intra-cluster replication (§4.1.1) and the
//! data→index feed (Figure 9), driven off the same change streams.
//!
//! "This mutation [...] is also pushed into the in-memory replication
//! queue to be replicated to other nodes within the cluster" (§4.2, Figure
//! 6). The pump owns, per vBucket, a DCP stream from the current active
//! copy; items fan out to every replica engine (memory-to-memory) and to
//! every index-service manager. When the cluster map epoch changes
//! (failover, rebalance) the pump rebuilds its streams, resuming from the
//! destinations' high seqnos / its own index cursor.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use cbs_common::{NodeId, SeqNo, VbId};
use cbs_dcp::DcpStream;
use cbs_fts::FtsService;
use cbs_index::IndexManager;
use cbs_kv::DataEngine;

use crate::fault::{FaultAction, FaultInjector};
use crate::lag::ReplicationLagTable;
use crate::map::ClusterMap;

/// A snapshot of everything the pump needs to (re)build streams.
pub struct PumpTopology {
    /// Current map.
    pub map: ClusterMap,
    /// Data engines by node.
    pub engines: HashMap<NodeId, Arc<DataEngine>>,
    /// Index managers to feed.
    pub index_managers: Vec<Arc<IndexManager>>,
    /// Full-text search services to feed (§6.1.3).
    pub fts_services: Vec<Arc<FtsService>>,
    /// Fault hooks for replica deliveries (chaos testing; `None` in
    /// production).
    pub injector: Option<Arc<dyn FaultInjector>>,
}

/// Callback the pump uses to fetch a fresh topology when the epoch moves.
pub type TopologyFn = Box<dyn Fn() -> PumpTopology + Send>;

struct VbStreams {
    repl: Option<(NodeId, DcpStream)>,
    gsi: Option<(NodeId, DcpStream)>,
}

/// Background pump for one bucket.
pub struct ReplicationPump {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ReplicationPump {
    /// Spawn the pump. `lag` is the bucket's replication-lag table; the
    /// pump samples it once per cycle after draining the streams.
    pub fn spawn(
        bucket: String,
        topology: TopologyFn,
        lag: Arc<ReplicationLagTable>,
    ) -> ReplicationPump {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name(format!("dcp-pump-{bucket}"))
            .spawn(move || pump_loop(&bucket, topology, stop2, &lag))
            .expect("spawn replication pump");
        ReplicationPump { stop, handle: Some(handle) }
    }

    /// Stop the pump.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ReplicationPump {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn pump_loop(bucket: &str, topology: TopologyFn, stop: Arc<AtomicBool>, lag: &ReplicationLagTable) {
    let mut built_epoch: u64 = u64::MAX;
    let mut topo = topology();
    let nvb = topo.map.num_vbuckets() as usize;
    let mut streams: Vec<VbStreams> =
        (0..nvb).map(|_| VbStreams { repl: None, gsi: None }).collect();
    // Per-vb GSI delivery cursor (seqnos survive failover, so resuming by
    // cursor on the new active is correct).
    let mut gsi_cursors: Vec<SeqNo> = vec![SeqNo::ZERO; nvb];
    // Redelivery counts per (vb, seqno, dst) site, consulted by the fault
    // injector so it can drop attempt 0 and let the retry through. Entries
    // are removed once the site is past its fault window.
    let mut attempts: HashMap<(u16, u64, u32), u32> = HashMap::new();

    while !stop.load(Ordering::Relaxed) {
        // Rebuild on epoch change (or when a stream's source died).
        if topo.map.epoch != built_epoch {
            for (v, slot) in streams.iter_mut().enumerate() {
                let vb = VbId(v as u16);
                let active = topo.map.active_node(vb);
                // Replication stream: resume from the lowest replica high
                // seqno so no destination misses anything.
                slot.repl = None;
                let dsts: Vec<Arc<DataEngine>> = topo
                    .map
                    .replica_nodes(vb)
                    .iter()
                    .filter_map(|n| topo.engines.get(n).cloned())
                    .collect();
                if !dsts.is_empty() {
                    if let Some(src) = topo.engines.get(&active) {
                        let since =
                            dsts.iter().map(|d| d.high_seqno(vb)).min().unwrap_or(SeqNo::ZERO);
                        if let Ok(s) = src.open_dcp_stream(vb, since) {
                            slot.repl = Some((active, s));
                        }
                    }
                }
                // GSI/FTS stream: resume from the pump's own cursor.
                slot.gsi = None;
                if !topo.index_managers.is_empty() || !topo.fts_services.is_empty() {
                    if let Some(src) = topo.engines.get(&active) {
                        if let Ok(s) = src.open_dcp_stream(vb, gsi_cursors[v]) {
                            slot.gsi = Some((active, s));
                        }
                    }
                }
            }
            built_epoch = topo.map.epoch;
        }

        let mut moved = 0usize;
        let mut dropped = false;
        for (v, slot) in streams.iter_mut().enumerate() {
            let vb = VbId(v as u16);
            if let Some((_, stream)) = &mut slot.repl {
                // Destinations cut off by a dropped delivery this cycle.
                // A drop models a connection reset: everything after the
                // dropped item is lost for that destination too, so its
                // applied set stays a contiguous seqno prefix and the
                // rebuild (which resumes from the replicas' minimum high
                // seqno) redelivers the hole. Delivering *past* a drop
                // would advance the replica's high seqno over the gap and
                // the missing item could never be recovered.
                let mut cut: Vec<NodeId> = Vec::new();
                for item in stream.drain_available() {
                    for dst_node in topo.map.replica_nodes(vb) {
                        if cut.contains(dst_node) {
                            continue;
                        }
                        let Some(dst) = topo.engines.get(dst_node) else { continue };
                        let action = match &topo.injector {
                            Some(inj) => {
                                let site = (vb.0, item.meta.seqno.0, dst_node.0);
                                let attempt = *attempts.entry(site).or_insert(0);
                                let a = inj.repl_delivery(vb, item.meta.seqno, *dst_node, attempt);
                                if a == FaultAction::Drop {
                                    attempts.insert(site, attempt + 1);
                                } else {
                                    attempts.remove(&site);
                                }
                                a
                            }
                            None => FaultAction::Deliver,
                        };
                        // Stitch the originating op's trace across the pump
                        // thread: the deliver span covers injected faults
                        // plus the replica apply, which nests its own span
                        // under this one via the ambient context.
                        let _deliver = match (item.trace, dst.trace_sink()) {
                            (Some(ctx), Some(sink)) => {
                                Some(sink.child_of(ctx, "cluster.replication.deliver"))
                            }
                            _ => None,
                        };
                        match action {
                            FaultAction::Deliver => {
                                let _ = dst.apply_replica(&item);
                            }
                            FaultAction::Duplicate => {
                                let _ = dst.apply_replica(&item);
                                let _ = dst.apply_replica(&item);
                            }
                            FaultAction::Delay(d) => {
                                std::thread::sleep(d);
                                let _ = dst.apply_replica(&item);
                            }
                            FaultAction::Drop => {
                                dropped = true;
                                cut.push(*dst_node);
                            }
                        }
                    }
                    moved += 1;
                }
            }
            if let Some((_, stream)) = &mut slot.gsi {
                for item in stream.drain_available() {
                    for mgr in &topo.index_managers {
                        mgr.apply_dcp(bucket, &item);
                    }
                    for fts in &topo.fts_services {
                        fts.apply_dcp(bucket, &item);
                    }
                    gsi_cursors[v] = gsi_cursors[v].max(item.meta.seqno);
                    moved += 1;
                }
            }
        }

        if dropped {
            // Connection-reset semantics for drops: tear the streams down;
            // the rebuild reopens each replication stream from the
            // replicas' minimum high seqno, redelivering what was lost.
            built_epoch = u64::MAX;
        }

        // Sample per-(vBucket, replica) seqno lag against the topology this
        // cycle pumped with. The cycle counter is the lag table's logical
        // clock (window rotation included) — no wall-clock reads.
        lag.observe(&topo);

        if moved == 0 {
            std::thread::sleep(Duration::from_millis(1));
            // Idle: check for topology changes.
            let fresh = topology();
            if fresh.map.epoch != built_epoch {
                topo = fresh;
            }
        } else {
            // Busy: still poll the epoch occasionally (cheap).
            let fresh = topology();
            if fresh.map.epoch != built_epoch {
                topo = fresh;
            }
        }
    }
}
