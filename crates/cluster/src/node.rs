//! A cluster node: the per-server container of services (§4.3).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use cbs_common::sync::{rank, OrderedMutex, OrderedRwLock};
use cbs_common::{Error, NodeId, Result};
use cbs_index::IndexManager;
use cbs_kv::{DataEngine, EngineConfig, FlusherHandle};
use cbs_views::ViewEngine;

use crate::config::{ClusterConfig, ServiceSet};

/// Bucket → engine map plus in-flight creation reservations. Both live
/// under one lock so "already exists" covers buckets still being built
/// without holding the lock across engine construction (file I/O).
#[derive(Default)]
struct EngineMap {
    ready: HashMap<String, Arc<DataEngine>>,
    creating: HashSet<String>,
}

/// One simulated server.
///
/// "The nodes in a Couchbase Server cluster can all look the same, or
/// various subsets of the cluster nodes can be configured to run a
/// particular (sub)set of services" (§4.3).
pub struct Node {
    id: NodeId,
    services: ServiceSet,
    alive: AtomicBool,
    /// Per-bucket data engines (data service only). Rank `NODE_ENGINES`:
    /// top of the global order — engine calls under a read guard descend
    /// into every KV/storage rank.
    engines: OrderedRwLock<EngineMap>,
    /// Per-bucket view engines (co-located with data, §3.3.1).
    view_engines: OrderedRwLock<HashMap<String, Arc<ViewEngine>>>,
    /// Flusher threads, one per bucket.
    flushers: OrderedMutex<Vec<FlusherHandle>>,
    /// GSI manager (index service only).
    index_mgr: Option<Arc<IndexManager>>,
    /// Causal trace sink on this node's lane (`n<id>`), handed to every
    /// engine built here so spans stitch across nodes (DESIGN.md §17).
    trace: Option<cbs_obs::TraceSink>,
    cfg: ClusterConfig,
}

impl Node {
    /// Create a node with the given service set.
    pub fn new(id: NodeId, services: ServiceSet, cfg: &ClusterConfig) -> Node {
        let index_mgr = services.index.then(|| {
            Arc::new(IndexManager::new(
                cfg.num_vbuckets,
                cfg.data_root.join(format!("node{}", id.0)).join("gsi"),
            ))
        });
        Node {
            id,
            services,
            alive: AtomicBool::new(true),
            engines: OrderedRwLock::new(rank::NODE_ENGINES, EngineMap::default()),
            view_engines: OrderedRwLock::new(rank::NODE_VIEW_ENGINES, HashMap::new()),
            flushers: OrderedMutex::new(rank::NODE_FLUSHERS, Vec::new()),
            index_mgr,
            trace: None,
            cfg: cfg.clone(),
        }
    }

    /// Attach a causal trace store; engines created afterwards record
    /// their spans on this node's `n<id>` lane.
    pub fn with_trace_store(mut self, store: &Arc<cbs_obs::TraceStore>) -> Node {
        self.trace = Some(cbs_obs::TraceSink::new(Arc::clone(store), &format!("n{}", self.id.0)));
        self
    }

    /// This node's causal trace sink, if tracing is enabled.
    pub fn trace_sink(&self) -> Option<&cbs_obs::TraceSink> {
        self.trace.as_ref()
    }

    /// Node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Services this node runs.
    pub fn services(&self) -> ServiceSet {
        self.services
    }

    /// Liveness check (heartbeat target). A dead node fails every call.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Failure injection: crash the node.
    pub fn kill(&self) {
        self.alive.store(false, Ordering::SeqCst);
    }

    /// Bring a crashed node back (it rejoins with no active vBuckets; a
    /// rebalance re-integrates it).
    pub fn revive(&self) {
        self.alive.store(true, Ordering::SeqCst);
    }

    fn check_alive(&self) -> Result<()> {
        if self.is_alive() {
            Ok(())
        } else {
            Err(Error::NodeDown(self.id))
        }
    }

    /// Create this node's slice of a bucket (data-service nodes only).
    ///
    /// Engine construction opens data files and spawns the flusher thread;
    /// none of that happens under the engine-map lock. The map is write-
    /// locked twice — once to reserve the name (so a concurrent creator of
    /// the same bucket errors instead of racing on the data directory) and
    /// once to publish the finished engine.
    pub fn create_bucket(&self, bucket: &str) -> Result<()> {
        if !self.services.data {
            return Ok(());
        }
        {
            let mut map = self.engines.write();
            if map.ready.contains_key(bucket) || !map.creating.insert(bucket.to_string()) {
                return Err(Error::Cluster(format!(
                    "bucket {bucket} already exists on {:?}",
                    self.id
                )));
            }
        }
        let built = DataEngine::new(EngineConfig {
            num_vbuckets: self.cfg.num_vbuckets,
            cache_quota: self.cfg.cache_quota,
            eviction: self.cfg.eviction,
            data_dir: self.cfg.data_root.join(format!("node{}", self.id.0)).join(bucket),
            fragmentation_threshold: self.cfg.fragmentation_threshold,
            lock_timeout: std::time::Duration::from_secs(15),
            flusher_shards: self.cfg.flusher_shards,
            trace: self.trace.clone(),
        })
        .and_then(|engine| {
            let flusher = FlusherHandle::spawn(Arc::clone(&engine), self.cfg.flush_interval)?;
            Ok((engine, flusher))
        });
        let (engine, flusher) = match built {
            Ok(v) => v,
            Err(e) => {
                self.engines.write().creating.remove(bucket);
                return Err(e);
            }
        };
        let view = Arc::new(ViewEngine::new(Arc::clone(&engine)));
        self.flushers.lock().push(flusher);
        self.view_engines.write().insert(bucket.to_string(), view);
        let mut map = self.engines.write();
        map.creating.remove(bucket);
        map.ready.insert(bucket.to_string(), engine);
        Ok(())
    }

    /// The data engine for a bucket; fails if the node is down or doesn't
    /// run the data service.
    pub fn engine(&self, bucket: &str) -> Result<Arc<DataEngine>> {
        self.check_alive()?;
        self.engines
            .read()
            .ready
            .get(bucket)
            .cloned()
            .ok_or_else(|| Error::Cluster(format!("no data service for {bucket} on {:?}", self.id)))
    }

    /// Like [`Node::engine`] but ignoring liveness — used only by recovery
    /// paths that inspect a dead node's durable state.
    pub fn engine_unchecked(&self, bucket: &str) -> Option<Arc<DataEngine>> {
        self.engines.read().ready.get(bucket).cloned()
    }

    /// The view engine for a bucket.
    pub fn view_engine(&self, bucket: &str) -> Result<Arc<ViewEngine>> {
        self.check_alive()?;
        self.view_engines
            .read()
            .get(bucket)
            .cloned()
            .ok_or_else(|| Error::Cluster(format!("no view engine for {bucket} on {:?}", self.id)))
    }

    /// The GSI manager (index-service nodes).
    pub fn index_manager(&self) -> Result<Arc<IndexManager>> {
        self.check_alive()?;
        self.index_mgr
            .clone()
            .ok_or_else(|| Error::Cluster(format!("{:?} does not run the index service", self.id)))
    }

    /// Buckets hosted here.
    pub fn buckets(&self) -> Vec<String> {
        let mut v: Vec<String> = self.engines.read().ready.keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_lifecycle() {
        let cfg = ClusterConfig::for_test(16, 1);
        let node = Node::new(NodeId(0), ServiceSet::all(), &cfg);
        node.create_bucket("default").unwrap();
        assert!(node.create_bucket("default").is_err());
        assert!(node.engine("default").is_ok());
        assert!(node.view_engine("default").is_ok());
        assert!(node.index_manager().is_ok());
        assert_eq!(node.buckets(), vec!["default"]);

        node.kill();
        assert!(matches!(node.engine("default"), Err(Error::NodeDown(_))));
        assert!(node.engine_unchecked("default").is_some());
        node.revive();
        assert!(node.engine("default").is_ok());
    }

    #[test]
    fn service_gating() {
        let cfg = ClusterConfig::for_test(16, 1);
        let query_node = Node::new(NodeId(1), ServiceSet::query_only(), &cfg);
        query_node.create_bucket("b").unwrap(); // no-op without data service
        assert!(query_node.engine("b").is_err());
        assert!(query_node.index_manager().is_err());

        let index_node = Node::new(NodeId(2), ServiceSet::index_only(), &cfg);
        assert!(index_node.index_manager().is_ok());
        assert!(index_node.engine("b").is_err());
    }
}
