//! Cluster-wide transaction log: the row source behind the
//! `system:transactions` catalog.
//!
//! The transaction coordinator (`cbs-txn`) records one row per finished
//! transaction — committed or aborted — into this bounded ring. Like the
//! query-service request log it is shared across nodes (in-process the
//! coordinator is a client-side library, so "cluster-wide" means one ring
//! per [`crate::Cluster`]), and it is read lock-free of everything else:
//! the ring's own leaf lock is the only one taken.

use std::sync::atomic::{AtomicU64, Ordering};

use cbs_common::sync::{rank, OrderedMutex};
use cbs_json::Value;

/// Terminal state of a logged transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// Validated and drained to the engine through the CAS path.
    Committed,
    /// The user closure returned an error; no writes became visible.
    Aborted,
}

impl TxnState {
    fn name(self) -> &'static str {
        match self {
            TxnState::Committed => "committed",
            TxnState::Aborted => "aborted",
        }
    }
}

/// One finished transaction.
#[derive(Debug, Clone)]
pub struct TxnLogRow {
    /// Cluster-wide monotonic transaction id.
    pub id: u64,
    /// Batch the transaction executed in.
    pub batch: u64,
    /// Index of the transaction inside its batch (= serial commit order).
    pub index: usize,
    /// Bucket the transaction ran against.
    pub bucket: String,
    /// Terminal state.
    pub state: TxnState,
    /// Keys read (validated read-set size).
    pub reads: usize,
    /// Keys written (upserts + removes that drained to the engine; 0 for
    /// aborts).
    pub writes: usize,
    /// Incarnations executed (1 = no conflict; each re-execution adds 1).
    pub incarnations: u32,
}

impl TxnLogRow {
    /// The catalog document for this row.
    pub fn to_value(&self) -> Value {
        Value::object([
            ("id", Value::from(self.id)),
            ("batch", Value::from(self.batch)),
            ("index", Value::from(self.index)),
            ("bucket", Value::from(self.bucket.as_str())),
            ("state", Value::from(self.state.name())),
            ("reads", Value::from(self.reads)),
            ("writes", Value::from(self.writes)),
            ("incarnations", Value::from(u64::from(self.incarnations))),
        ])
    }
}

/// Bounded ring of finished transactions plus running totals.
#[derive(Debug)]
pub struct TxnLog {
    rows: OrderedMutex<Vec<TxnLogRow>>,
    capacity: usize,
    next_id: AtomicU64,
    next_batch: AtomicU64,
    commits: AtomicU64,
    aborts: AtomicU64,
    re_executions: AtomicU64,
}

impl Default for TxnLog {
    fn default() -> TxnLog {
        TxnLog::new(256)
    }
}

impl TxnLog {
    /// A log retaining the most recent `capacity` rows.
    pub fn new(capacity: usize) -> TxnLog {
        TxnLog {
            rows: OrderedMutex::new(rank::TXN_LOG, Vec::new()),
            capacity: capacity.max(1),
            next_id: AtomicU64::new(1),
            next_batch: AtomicU64::new(1),
            commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
            re_executions: AtomicU64::new(0),
        }
    }

    /// Reserve a batch id for a new batch run.
    pub fn next_batch_id(&self) -> u64 {
        self.next_batch.fetch_add(1, Ordering::Relaxed)
    }

    /// Append one finished transaction (the log assigns its id).
    pub fn push(&self, mut row: TxnLogRow) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        row.id = id;
        match row.state {
            TxnState::Committed => self.commits.fetch_add(1, Ordering::Relaxed),
            TxnState::Aborted => self.aborts.fetch_add(1, Ordering::Relaxed),
        };
        self.re_executions
            .fetch_add(u64::from(row.incarnations.saturating_sub(1)), Ordering::Relaxed);
        let mut rows = self.rows.lock();
        if rows.len() == self.capacity {
            rows.remove(0);
        }
        rows.push(row);
        id
    }

    /// Committed transactions since startup.
    pub fn commits(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// Aborted transactions since startup.
    pub fn aborts(&self) -> u64 {
        self.aborts.load(Ordering::Relaxed)
    }

    /// Conflict re-executions since startup.
    pub fn re_executions(&self) -> u64 {
        self.re_executions.load(Ordering::Relaxed)
    }

    /// Snapshot of the retained rows, oldest first.
    pub fn rows(&self) -> Vec<TxnLogRow> {
        self.rows.lock().clone()
    }

    /// `system:transactions` rows: `(key, document)` pairs, oldest first.
    pub fn catalog_rows(&self) -> Vec<(String, Value)> {
        self.rows().iter().map(|r| (format!("txn{}", r.id), r.to_value())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(state: TxnState, incarnations: u32) -> TxnLogRow {
        TxnLogRow {
            id: 0,
            batch: 1,
            index: 0,
            bucket: "b".into(),
            state,
            reads: 2,
            writes: 1,
            incarnations,
        }
    }

    #[test]
    fn ring_caps_and_counts() {
        let log = TxnLog::new(2);
        log.push(row(TxnState::Committed, 1));
        log.push(row(TxnState::Committed, 3));
        log.push(row(TxnState::Aborted, 1));
        assert_eq!(log.commits(), 2);
        assert_eq!(log.aborts(), 1);
        assert_eq!(log.re_executions(), 2);
        let rows = log.rows();
        assert_eq!(rows.len(), 2, "ring dropped the oldest row");
        assert_eq!(rows[0].id, 2);
        assert_eq!(rows[1].id, 3);
    }

    #[test]
    fn catalog_rows_render() {
        let log = TxnLog::default();
        log.push(row(TxnState::Committed, 2));
        let rows = log.catalog_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, "txn1");
        let doc = &rows[0].1;
        assert_eq!(doc.get_field("state"), Some(&Value::from("committed")));
        assert_eq!(doc.get_field("incarnations"), Some(&Value::from(2u64)));
    }
}
