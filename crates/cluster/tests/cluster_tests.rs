//! Cluster-level integration tests: placement, replication, failover,
//! rebalance, durability, cluster-wide queries and views.

use std::sync::Arc;
use std::time::Duration;

use cbs_cluster::{Cluster, ClusterConfig, ClusterDatastore, Durability, ServiceSet, SmartClient};
use cbs_common::{NodeId, VbId};
use cbs_json::Value;
use cbs_n1ql::QueryOptions;
use cbs_views::{MapExpr, MapFn, Stale, ViewDef, ViewQuery};

fn small_cluster(nodes: usize, replicas: u8) -> Arc<Cluster> {
    let cluster = Cluster::homogeneous(nodes, ClusterConfig::for_test(64, replicas));
    cluster.create_bucket("default").unwrap();
    cluster
}

fn doc(v: i64) -> Value {
    Value::object([("v", Value::int(v))])
}

fn load_docs(client: &SmartClient, n: usize) {
    for i in 0..n {
        client.upsert(&format!("doc-{i}"), doc(i as i64)).unwrap();
    }
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = std::time::Instant::now() + timeout;
    while std::time::Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

#[test]
fn placement_spreads_data_across_nodes() {
    let cluster = small_cluster(4, 1);
    let client = SmartClient::connect(Arc::clone(&cluster), "default").unwrap();
    load_docs(&client, 200);
    // Every node should hold some active documents.
    for node in cluster.nodes() {
        let engine = node.engine("default").unwrap();
        let docs = engine.scan_active_docs().unwrap();
        assert!(!docs.is_empty(), "node {:?} owns no documents", node.id());
    }
    // And every doc reads back through the client.
    for i in 0..200 {
        assert_eq!(client.get(&format!("doc-{i}")).unwrap().value, doc(i));
    }
}

#[test]
fn replication_reaches_replicas() {
    let cluster = small_cluster(3, 1);
    let client = SmartClient::connect(Arc::clone(&cluster), "default").unwrap();
    let m = client.upsert("k1", doc(1)).unwrap();
    let map = cluster.map("default").unwrap();
    let replicas = map.replica_nodes(m.vb).to_vec();
    assert_eq!(replicas.len(), 1);
    let replica_engine = cluster.node(replicas[0]).unwrap().engine("default").unwrap();
    assert!(
        wait_until(Duration::from_secs(5), || replica_engine.high_seqno(m.vb) >= m.seqno),
        "replica must receive the mutation via DCP"
    );
}

#[test]
fn durability_replicate_and_persist() {
    let cluster = small_cluster(3, 1);
    let client = SmartClient::connect(Arc::clone(&cluster), "default").unwrap();
    client
        .upsert_durable(
            "important",
            doc(42),
            Durability { replicate_to: 1, persist_to_master: true },
            Duration::from_secs(10),
        )
        .unwrap();
    // Impossible requirement is rejected up front (§2.3.2).
    let err = client
        .upsert_durable(
            "x",
            doc(0),
            Durability { replicate_to: 3, persist_to_master: false },
            Duration::from_secs(1),
        )
        .unwrap_err();
    assert!(matches!(err, cbs_common::Error::DurabilityImpossible(_)));
}

#[test]
fn failover_promotes_replicas_and_client_recovers() {
    let cluster = small_cluster(3, 1);
    let client = SmartClient::connect(Arc::clone(&cluster), "default").unwrap();
    load_docs(&client, 120);
    // Let replication catch up (all vbs, all docs).
    std::thread::sleep(Duration::from_millis(200));

    let victim = NodeId(1);
    cluster.kill_node(victim).unwrap();
    // Failover refuses while... node is dead here, so it proceeds.
    let promoted = cluster.failover(victim).unwrap();
    assert!(promoted > 0, "the victim owned active vBuckets");
    assert_ne!(cluster.orchestrator(), Some(victim));

    // Every document is still readable (the client refreshes its stale map
    // and retries on VbucketNotActive/NodeDown).
    let mut missing = 0;
    for i in 0..120 {
        match client.get(&format!("doc-{i}")) {
            Ok(g) => assert_eq!(g.value, doc(i)),
            Err(_) => missing += 1,
        }
    }
    assert_eq!(missing, 0, "replica promotion must preserve all data");
    // Writes keep working too.
    client.upsert("after-failover", doc(1)).unwrap();
}

#[test]
fn failover_refuses_live_nodes() {
    let cluster = small_cluster(2, 1);
    assert!(cluster.failover(NodeId(0)).is_err(), "node is alive");
}

#[test]
fn rebalance_in_moves_data_to_new_node() {
    let cluster = small_cluster(2, 1);
    let client = SmartClient::connect(Arc::clone(&cluster), "default").unwrap();
    load_docs(&client, 150);

    let new_node = cluster.add_node(ServiceSet::all()).unwrap();
    cluster.rebalance(&[]).unwrap();

    // The new node owns roughly a third of the vBuckets.
    let map = cluster.map("default").unwrap();
    let owned = map.active_vbs(new_node).len();
    assert!(owned > 10, "new node owns {owned} vBuckets after rebalance");

    // All data is intact and reachable.
    for i in 0..150 {
        assert_eq!(client.get(&format!("doc-{i}")).unwrap().value, doc(i), "doc-{i}");
    }
    // And the new node actually serves some of it.
    let engine = cluster.node(new_node).unwrap().engine("default").unwrap();
    assert!(!engine.scan_active_docs().unwrap().is_empty());
}

#[test]
fn rebalance_out_empties_a_node() {
    let cluster = small_cluster(3, 1);
    let client = SmartClient::connect(Arc::clone(&cluster), "default").unwrap();
    load_docs(&client, 100);

    let leaving = NodeId(2);
    cluster.rebalance(&[leaving]).unwrap();
    let map = cluster.map("default").unwrap();
    assert!(map.active_vbs(leaving).is_empty());
    assert!(map.replica_vbs(leaving).is_empty());
    for i in 0..100 {
        assert_eq!(client.get(&format!("doc-{i}")).unwrap().value, doc(i));
    }
}

#[test]
fn writes_during_rebalance_survive() {
    let cluster = small_cluster(2, 0);
    let client = Arc::new(SmartClient::connect(Arc::clone(&cluster), "default").unwrap());
    load_docs(&client, 50);

    cluster.add_node(ServiceSet::all()).unwrap();
    let writer = {
        let client = Arc::clone(&client);
        std::thread::spawn(move || {
            for i in 50..250 {
                client.upsert(&format!("doc-{i}"), doc(i as i64)).unwrap();
            }
        })
    };
    cluster.rebalance(&[]).unwrap();
    writer.join().unwrap();
    for i in 0..250 {
        assert_eq!(client.get(&format!("doc-{i}")).unwrap().value, doc(i), "doc-{i}");
    }
}

#[test]
fn n1ql_over_cluster_with_gsi() {
    let cluster = small_cluster(3, 1);
    let client = SmartClient::connect(Arc::clone(&cluster), "default").unwrap();
    for i in 0..60 {
        client
            .upsert(
                &format!("user::{i}"),
                Value::object([
                    ("name", Value::from(format!("u{i:02}"))),
                    ("age", Value::int(18 + (i % 40))),
                ]),
            )
            .unwrap();
    }
    let ds = ClusterDatastore::new(Arc::clone(&cluster));
    ds.query("CREATE INDEX by_age ON default(age) USING GSI", &QueryOptions::default()).unwrap();

    // request_plus guarantees read-your-own-writes through the index.
    let opts = QueryOptions::default().request_plus();
    let res = ds.query("SELECT COUNT(*) AS n FROM default WHERE age >= 18", &opts).unwrap();
    assert_eq!(res.rows[0].get_field("n"), Some(&Value::int(60)));

    // A fresh write is visible immediately under request_plus.
    client.upsert("user::new", Value::object([("age", Value::int(99))])).unwrap();
    let res = ds.query("SELECT META().id AS id FROM default WHERE age = 99", &opts).unwrap();
    assert_eq!(res.rows.len(), 1);
    assert_eq!(res.rows[0].get_field("id"), Some(&Value::from("user::new")));
}

#[test]
fn n1ql_use_keys_without_any_index() {
    let cluster = small_cluster(2, 0);
    let client = SmartClient::connect(Arc::clone(&cluster), "default").unwrap();
    client.upsert("k", doc(7)).unwrap();
    let ds = ClusterDatastore::new(Arc::clone(&cluster));
    let res = ds.query("SELECT d.* FROM default d USE KEYS 'k'", &QueryOptions::default()).unwrap();
    assert_eq!(res.rows[0].get_field("v"), Some(&Value::int(7)));
}

#[test]
fn view_scatter_gather_across_nodes() {
    let cluster = small_cluster(3, 0);
    let client = SmartClient::connect(Arc::clone(&cluster), "default").unwrap();
    for i in 0..90 {
        client
            .upsert(
                &format!("p{i}"),
                Value::object([
                    ("name", Value::from(format!("name{i:02}"))),
                    ("age", Value::int(i % 9)),
                ]),
            )
            .unwrap();
    }
    cluster
        .create_design_doc(
            "default",
            cbs_views::DesignDoc {
                name: "dd".to_string(),
                views: vec![
                    ("by_name".to_string(), ViewDef { map: MapFn::on_field("name"), reduce: None }),
                    (
                        "age_sum".to_string(),
                        ViewDef {
                            map: MapFn {
                                when: vec![],
                                key: MapExpr::field("name"),
                                value: Some(MapExpr::field("age")),
                            },
                            reduce: Some(cbs_views::Reducer::Sum),
                        },
                    ),
                ],
            },
        )
        .unwrap();

    // stale=false row query merges results from all 3 nodes in key order.
    let q = ViewQuery { stale: Stale::False, ..Default::default() };
    let res = cluster.view_query("default", "dd", "by_name", &q).unwrap();
    assert_eq!(res.rows.len(), 90);
    let keys: Vec<&str> = res.rows.iter().map(|r| r.key.as_str().unwrap()).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "gathered rows are in global key order");

    // Reduced query re-reduces partial sums.
    let q = ViewQuery { stale: Stale::False, reduce: true, ..Default::default() };
    let res = cluster.view_query("default", "dd", "age_sum", &q).unwrap();
    let expected: i64 = (0..90).map(|i| i % 9).sum();
    assert_eq!(res.rows[0].value, Value::int(expected));
}

#[test]
fn mds_query_only_cluster_is_rejected_without_query_service() {
    // Data+index nodes but no query node: N1QL requests must be refused.
    let cluster = Cluster::with_services(
        vec![ServiceSet::data_only(), ServiceSet::index_only()],
        ClusterConfig::for_test(16, 0),
    );
    cluster.create_bucket("b").unwrap();
    let ds = ClusterDatastore::new(Arc::clone(&cluster));
    let err = ds.query("SELECT 1", &QueryOptions::default()).unwrap_err();
    assert!(err.to_string().contains("no query service"));
}

#[test]
fn mds_separated_services_work_together() {
    // The §4.4 topology: data nodes, an index node, a query node.
    let cluster = Cluster::with_services(
        vec![
            ServiceSet::data_only(),
            ServiceSet::data_only(),
            ServiceSet::index_only(),
            ServiceSet::query_only(),
        ],
        ClusterConfig::for_test(32, 0),
    );
    cluster.create_bucket("b").unwrap();
    let client = SmartClient::connect(Arc::clone(&cluster), "b").unwrap();
    for i in 0..30 {
        client.upsert(&format!("d{i}"), Value::object([("n", Value::int(i))])).unwrap();
    }
    let ds = ClusterDatastore::new(Arc::clone(&cluster));
    ds.query("CREATE INDEX n_idx ON b(n)", &QueryOptions::default()).unwrap();
    let res = ds
        .query("SELECT COUNT(*) AS c FROM b WHERE n >= 10", &QueryOptions::default().request_plus())
        .unwrap();
    assert_eq!(res.rows[0].get_field("c"), Some(&Value::int(20)));
    // The data map never references the index/query nodes.
    let map = cluster.map("b").unwrap();
    assert!(map.active_vbs(NodeId(2)).is_empty());
    assert!(map.active_vbs(NodeId(3)).is_empty());
}

#[test]
fn orchestrator_election() {
    let cluster = small_cluster(3, 1);
    assert_eq!(cluster.orchestrator(), Some(NodeId(0)));
    cluster.kill_node(NodeId(0)).unwrap();
    assert_eq!(cluster.orchestrator(), Some(NodeId(1)), "re-elected immediately");
    cluster.node(NodeId(0)).unwrap().revive();
    assert_eq!(cluster.orchestrator(), Some(NodeId(0)));
}

#[test]
fn view_results_consistent_during_vbucket_deactivation() {
    // §4.3.3: view queries must not double-count or leak moved partitions.
    let cluster = small_cluster(2, 0);
    let client = SmartClient::connect(Arc::clone(&cluster), "default").unwrap();
    for i in 0..80 {
        client
            .upsert(&format!("p{i}"), Value::object([("name", Value::from(format!("n{i}")))]))
            .unwrap();
    }
    cluster
        .create_design_doc(
            "default",
            cbs_views::DesignDoc {
                name: "dd".to_string(),
                views: vec![(
                    "v".to_string(),
                    ViewDef { map: MapFn::on_field("name"), reduce: None },
                )],
            },
        )
        .unwrap();
    let q = ViewQuery { stale: Stale::False, ..Default::default() };
    let before = cluster.view_query("default", "dd", "v", &q).unwrap().rows.len();
    assert_eq!(before, 80);
    // Simulate a partition hand-off mid-flight: deactivate one vBucket on
    // its owner; the row count drops by exactly that vBucket's rows and
    // nothing is double-counted.
    let map = cluster.map("default").unwrap();
    let vb = VbId(0);
    let owner = cluster.node(map.active_node(vb)).unwrap();
    let engine = owner.engine("default").unwrap();
    let owned_docs = engine
        .scan_active_docs()
        .unwrap()
        .into_iter()
        .filter(|d| engine.vb_for_key(&d.id) == vb)
        .count();
    engine.set_vb_state(vb, cbs_kv::VbState::Dead);
    let q2 = ViewQuery { stale: Stale::Ok, ..Default::default() };
    let after = cluster.view_query("default", "dd", "v", &q2).unwrap().rows.len();
    assert_eq!(after, before - owned_docs);
}

#[test]
fn cas_still_safe_through_client() {
    let cluster = small_cluster(2, 0);
    let client = SmartClient::connect(Arc::clone(&cluster), "default").unwrap();
    client.upsert("k", doc(1)).unwrap();
    let read = client.get("k").unwrap();
    client.upsert("k", doc(2)).unwrap(); // interloper
    let err = client.upsert_with_cas("k", doc(3), read.meta.cas).unwrap_err();
    assert!(matches!(err, cbs_common::Error::CasMismatch(_)));
    // GETL through the client.
    let locked = client.get_and_lock("k", Duration::from_secs(2)).unwrap();
    assert!(matches!(client.upsert("k", doc(9)), Err(cbs_common::Error::Locked(_))));
    client.unlock("k", locked.meta.cas).unwrap();
    client.upsert("k", doc(9)).unwrap();
    assert_eq!(client.get("k").unwrap().value, doc(9));
}

#[test]
fn client_map_refresh_on_topology_change() {
    let cluster = small_cluster(2, 1);
    let client = SmartClient::connect(Arc::clone(&cluster), "default").unwrap();
    load_docs(&client, 20);
    let epoch_before = client.cached_epoch();
    cluster.add_node(ServiceSet::all()).unwrap();
    cluster.rebalance(&[]).unwrap();
    // Client still works; its cached epoch catches up lazily via retries.
    for i in 0..20 {
        assert_eq!(client.get(&format!("doc-{i}")).unwrap().value, doc(i));
    }
    assert!(cluster.map("default").unwrap().epoch > epoch_before);
}

#[test]
fn auto_failover_detects_and_promotes() {
    let cluster = small_cluster(3, 1);
    let client = SmartClient::connect(Arc::clone(&cluster), "default").unwrap();
    load_docs(&client, 60);
    std::thread::sleep(Duration::from_millis(150)); // replication catch-up

    let _monitor = cluster.spawn_auto_failover(Duration::from_millis(10));
    cluster.kill_node(NodeId(2)).unwrap();
    // No manual failover call: the monitor must notice and promote.
    // (Generous timeout: CI hosts may be heavily oversubscribed.)
    assert!(
        wait_until(Duration::from_secs(60), || {
            cluster.map("default").unwrap().active_vbs(NodeId(2)).is_empty()
        }),
        "auto-failover must strip the dead node from the map"
    );
    for i in 0..60 {
        assert_eq!(client.get(&format!("doc-{i}")).unwrap().value, doc(i));
    }
    // Revived node can be failed over again later if it dies again.
    cluster.node(NodeId(2)).unwrap().revive();
    cluster.rebalance(&[]).unwrap();
    cluster.kill_node(NodeId(2)).unwrap();
    assert!(wait_until(Duration::from_secs(60), || {
        cluster.map("default").unwrap().active_vbs(NodeId(2)).is_empty()
    }));
}
