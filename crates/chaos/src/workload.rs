//! The chaos harness driver: seeded workloads against a faulted cluster,
//! with a topology-event coordinator, a heal phase, and shrinking.
//!
//! Everything a run does derives from `ChaosConfig` — and everything in
//! `ChaosConfig` round-trips through environment variables — so any
//! failure reduces to one replay command (printed by [`expect_clean`]).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cbs_cluster::{Cluster, ClusterConfig, Durability, ServiceSet, SmartClient};
use cbs_common::{Cas, Error, NodeId, VbId};
use cbs_json::Value;
use cbs_kv::VbState;

use crate::checker::{check_cluster, check_history, Violation};
use crate::history::{Ack, HistoryRecorder, OpKind};
use crate::mix_all;
use crate::plan::{FaultPlan, FaultSpec};

/// Bucket every chaos run uses.
pub const BUCKET: &str = "chaos";

pub(crate) const WORKLOAD_SALT: u64 = 0x776f_726b; // "work"
pub(crate) const KILL_SALT: u64 = 0x6b69_6c6c; // "kill"

/// Named fault-intensity profile (replayable by name).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// No transport faults.
    Quiet,
    /// Drops + delays + duplicates + client stalls.
    Lossy,
    /// Delays + duplicates only (reordering without stream resets).
    Jittery,
}

impl Profile {
    /// Build the concrete spec for a seed.
    pub fn spec(self, seed: u64) -> FaultSpec {
        match self {
            Profile::Quiet => FaultSpec::quiet(seed),
            Profile::Lossy => FaultSpec::lossy(seed),
            Profile::Jittery => FaultSpec::jittery(seed),
        }
    }

    /// Stable name for replay commands.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Quiet => "quiet",
            Profile::Lossy => "lossy",
            Profile::Jittery => "jittery",
        }
    }

    /// Parse a replay name.
    pub fn by_name(name: &str) -> Option<Profile> {
        match name {
            "quiet" => Some(Profile::Quiet),
            "lossy" => Some(Profile::Lossy),
            "jittery" => Some(Profile::Jittery),
            _ => None,
        }
    }
}

/// A topology fault the coordinator fires mid-workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoKind {
    /// Crash one deterministically-chosen node (skipped if a node is
    /// already down or fewer than three data nodes remain).
    Kill,
    /// Fail over every currently-dead node (lossy: may roll back acked
    /// non-durable writes).
    FailoverDead,
    /// Revive every dead node through the rejoin protocol (a failed-over
    /// node comes back empty for vBuckets it no longer owns, §4.3.1).
    ReviveAll,
    /// Add a fresh node running all services.
    AddNode,
    /// Rebalance to the balanced layout; `background` runs it on its own
    /// thread so later events (e.g. a kill) land mid-rebalance.
    Rebalance {
        /// Run concurrently with the workload instead of blocking the
        /// coordinator.
        background: bool,
    },
}

/// One scheduled event: fires once the workload has issued `at` ops.
#[derive(Debug, Clone, Copy)]
pub struct TopoEvent {
    /// Operation-count threshold.
    pub at: usize,
    /// What to do.
    pub kind: TopoKind,
}

/// A named, replayable sequence of topology events.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Stable name (used in replay commands).
    pub name: String,
    /// Events in firing order.
    pub events: Vec<TopoEvent>,
}

impl Schedule {
    fn from_percents(name: &str, ops: usize, spec: &[(usize, TopoKind)]) -> Schedule {
        Schedule {
            name: name.to_string(),
            events: spec
                .iter()
                .map(|&(pct, kind)| TopoEvent { at: ops * pct / 100, kind })
                .collect(),
        }
    }

    /// Resolve a schedule by name. `seed` only matters for `"seeded"`,
    /// which derives a jittered template choice from it.
    pub fn by_name(name: &str, seed: u64, ops: usize) -> Schedule {
        use TopoKind::*;
        match name {
            "baseline" => Schedule { name: name.to_string(), events: Vec::new() },
            "drop-delay-failover" => Schedule::from_percents(
                name,
                ops,
                &[
                    (25, Kill),
                    (35, FailoverDead),
                    (55, ReviveAll),
                    (70, Rebalance { background: false }),
                ],
            ),
            "crash-during-rebalance" => Schedule::from_percents(
                name,
                ops,
                &[
                    (10, AddNode),
                    (20, Rebalance { background: true }),
                    (25, Kill),
                    (40, FailoverDead),
                    (60, ReviveAll),
                    (75, Rebalance { background: false }),
                ],
            ),
            "kill-revive-storm" => Schedule::from_percents(
                name,
                ops,
                &[
                    (15, Kill),
                    (25, FailoverDead),
                    (35, ReviveAll),
                    (45, Rebalance { background: false }),
                    (55, Kill),
                    (65, FailoverDead),
                    (75, ReviveAll),
                    (85, Rebalance { background: false }),
                ],
            ),
            "rebalance-churn" => Schedule::from_percents(
                name,
                ops,
                &[
                    (15, AddNode),
                    (25, Rebalance { background: false }),
                    (45, AddNode),
                    (55, Rebalance { background: false }),
                    (75, Rebalance { background: true }),
                ],
            ),
            "failover-no-revive" => {
                Schedule::from_percents(name, ops, &[(30, Kill), (40, FailoverDead)])
            }
            // Seeded: pick a non-trivial template and jitter every
            // threshold by ±8% — distinct seeds explore distinct timings.
            "seeded" => {
                let templates = [
                    "drop-delay-failover",
                    "crash-during-rebalance",
                    "kill-revive-storm",
                    "rebalance-churn",
                ];
                let pick = templates[(mix_all(&[seed, 0x7363]) % templates.len() as u64) as usize];
                let mut base = Schedule::by_name(pick, seed, ops);
                base.name = "seeded".to_string();
                for (i, ev) in base.events.iter_mut().enumerate() {
                    let jitter = (mix_all(&[seed, 0x6a74, i as u64]) % (ops as u64 * 16 / 100))
                        as i64
                        - (ops as i64 * 8 / 100);
                    ev.at = (ev.at as i64 + jitter).clamp(1, ops as i64 - 1) as usize;
                }
                base.events.sort_by_key(|e| e.at);
                base
            }
            other => panic!("unknown chaos schedule {other:?}"),
        }
    }
}

/// Full description of one chaos run. Every field round-trips through the
/// `CHAOS_*` environment (see [`ChaosConfig::from_env`]) so a printed
/// replay command reconstructs the run exactly.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for fault decisions, workload mix and victim selection.
    pub seed: u64,
    /// Initial node count (3–4 in the integration suites).
    pub nodes: usize,
    /// Replica copies per vBucket.
    pub replicas: u8,
    /// vBuckets per bucket.
    pub vbuckets: u16,
    /// Concurrent workload workers (each owns a disjoint key set).
    pub workers: usize,
    /// Keys per worker.
    pub keys_per_worker: usize,
    /// Total operations across all workers.
    pub ops: usize,
    /// Transport fault intensity.
    pub profile: Profile,
    /// Topology event schedule name (resolved via [`Schedule::by_name`]).
    pub schedule: String,
    /// Override the per-node cache quota (tiny values force eviction) and
    /// switch to full eviction.
    pub cache_quota: Option<usize>,
    /// Run a flush/compaction loop on every engine during the workload.
    pub compact_during: bool,
    /// How long the convergence checker may wait after the heal phase.
    pub settle: Duration,
}

impl ChaosConfig {
    /// Baseline 3-node config for a seed.
    pub fn new(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            nodes: 3,
            replicas: 1,
            vbuckets: 16,
            workers: 4,
            keys_per_worker: 6,
            ops: 400,
            profile: Profile::Lossy,
            schedule: "drop-delay-failover".to_string(),
            cache_quota: None,
            compact_during: false,
            settle: Duration::from_secs(10),
        }
    }

    /// Apply `CHAOS_*` environment overrides (replay + CI knobs):
    /// `CHAOS_SEED`, `CHAOS_OPS`, `CHAOS_NODES`, `CHAOS_REPLICAS`,
    /// `CHAOS_VBS`, `CHAOS_WORKERS`, `CHAOS_KEYS`, `CHAOS_PROFILE`,
    /// `CHAOS_SCHEDULE`, `CHAOS_QUOTA`, `CHAOS_COMPACT`.
    pub fn from_env(mut self) -> ChaosConfig {
        fn num<T: std::str::FromStr>(var: &str) -> Option<T> {
            std::env::var(var).ok().and_then(|v| v.parse().ok())
        }
        if let Some(v) = num("CHAOS_SEED") {
            self.seed = v;
        }
        if let Some(v) = num("CHAOS_OPS") {
            self.ops = v;
        }
        if let Some(v) = num("CHAOS_NODES") {
            self.nodes = v;
        }
        if let Some(v) = num("CHAOS_REPLICAS") {
            self.replicas = v;
        }
        if let Some(v) = num("CHAOS_VBS") {
            self.vbuckets = v;
        }
        if let Some(v) = num("CHAOS_WORKERS") {
            self.workers = v;
        }
        if let Some(v) = num("CHAOS_KEYS") {
            self.keys_per_worker = v;
        }
        if let Some(p) = std::env::var("CHAOS_PROFILE").ok().and_then(|v| Profile::by_name(&v)) {
            self.profile = p;
        }
        if let Ok(s) = std::env::var("CHAOS_SCHEDULE") {
            self.schedule = s;
        }
        if let Some(q) = num("CHAOS_QUOTA") {
            self.cache_quota = Some(q);
        }
        if std::env::var("CHAOS_COMPACT").is_ok() {
            self.compact_during = true;
        }
        self
    }

    /// The one-line command that replays this exact run.
    pub fn replay_command(&self) -> String {
        let mut cmd = format!(
            "CHAOS_SEED={} CHAOS_OPS={} CHAOS_NODES={} CHAOS_REPLICAS={} CHAOS_VBS={} \
             CHAOS_WORKERS={} CHAOS_KEYS={} CHAOS_PROFILE={} CHAOS_SCHEDULE={}",
            self.seed,
            self.ops,
            self.nodes,
            self.replicas,
            self.vbuckets,
            self.workers,
            self.keys_per_worker,
            self.profile.name(),
            self.schedule,
        );
        if let Some(q) = self.cache_quota {
            cmd.push_str(&format!(" CHAOS_QUOTA={q}"));
        }
        if self.compact_during {
            cmd.push_str(" CHAOS_COMPACT=1");
        }
        cmd.push_str(" cargo test -p cbs-chaos --test replay -- --ignored --nocapture");
        cmd
    }
}

/// Result of one chaos run.
#[derive(Debug)]
pub struct ChaosOutcome {
    /// The seed that drove the run.
    pub seed: u64,
    /// Operations recorded in the history.
    pub ops_recorded: usize,
    /// Topology events that fired, in order.
    pub events: Vec<String>,
    /// Consistency violations (empty = the run passed).
    pub violations: Vec<Violation>,
    /// One-line replay command.
    pub replay: String,
}

impl ChaosOutcome {
    /// Pretty multi-line report (used in failure panics).
    pub fn report(&self) -> String {
        let mut s = format!(
            "chaos run seed={} recorded {} ops, {} topology events, {} violation(s)\n",
            self.seed,
            self.ops_recorded,
            self.events.len(),
            self.violations.len()
        );
        for e in &self.events {
            s.push_str(&format!("  event: {e}\n"));
        }
        for v in &self.violations {
            s.push_str(&format!("  VIOLATION {v}\n"));
        }
        s.push_str(&format!("replay: {}\n", self.replay));
        s
    }
}

fn classify_mutation_err(e: &Error) -> Ack {
    match e {
        // A timeout fires *after* the engine may have applied the
        // mutation (e.g. waiting on persistence) — outcome unknown.
        Error::Timeout(m) => Ack::Maybe(format!("timeout: {m}")),
        other => Ack::Failed(format!("{other}")),
    }
}

fn connect(cluster: &Arc<Cluster>) -> Option<SmartClient> {
    SmartClient::connect(Arc::clone(cluster), BUCKET).ok()
}

/// Run one seeded chaos workload end to end: build the cluster, run the
/// workers + coordinator, heal, then check history and live state.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosOutcome {
    let plan = FaultPlan::new(cfg.profile.spec(cfg.seed));
    let mut ccfg = ClusterConfig::for_chaos(cfg.vbuckets, cfg.replicas, plan.clone());
    if let Some(quota) = cfg.cache_quota {
        ccfg.cache_quota = quota;
        ccfg.eviction = cbs_cache::EvictionPolicy::Full;
    }
    let cluster = Cluster::homogeneous(cfg.nodes, ccfg);
    cluster.create_bucket(BUCKET).expect("create chaos bucket");

    let rec = Arc::new(HistoryRecorder::new());
    let ops_done = Arc::new(AtomicUsize::new(0));
    // Topology generation counter: bumped at the start AND end of every
    // topology event. Workers re-fetch their cluster map when it moves;
    // durable acks are only *trusted* by the checker when the whole
    // put+observe window saw a stable topology (see the worker loop).
    let gen = Arc::new(AtomicU64::new(0));
    let busy = Arc::new(AtomicU64::new(0));
    let stop_aux = Arc::new(AtomicBool::new(false));
    let compactions = Arc::new(AtomicU64::new(0));
    let schedule = Schedule::by_name(&cfg.schedule, cfg.seed, cfg.ops);

    std::thread::scope(|s| {
        let workers: Vec<_> = (0..cfg.workers)
            .map(|w| {
                let cluster = Arc::clone(&cluster);
                let rec = Arc::clone(&rec);
                let ops_done = Arc::clone(&ops_done);
                let gen = Arc::clone(&gen);
                let busy = Arc::clone(&busy);
                let cfg = cfg.clone();
                s.spawn(move || worker_loop(w, &cfg, &cluster, &rec, &ops_done, &gen, &busy))
            })
            .collect();

        let coordinator = {
            let cluster = Arc::clone(&cluster);
            let rec = Arc::clone(&rec);
            let ops_done = Arc::clone(&ops_done);
            let gen = Arc::clone(&gen);
            let busy = Arc::clone(&busy);
            let events = schedule.events.clone();
            let seed = cfg.seed;
            let total = cfg.ops;
            s.spawn(move || {
                coordinator_loop(&cluster, &rec, &ops_done, &gen, &busy, &events, seed, total)
            })
        };

        if cfg.compact_during {
            let cluster = Arc::clone(&cluster);
            let stop = Arc::clone(&stop_aux);
            let compactions = Arc::clone(&compactions);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for node in cluster.nodes() {
                        if let Some(engine) = node.engine_unchecked(BUCKET) {
                            let _ = engine.flush_once();
                            if let Ok(n) = engine.compact_if_needed() {
                                compactions.fetch_add(n as u64, Ordering::Relaxed);
                            }
                        }
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            });
        }

        for h in workers {
            let _ = h.join();
        }
        // Heal: no more faults, background rebalances finish quickly.
        plan.disarm();
        stop_aux.store(true, Ordering::Relaxed);
        let _ = coordinator.join();
    });

    heal(&cluster, &rec);

    // Storage-pressure summary (the eviction/compaction chaos test asserts
    // its faults actually exercised these paths).
    let mut evictions = 0u64;
    for node in cluster.nodes() {
        if let Some(engine) = node.engine_unchecked(BUCKET) {
            evictions += engine.cache_stats().evictions;
        }
    }
    rec.event(
        format!(
            "storage: evictions={evictions} compactions={}",
            compactions.load(Ordering::Relaxed)
        ),
        false,
    );

    let history = rec.finish();
    let mut violations = check_history(&history);
    violations.extend(check_cluster(&cluster, BUCKET, cfg.settle));
    let mut events: Vec<String> =
        history.events.iter().map(|e| format!("t={} {}", e.at, e.what)).collect();
    if !violations.is_empty() {
        // The checker found a bug: dump the black-box flight recorder so
        // every chaos repro doubles as a postmortem with a timeline.
        if let Some(path) = write_flight_dump(&cluster, cfg.seed) {
            events.push(format!("flight recorder dumped to {}", path.display()));
        }
    }
    ChaosOutcome {
        seed: cfg.seed,
        ops_recorded: history.len(),
        events,
        violations,
        replay: cfg.replay_command(),
    }
}

/// Render the cluster's flight recorder as a deterministic postmortem
/// dump. Events carry dense per-service sequence numbers and **no wall
/// clock**, so two runs that produce the same event sequence (e.g. the
/// same seed through a deterministic scenario) produce byte-identical
/// dumps — diffable across repro attempts.
pub fn flight_dump(cluster: &Arc<Cluster>, seed: u64) -> String {
    let mut out = format!("# chaos flight recorder · seed={seed}\n");
    for event in cluster.flight_events() {
        out.push_str(&event.render());
        out.push('\n');
    }
    out
}

/// Write [`flight_dump`] to `target/chaos_flight_<seed>.log`, returning
/// the path (or `None` if the filesystem refused).
pub fn write_flight_dump(cluster: &Arc<Cluster>, seed: u64) -> Option<std::path::PathBuf> {
    let dir = std::path::Path::new("target");
    std::fs::create_dir_all(dir).ok()?;
    let path = dir.join(format!("chaos_flight_{seed}.log"));
    std::fs::write(&path, flight_dump(cluster, seed)).ok()?;
    Some(path)
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    w: usize,
    cfg: &ChaosConfig,
    cluster: &Arc<Cluster>,
    rec: &HistoryRecorder,
    ops_done: &AtomicUsize,
    gen: &AtomicU64,
    busy: &AtomicU64,
) {
    let keys: Vec<String> = (0..cfg.keys_per_worker).map(|i| format!("w{w}k{i}")).collect();
    let mut client = connect(cluster);
    let mut last_gen = gen.load(Ordering::SeqCst);
    let observe_timeout = Duration::from_secs(3);
    let mut op_i: u64 = 0;
    loop {
        if ops_done.fetch_add(1, Ordering::SeqCst) >= cfg.ops {
            break;
        }
        // Re-fetch the cluster map after topology events (models the
        // map-update push real clients subscribe to).
        let g = gen.load(Ordering::SeqCst);
        if g != last_gen || client.is_none() {
            if let Some(fresh) = connect(cluster) {
                client = Some(fresh);
            }
            last_gen = g;
        }
        let Some(client) = client.as_ref() else { continue };

        let h = mix_all(&[cfg.seed, WORKLOAD_SALT, w as u64, op_i]);
        op_i += 1;
        let key = &keys[((h >> 32) as usize) % keys.len()];
        let value = ((w as i64 + 1) << 40) | (op_i as i64);
        let vb = client.vb_for_key(key).0;
        let roll = h % 100;
        // Stable-topology window for durability claims: if any topology
        // event overlaps this op, the observe may have judged replication
        // against a mid-transition replica set, so the ack is recorded
        // non-durable (the checker then won't hold the durable floor to
        // it).
        let gen0 = gen.load(Ordering::SeqCst);
        let busy0 = busy.load(Ordering::SeqCst);
        let invoked = rec.tick();

        if roll < 40 {
            // Plain upsert.
            match client.upsert(key, Value::int(value)) {
                Ok(m) => rec.record(
                    key,
                    OpKind::Put { value, durable: false },
                    invoked,
                    Ack::Ok { vb: m.vb.0, seqno: m.seqno.0, observed: Some(value) },
                ),
                Err(e) => rec.record(
                    key,
                    OpKind::Put { value, durable: false },
                    invoked,
                    classify_mutation_err(&e),
                ),
            }
        } else if roll < 50 {
            // CAS round-trip: read, then conditional write.
            match client.get(key) {
                Ok(r) => {
                    rec.record(
                        key,
                        OpKind::Get,
                        invoked,
                        Ack::Ok { vb, seqno: 0, observed: r.value.as_i64() },
                    );
                    let invoked2 = rec.tick();
                    match client.replace(key, Value::int(value), r.meta.cas) {
                        Ok(m) => rec.record(
                            key,
                            OpKind::Put { value, durable: false },
                            invoked2,
                            Ack::Ok { vb: m.vb.0, seqno: m.seqno.0, observed: Some(value) },
                        ),
                        Err(e) => rec.record(
                            key,
                            OpKind::Put { value, durable: false },
                            invoked2,
                            classify_mutation_err(&e),
                        ),
                    }
                }
                Err(Error::KeyNotFound(_)) => {
                    rec.record(key, OpKind::Get, invoked, Ack::Ok { vb, seqno: 0, observed: None });
                    let invoked2 = rec.tick();
                    match client.insert(key, Value::int(value)) {
                        Ok(m) => rec.record(
                            key,
                            OpKind::Put { value, durable: false },
                            invoked2,
                            Ack::Ok { vb: m.vb.0, seqno: m.seqno.0, observed: Some(value) },
                        ),
                        Err(e) => rec.record(
                            key,
                            OpKind::Put { value, durable: false },
                            invoked2,
                            classify_mutation_err(&e),
                        ),
                    }
                }
                Err(e) => {
                    rec.record(key, OpKind::Get, invoked, Ack::Failed(format!("{e}")));
                }
            }
        } else if roll < 65 {
            // Durable put: ack waits for replication to every replica
            // (and sometimes persistence on the active).
            let durability =
                Durability { replicate_to: cfg.replicas, persist_to_master: h & (1 << 7) != 0 };
            match client.upsert(key, Value::int(value)) {
                Ok(m) => {
                    let observed_ok = client.observe(key, m, durability, observe_timeout).is_ok();
                    let stable = busy0 == 0
                        && busy.load(Ordering::SeqCst) == 0
                        && gen.load(Ordering::SeqCst) == gen0;
                    rec.record(
                        key,
                        OpKind::Put { value, durable: observed_ok && stable },
                        invoked,
                        Ack::Ok { vb: m.vb.0, seqno: m.seqno.0, observed: Some(value) },
                    );
                }
                Err(e) => rec.record(
                    key,
                    OpKind::Put { value, durable: false },
                    invoked,
                    classify_mutation_err(&e),
                ),
            }
        } else if roll < 85 {
            // Read.
            match client.get(key) {
                Ok(r) => rec.record(
                    key,
                    OpKind::Get,
                    invoked,
                    Ack::Ok { vb, seqno: 0, observed: r.value.as_i64() },
                ),
                Err(Error::KeyNotFound(_)) => {
                    rec.record(key, OpKind::Get, invoked, Ack::Ok { vb, seqno: 0, observed: None })
                }
                Err(e) => rec.record(key, OpKind::Get, invoked, Ack::Failed(format!("{e}"))),
            }
        } else {
            // Delete.
            match client.remove(key, Cas::WILDCARD) {
                Ok(m) => rec.record(
                    key,
                    OpKind::Delete,
                    invoked,
                    Ack::Ok { vb: m.vb.0, seqno: m.seqno.0, observed: None },
                ),
                Err(e) => rec.record(key, OpKind::Delete, invoked, classify_mutation_err(&e)),
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn coordinator_loop(
    cluster: &Arc<Cluster>,
    rec: &Arc<HistoryRecorder>,
    ops_done: &AtomicUsize,
    gen: &Arc<AtomicU64>,
    busy: &Arc<AtomicU64>,
    events: &[TopoEvent],
    seed: u64,
    total: usize,
) {
    let mut bg: Vec<std::thread::JoinHandle<()>> = Vec::new();
    'events: for (i, ev) in events.iter().enumerate() {
        while ops_done.load(Ordering::SeqCst) < ev.at {
            if ops_done.load(Ordering::SeqCst) >= total {
                rec.event(format!("{:?} skipped (workload finished)", ev.kind), false);
                continue 'events;
            }
            std::thread::sleep(Duration::from_micros(300));
        }
        gen.fetch_add(1, Ordering::SeqCst);
        busy.fetch_add(1, Ordering::SeqCst);
        match ev.kind {
            TopoKind::Kill => {
                let alive: Vec<NodeId> = cluster
                    .nodes()
                    .iter()
                    .filter(|n| n.is_alive() && n.services().data)
                    .map(|n| n.id())
                    .collect();
                let any_dead = cluster.nodes().iter().any(|n| !n.is_alive());
                if any_dead || alive.len() < 3 {
                    rec.event("kill skipped (cluster already degraded)", false);
                } else {
                    let victim = alive
                        [(mix_all(&[seed, KILL_SALT, i as u64]) % alive.len() as u64) as usize];
                    if let Ok(node) = cluster.node(victim) {
                        node.kill();
                        rec.event(format!("kill node {}", victim.0), false);
                    }
                }
            }
            TopoKind::FailoverDead => {
                failover_dead(cluster, rec);
            }
            TopoKind::ReviveAll => {
                for node in cluster.nodes() {
                    if !node.is_alive() {
                        revive_clean(cluster, &node);
                        rec.event(format!("revive node {} (rejoin protocol)", node.id().0), false);
                    }
                }
            }
            TopoKind::AddNode => match cluster.add_node(ServiceSet::all()) {
                Ok(id) => rec.event(format!("add node {}", id.0), false),
                Err(e) => rec.event(format!("add node failed: {e}"), false),
            },
            TopoKind::Rebalance { background: false } => {
                let r = cluster.rebalance(&[]);
                rec.event(format!("rebalance: {}", outcome_str(&r)), false);
            }
            TopoKind::Rebalance { background: true } => {
                rec.event("rebalance (background) begin", false);
                let cluster = Arc::clone(cluster);
                let rec2 = Arc::clone(rec);
                let gen2 = Arc::clone(gen);
                let busy2 = Arc::clone(busy);
                busy2.fetch_add(1, Ordering::SeqCst);
                bg.push(std::thread::spawn(move || {
                    let r = cluster.rebalance(&[]);
                    rec2.event(format!("rebalance (background): {}", outcome_str(&r)), false);
                    busy2.fetch_sub(1, Ordering::SeqCst);
                    gen2.fetch_add(1, Ordering::SeqCst);
                }));
            }
        }
        busy.fetch_sub(1, Ordering::SeqCst);
        gen.fetch_add(1, Ordering::SeqCst);
    }
    for h in bg {
        let _ = h.join();
    }
}

fn outcome_str<T>(r: &Result<T, Error>) -> String {
    match r {
        Ok(_) => "ok".to_string(),
        Err(e) => format!("failed: {e}"),
    }
}

/// Fail over every dead node, bracketing each promotion with lossy event
/// marks (the rollback becomes visible at some point *during* the call,
/// and the checker's windows are conservative about exactly when).
fn failover_dead(cluster: &Arc<Cluster>, rec: &HistoryRecorder) {
    for node in cluster.nodes() {
        if !node.is_alive() {
            let id = node.id().0;
            rec.event(format!("failover node {id} begin"), true);
            let r = cluster.failover(node.id());
            rec.event(format!("failover node {id}: {}", outcome_str(&r)), true);
        }
    }
}

/// The rejoin protocol: a revived node keeps only the vBuckets the current
/// map still assigns to it. Stale `Active` copies from before the crash
/// would otherwise accept writes from stale-mapped clients (split-brain);
/// real Couchbase re-integrates failed-over nodes empty, via rebalance
/// (§4.3.1).
pub fn revive_clean(cluster: &Arc<Cluster>, node: &cbs_cluster::Node) {
    node.revive();
    let Ok(map) = cluster.map(BUCKET) else { return };
    let Ok(engine) = node.engine(BUCKET) else { return };
    let id = node.id();
    for v in 0..map.num_vbuckets() {
        let vb = VbId(v);
        let owned_active = map.active_node(vb) == id;
        let owned_replica = map.replica_nodes(vb).contains(&id);
        let state = engine.vb_state(vb);
        if owned_active {
            continue; // never failed over: its copy is still authoritative
        }
        if state == VbState::Active {
            // Failed over while down: this copy is no longer authoritative.
            let _ = engine.purge_vb(vb);
            if owned_replica {
                engine.set_vb_state(vb, VbState::Replica);
            }
        } else if !owned_replica && state != VbState::Dead {
            let _ = engine.purge_vb(vb);
        }
    }
}

/// Post-workload heal: fail over and cleanly revive every dead node, then
/// rebalance until the cluster accepts it (a rebalance can legitimately
/// fail if it raced the tail of the workload's topology events).
fn heal(cluster: &Arc<Cluster>, rec: &HistoryRecorder) {
    for _ in 0..5 {
        failover_dead(cluster, rec);
        for node in cluster.nodes() {
            if !node.is_alive() {
                revive_clean(cluster, &node);
                rec.event(format!("heal: revive node {}", node.id().0), false);
            }
        }
        match cluster.rebalance(&[]) {
            Ok(()) => {
                rec.event("heal: rebalance ok", false);
                return;
            }
            Err(e) => {
                rec.event(format!("heal: rebalance failed: {e}"), false);
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Shrink a failing config by halving the op count while the failure
/// reproduces; returns the smallest failing outcome found.
pub fn shrink(cfg: &ChaosConfig) -> (ChaosConfig, ChaosOutcome) {
    let mut best_cfg = cfg.clone();
    let mut best = run_chaos(cfg);
    if best.violations.is_empty() {
        return (best_cfg, best);
    }
    let mut ops = cfg.ops / 2;
    while ops >= 25 {
        let mut candidate = best_cfg.clone();
        candidate.ops = ops;
        let outcome = run_chaos(&candidate);
        if outcome.violations.is_empty() {
            break; // smaller run passes: keep the current minimum
        }
        best_cfg = candidate;
        best = outcome;
        ops /= 2;
    }
    (best_cfg, best)
}

/// Run a config and panic with a full report — seed, events, violations,
/// shrunk minimal case and a one-line replay command — if any consistency
/// rule fires.
pub fn expect_clean(cfg: &ChaosConfig) {
    let outcome = run_chaos(cfg);
    if outcome.violations.is_empty() {
        return;
    }
    let (shrunk_cfg, shrunk) = shrink(cfg);
    panic!(
        "chaos consistency failure (seed {}):\n{}\nshrunk to {} ops:\n{}\nREPLAY: {}",
        cfg.seed,
        outcome.report(),
        shrunk_cfg.ops,
        shrunk.report(),
        shrunk.replay,
    );
}
