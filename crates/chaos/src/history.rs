//! Operation history recording against a logical clock.
//!
//! Every client-visible KV operation is logged with an *invoked* and a
//! *completed* timestamp drawn from one atomic counter. The counter gives
//! a total order consistent with real time: if op A completed before op B
//! was invoked, then `A.completed < B.invoked` — which is exactly the
//! happens-before relation the checker's monotonicity and freshness rules
//! key off. Concurrent ops (overlapping windows) are never ordered against
//! each other.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// What an operation tried to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Write `value`; `durable` means the ack additionally waited for
    /// replication to every configured replica (observe-style, §2.3.2).
    Put {
        /// The written value (unique per op across the whole run).
        value: i64,
        /// Whether the ack covers replication to all replicas.
        durable: bool,
    },
    /// Read the key.
    Get,
    /// Delete the key.
    Delete,
}

/// How an operation ended, as seen by the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ack {
    /// Acknowledged success. For mutations, `seqno`/`vb` come from the
    /// `MutationResult` and `observed` echoes the written value (`None`
    /// for deletes). For gets, `observed` is the value read (`None` =
    /// key not found) and `seqno` is 0.
    Ok {
        /// vBucket the op executed in.
        vb: u16,
        /// Assigned seqno (mutations) or 0 (gets).
        seqno: u64,
        /// Written/observed value.
        observed: Option<i64>,
    },
    /// Definitely did not take effect (CAS mismatch, key-exists,
    /// not-found delete, routing gave up before reaching an engine).
    Failed(String),
    /// Unknown outcome: the mutation may or may not be visible later
    /// (e.g. applied on the active but the durability observe timed out).
    Maybe(String),
}

/// One recorded operation.
#[derive(Debug, Clone)]
pub struct OpRecord {
    /// Target key.
    pub key: String,
    /// Operation kind.
    pub kind: OpKind,
    /// Logical time the client issued the op.
    pub invoked: u64,
    /// Logical time the client got the response.
    pub completed: u64,
    /// Outcome.
    pub ack: Ack,
}

impl OpRecord {
    /// The post-state this op installs on its key if it took effect:
    /// `Some(value)` for puts, `None` for deletes. Gets return `None`
    /// (they install nothing).
    pub fn effect(&self) -> Option<Option<i64>> {
        match self.kind {
            OpKind::Put { value, .. } => Some(Some(value)),
            OpKind::Delete => Some(None),
            OpKind::Get => None,
        }
    }

    /// Whether the op is a mutation whose effect may be visible (acked or
    /// unknown-outcome).
    pub fn may_have_applied(&self) -> bool {
        self.effect().is_some() && !matches!(self.ack, Ack::Failed(_))
    }
}

/// Lifecycle event of one multi-document transaction, as recorded by the
/// transaction coordinator. Values are unique per transaction across a
/// run, so an observed value identifies the transaction that wrote it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnEventKind {
    /// The transaction entered the scheduler.
    Begin,
    /// The transaction validated **and its write set fully drained to the
    /// engine**: `writes` is the complete `(key, value)` set the commit
    /// made visible. Recorded only after the last drained mutation was
    /// acknowledged, so any later-invoked read must see every write (or a
    /// newer committed one).
    Commit {
        /// The full committed write set.
        writes: Vec<(String, i64)>,
    },
    /// The transaction aborted: `writes` are the values it staged, which
    /// must never be observed anywhere.
    Abort {
        /// The discarded staged write set.
        writes: Vec<(String, i64)>,
    },
}

/// One recorded transaction lifecycle event.
#[derive(Debug, Clone)]
pub struct TxnRecord {
    /// Run-unique transaction id.
    pub txn: u64,
    /// Logical time the event was recorded.
    pub at: u64,
    /// What happened.
    pub kind: TxnEventKind,
}

/// A multi-key atomic observation: the read set of one committed
/// read-only transaction. The fractured-read rule checks these against
/// committed transactions' write sets.
#[derive(Debug, Clone)]
pub struct SnapshotRecord {
    /// Logical time the snapshot transaction was issued.
    pub invoked: u64,
    /// Logical time its result was recorded.
    pub completed: u64,
    /// `(key, observed value)` pairs; `None` = key absent.
    pub observed: Vec<(String, Option<i64>)>,
}

/// A topology event that happened during the run.
#[derive(Debug, Clone)]
pub struct EventRecord {
    /// Logical time the event took effect.
    pub at: u64,
    /// Human-readable description (also used in replay output).
    pub what: String,
    /// Whether the event may legitimately roll back acked-but-not-durable
    /// writes (failover promotes a replica that can be missing the
    /// un-replicated tail, §4.3.1). The checker relaxes its freshness and
    /// monotonicity rules across lossy windows — but never the durable
    /// floor.
    pub lossy: bool,
}

/// Thread-safe recorder handed to every workload worker.
#[derive(Debug, Default)]
pub struct HistoryRecorder {
    clock: AtomicU64,
    ops: Mutex<Vec<OpRecord>>,
    events: Mutex<Vec<EventRecord>>,
    txns: Mutex<Vec<TxnRecord>>,
    snapshots: Mutex<Vec<SnapshotRecord>>,
}

impl HistoryRecorder {
    /// Fresh recorder with the clock at zero.
    pub fn new() -> HistoryRecorder {
        HistoryRecorder::default()
    }

    /// Advance the logical clock and return the new timestamp.
    pub fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Record a completed operation; `invoked` must come from an earlier
    /// [`tick`](HistoryRecorder::tick).
    pub fn record(&self, key: &str, kind: OpKind, invoked: u64, ack: Ack) {
        let completed = self.tick();
        self.ops.lock().push(OpRecord { key: key.to_string(), kind, invoked, completed, ack });
    }

    /// Record a topology event.
    pub fn event(&self, what: impl Into<String>, lossy: bool) {
        let at = self.tick();
        self.events.lock().push(EventRecord { at, what: what.into(), lossy });
    }

    /// Record a transaction lifecycle event; returns its logical time.
    pub fn txn_event(&self, txn: u64, kind: TxnEventKind) -> u64 {
        let at = self.tick();
        self.txns.lock().push(TxnRecord { txn, at, kind });
        at
    }

    /// Record a committed read-only snapshot transaction's observations;
    /// `invoked` must come from an earlier
    /// [`tick`](HistoryRecorder::tick).
    pub fn snapshot(&self, invoked: u64, observed: Vec<(String, Option<i64>)>) {
        let completed = self.tick();
        self.snapshots.lock().push(SnapshotRecord { invoked, completed, observed });
    }

    /// Freeze into an immutable [`History`].
    pub fn finish(&self) -> History {
        History {
            ops: self.ops.lock().clone(),
            events: self.events.lock().clone(),
            txns: self.txns.lock().clone(),
            snapshots: self.snapshots.lock().clone(),
        }
    }
}

/// An immutable, completed run history.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// All recorded operations (push order; per key this is program order
    /// because each key is owned by one sequential worker).
    pub ops: Vec<OpRecord>,
    /// All topology events.
    pub events: Vec<EventRecord>,
    /// All transaction lifecycle events (push order).
    pub txns: Vec<TxnRecord>,
    /// All committed read-only snapshot observations.
    pub snapshots: Vec<SnapshotRecord>,
}

impl History {
    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Logical times of lossy events, sorted.
    pub fn lossy_times(&self) -> Vec<u64> {
        let mut t: Vec<u64> = self.events.iter().filter(|e| e.lossy).map(|e| e.at).collect();
        t.sort_unstable();
        t
    }

    /// Whether any lossy event falls strictly inside `(after, before)`.
    pub fn lossy_within(&self, after: u64, before: u64) -> bool {
        self.events.iter().any(|e| e.lossy && e.at > after && e.at < before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_orders_ops() {
        let rec = HistoryRecorder::new();
        let t1 = rec.tick();
        rec.record(
            "k",
            OpKind::Put { value: 1, durable: false },
            t1,
            Ack::Ok { vb: 0, seqno: 1, observed: Some(1) },
        );
        let t2 = rec.tick();
        rec.record("k", OpKind::Get, t2, Ack::Ok { vb: 0, seqno: 0, observed: Some(1) });
        let h = rec.finish();
        assert_eq!(h.len(), 2);
        assert!(h.ops[0].completed < h.ops[1].invoked);
    }

    #[test]
    fn lossy_window_query() {
        let rec = HistoryRecorder::new();
        rec.event("warmup", false);
        rec.event("failover node 2", true);
        let h = rec.finish();
        let at = h.events[1].at;
        assert_eq!(h.lossy_times(), vec![at]);
        assert!(h.lossy_within(at - 1, at + 1));
        assert!(!h.lossy_within(at, at + 1), "window is exclusive");
    }

    #[test]
    fn effect_and_may_have_applied() {
        let put = OpRecord {
            key: "k".into(),
            kind: OpKind::Put { value: 9, durable: true },
            invoked: 1,
            completed: 2,
            ack: Ack::Maybe("observe timeout".into()),
        };
        assert_eq!(put.effect(), Some(Some(9)));
        assert!(put.may_have_applied());
        let failed = OpRecord { ack: Ack::Failed("cas".into()), ..put.clone() };
        assert!(!failed.may_have_applied());
        let get = OpRecord { kind: OpKind::Get, ..put };
        assert_eq!(get.effect(), None);
    }
}
