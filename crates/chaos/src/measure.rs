//! Chaos **measure mode**: how stale do reads actually get under faults?
//!
//! The checker ([`crate::check_history`]) answers a boolean question — is
//! the history *legal*? This module answers the quantitative one the
//! paper's asynchronous replication design (§4.1.1) raises: with a given
//! fault profile and topology schedule, what is the **probability of a
//! stale read**, and how stale are they — in logical time and in seqno
//! distance?
//!
//! The measurement runs the same seeded op mix as the live chaos workload
//! ([`crate::run_chaos`]'s worker loop) and replays the same seeded
//! [`FaultPlan`] delivery decisions and [`Schedule`] topology events, but
//! against a **single-threaded logical simulation** of the cluster. A live
//! multi-threaded run can never produce byte-identical numbers across
//! machines — thread interleaving moves the pump relative to the workload.
//! Here every delivery, failover and read happens at a deterministic
//! logical tick, so the same seed always yields the same
//! `BENCH_staleness_<profile>.json`, making staleness regressions
//! diffable exactly like fig15/fig16 throughput regressions.
//!
//! What the simulation keeps from the real cluster: per-vBucket seqno
//! assignment, per-replica in-order delivery with connection-reset drop
//! semantics (a dropped item blocks the tail of its queue, retried next
//! cycle with an incremented attempt — the same site identity the live
//! pump feeds the plan), failover promoting the most-caught-up live
//! replica and truncating the lost tail, and the rejoin/rebalance
//! protocols resetting copies. Wall-clock timing maps onto the logical
//! clock: a `Delay` decision holds the item (and, in-order, the tail
//! behind it) for extra ticks derived from the seeded delay span, so
//! jittery profiles measurably deepen replica lag. What it drops:
//! cross-worker thread interleaving (workers are round-robined).
//!
//! Every read is judged against the key's **most recently acked
//! mutation**: observing an older seqno is a stale read, aged both in
//! ticks since that ack and in seqno distance. Lost-but-acked writes that
//! a later ack supersedes stop counting — that is the checker's
//! (lost-write) territory, not staleness.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use cbs_cluster::{FaultAction, FaultInjector};
use cbs_common::{NodeId, SeqNo, VbId};
use cbs_obs::{Counter, Registry, WindowedHistogram};

use crate::history::{Ack, History, HistoryRecorder, OpKind};
use crate::mix_all;
use crate::plan::FaultPlan;
use crate::workload::{ChaosConfig, Schedule, TopoEvent, TopoKind, KILL_SALT, WORKLOAD_SALT};

/// Logical ticks (= workload ops) per staleness-age window. The windowed
/// `chaos.staleness.age_*` histograms rotate on this logical clock, so a
/// snapshot mid-run answers "how stale are reads *now*".
pub const TICKS_PER_WINDOW: u64 = 128;

/// In-flight replication latency in ticks: an item enqueued at tick `t`
/// is deliverable from `t + REPL_LATENCY_TICKS`. The live pump acks the
/// client from the active copy immediately while replica delivery rides a
/// separate ~1 ms cadence; without a modeled latency the sim's replicas
/// would be fresh at every instant and failover would never truncate
/// anything. A durability observe ([`Sim::observe`]) waits this latency
/// out, exactly like the blocking observe call in the live client.
const REPL_LATENCY_TICKS: u64 = 3;

/// One copy of a vBucket's data: `key → (value, seqno)`, `None` value =
/// tombstone (the seqno still orders it), plus the applied high seqno.
#[derive(Debug, Clone, Default)]
struct CopyState {
    docs: HashMap<String, (Option<i64>, u64)>,
    high: u64,
}

impl CopyState {
    fn apply(&mut self, key: &str, value: Option<i64>, seqno: u64) {
        if seqno > self.high {
            self.high = seqno;
            self.docs.insert(key.to_string(), (value, seqno));
        }
    }
}

/// An undelivered replication item for one replica (the site identity —
/// vb, seqno, node, attempt — is exactly what the live pump hashes).
#[derive(Debug)]
struct Delivery {
    key: String,
    value: Option<i64>,
    seqno: u64,
    attempt: u32,
    /// First tick the item can land on the replica (in-flight latency).
    ready_at: u64,
    /// A `Delay` fault already pushed `ready_at` once (the seeded decision
    /// is a pure hash of the site, so it must not re-fire every cycle).
    delayed: bool,
}

#[derive(Debug)]
struct ReplicaSim {
    node: u32,
    copy: CopyState,
    queue: VecDeque<Delivery>,
}

#[derive(Debug)]
struct VbSim {
    active_node: u32,
    active: CopyState,
    replicas: Vec<ReplicaSim>,
}

/// The key's most recently *acked* mutation (ack order, not seqno order:
/// a later ack supersedes an earlier one even if the earlier one's seqno
/// was lost to failover).
#[derive(Debug, Clone, Copy)]
struct AckedWrite {
    tick: u64,
    seqno: u64,
}

/// Staleness numbers for one workload phase (the span between two
/// topology events).
#[derive(Debug, Clone)]
pub struct PhaseStaleness {
    /// Phase label: `"baseline"` before the first event, then the event
    /// that started the phase, suffixed with its op threshold.
    pub phase: String,
    /// Reads that returned a value judgement (failed reads excluded).
    pub reads: u64,
    /// Reads that observed an older seqno than the key's last acked
    /// mutation.
    pub stale_reads: u64,
    /// Staleness age percentiles in logical ticks: `[p50, p95, p99, max]`
    /// over the phase's stale reads (all zero when none).
    pub age_ticks: [u64; 4],
    /// The same percentiles in seqno distance.
    pub age_seqnos: [u64; 4],
}

impl PhaseStaleness {
    /// Probability a read in this phase was stale.
    pub fn p_stale(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.stale_reads as f64 / self.reads as f64
        }
    }
}

/// Result of one measure-mode run.
#[derive(Debug)]
pub struct StalenessOutcome {
    /// Seed that drove workload, faults and victim selection.
    pub seed: u64,
    /// Fault profile name.
    pub profile: String,
    /// Topology schedule name.
    pub schedule: String,
    /// Total workload operations simulated.
    pub ops: usize,
    /// Per-phase staleness breakdown, in schedule order.
    pub phases: Vec<PhaseStaleness>,
    /// The recorded op/event history (same recorder the live harness
    /// uses, so the checker can audit a measured run too).
    pub history: History,
    /// Registry carrying the `chaos.staleness.*` metrics of this run.
    pub registry: Arc<Registry>,
}

impl StalenessOutcome {
    /// Total judged reads across phases.
    pub fn reads(&self) -> u64 {
        self.phases.iter().map(|p| p.reads).sum()
    }

    /// Total stale reads across phases.
    pub fn stale_reads(&self) -> u64 {
        self.phases.iter().map(|p| p.stale_reads).sum()
    }

    /// Run-wide probability of a stale read.
    pub fn p_stale(&self) -> f64 {
        let reads = self.reads();
        if reads == 0 {
            0.0
        } else {
            self.stale_reads() as f64 / reads as f64
        }
    }

    /// The run as a `BENCH_staleness_<profile>.json` document. Built by
    /// hand with fully determined field order and formatting: the same
    /// seed must produce a byte-identical file.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"staleness\",\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"profile\": \"{}\",\n", self.profile));
        s.push_str(&format!("  \"schedule\": \"{}\",\n", self.schedule));
        s.push_str(&format!("  \"ops\": {},\n", self.ops));
        s.push_str(&format!("  \"reads\": {},\n", self.reads()));
        s.push_str(&format!("  \"stale_reads\": {},\n", self.stale_reads()));
        s.push_str(&format!("  \"p_stale\": {:.4},\n", self.p_stale()));
        s.push_str("  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            let sep = if i + 1 < self.phases.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"phase\": \"{}\", \"reads\": {}, \"stale_reads\": {}, \
                 \"p_stale\": {:.4}, \
                 \"age_ticks\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}, \
                 \"age_seqnos\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}}}{sep}\n",
                p.phase,
                p.reads,
                p.stale_reads,
                p.p_stale(),
                p.age_ticks[0],
                p.age_ticks[1],
                p.age_ticks[2],
                p.age_ticks[3],
                p.age_seqnos[0],
                p.age_seqnos[1],
                p.age_seqnos[2],
                p.age_seqnos[3],
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Per-phase accumulator (exact nearest-rank percentiles from the full
/// sample set — no bucket interpolation in the benchmark artifact).
struct PhaseAcc {
    phase: String,
    reads: u64,
    stale_reads: u64,
    ticks: Vec<u64>,
    seqnos: Vec<u64>,
}

impl PhaseAcc {
    fn new(phase: String) -> PhaseAcc {
        PhaseAcc { phase, reads: 0, stale_reads: 0, ticks: Vec::new(), seqnos: Vec::new() }
    }

    /// Fold another run's accumulator for the same structural phase in.
    fn merge(&mut self, other: PhaseAcc) {
        debug_assert_eq!(self.phase, other.phase);
        self.reads += other.reads;
        self.stale_reads += other.stale_reads;
        self.ticks.extend(other.ticks);
        self.seqnos.extend(other.seqnos);
    }

    fn finish(mut self) -> PhaseStaleness {
        PhaseStaleness {
            phase: self.phase,
            reads: self.reads,
            stale_reads: self.stale_reads,
            age_ticks: percentiles(&mut self.ticks),
            age_seqnos: percentiles(&mut self.seqnos),
        }
    }
}

/// Nearest-rank `[p50, p95, p99, max]` of a sample set.
fn percentiles(samples: &mut [u64]) -> [u64; 4] {
    if samples.is_empty() {
        return [0; 4];
    }
    samples.sort_unstable();
    let rank = |p: f64| {
        let idx = (p / 100.0 * samples.len() as f64).ceil() as usize;
        samples[idx.clamp(1, samples.len()) - 1]
    };
    [rank(50.0), rank(95.0), rank(99.0), samples[samples.len() - 1]]
}

fn label(kind: TopoKind, at: usize) -> String {
    let name = match kind {
        TopoKind::Kill => "kill",
        TopoKind::FailoverDead => "failover",
        TopoKind::ReviveAll => "revive",
        TopoKind::AddNode => "add-node",
        TopoKind::Rebalance { .. } => "rebalance",
    };
    format!("{name}@{at}")
}

struct Sim {
    plan: Arc<FaultPlan>,
    alive: Vec<bool>,
    vbs: Vec<VbSim>,
}

impl Sim {
    fn new(cfg: &ChaosConfig, plan: Arc<FaultPlan>) -> Sim {
        let nodes = cfg.nodes as u32;
        let vbs = (0..cfg.vbuckets)
            .map(|v| {
                let active_node = u32::from(v) % nodes;
                let replicas = (0..cfg.replicas)
                    .map(|r| ReplicaSim {
                        node: (u32::from(v) + 1 + u32::from(r)) % nodes,
                        copy: CopyState::default(),
                        queue: VecDeque::new(),
                    })
                    .collect();
                VbSim { active_node, active: CopyState::default(), replicas }
            })
            .collect();
        Sim { plan, alive: vec![true; cfg.nodes], vbs }
    }

    fn vb_for_key(&self, key: &str) -> usize {
        (mix_all(&[0x7662_6d61 /* "vbma" */, key.len() as u64, hash_key(key)])
            % self.vbs.len() as u64) as usize
    }

    /// Apply a mutation on the active copy; `None` when the active node is
    /// down (the op fails). Queues the delivery to every replica.
    fn mutate(&mut self, key: &str, value: Option<i64>, tick: u64) -> Option<(u16, u64)> {
        let v = self.vb_for_key(key);
        let vb = &mut self.vbs[v];
        if !self.alive[vb.active_node as usize] {
            return None;
        }
        let seqno = vb.active.high + 1;
        vb.active.apply(key, value, seqno);
        for r in &mut vb.replicas {
            r.queue.push_back(Delivery {
                key: key.to_string(),
                value,
                seqno,
                attempt: 0,
                ready_at: tick + REPL_LATENCY_TICKS,
                delayed: false,
            });
        }
        Some((v as u16, seqno))
    }

    /// Read through the active copy; `None` when the active node is down.
    /// Returns the observed `(value, seqno)` (`(None, 0)` = key absent).
    fn read(&self, key: &str) -> Option<(Option<i64>, u64)> {
        let v = self.vb_for_key(key);
        let vb = &self.vbs[v];
        if !self.alive[vb.active_node as usize] {
            return None;
        }
        Some(vb.active.docs.get(key).copied().unwrap_or((None, 0)))
    }

    /// One pump cycle at logical time `now`: in-order delivery of every
    /// in-flight-complete item to every live replica of every vBucket with
    /// a live active, consulting the fault plan per item. A `Drop` blocks
    /// the rest of that replica's queue for the cycle (connection-reset
    /// semantics) and bumps the site's attempt.
    fn pump(&mut self, now: u64) {
        for v in 0..self.vbs.len() {
            self.pump_vb(v, now);
        }
    }

    fn pump_vb(&mut self, v: usize, now: u64) {
        let vb = &mut self.vbs[v];
        if !self.alive[vb.active_node as usize] {
            return;
        }
        for r in &mut vb.replicas {
            if !self.alive[r.node as usize] {
                continue;
            }
            while let Some(d) = r.queue.front_mut() {
                if d.ready_at > now {
                    break;
                }
                let action = self.plan.repl_delivery(
                    VbId(v as u16),
                    SeqNo(d.seqno),
                    NodeId(r.node),
                    d.attempt,
                );
                match action {
                    FaultAction::Drop => {
                        d.attempt += 1;
                        break;
                    }
                    FaultAction::Delay(dur) if !d.delayed => {
                        // Network delay: the item keeps its place in the
                        // in-order stream but lands late, holding the tail
                        // behind it. Extra ticks come from the seeded delay
                        // duration, so the decision stays replayable.
                        d.delayed = true;
                        d.ready_at = now + 1 + (dur.as_micros() as u64 % REPL_LATENCY_TICKS);
                        break;
                    }
                    FaultAction::Deliver | FaultAction::Delay(_) => {
                        r.copy.apply(&d.key, d.value, d.seqno);
                        r.queue.pop_front();
                    }
                    FaultAction::Duplicate => {
                        r.copy.apply(&d.key, d.value, d.seqno);
                        r.copy.apply(&d.key, d.value, d.seqno);
                        r.queue.pop_front();
                    }
                }
            }
        }
    }

    /// Durability observe for `(vb, seqno)` at `tick`: block (= advance
    /// logical time for this vBucket only) until every live replica has
    /// applied it, bounded — the plan's per-site drop cap guarantees
    /// progress. `false` when a replica is down or the bound is hit.
    fn observe(&mut self, v: usize, seqno: u64, tick: u64) -> bool {
        for wait in 0..(REPL_LATENCY_TICKS + 8) {
            let vb = &self.vbs[v];
            if vb.replicas.iter().any(|r| !self.alive[r.node as usize]) {
                return false;
            }
            if vb.replicas.iter().all(|r| r.copy.high >= seqno) {
                return true;
            }
            self.pump_vb(v, tick + wait);
        }
        self.vbs[v].replicas.iter().all(|r| r.copy.high >= seqno)
    }

    /// Mirror of the coordinator's kill policy: skip when already degraded
    /// or below three live nodes, otherwise the seeded victim dies.
    fn kill(&mut self, seed: u64, event_idx: usize) -> Option<u32> {
        let live: Vec<u32> =
            (0..self.alive.len() as u32).filter(|&n| self.alive[n as usize]).collect();
        if live.len() < self.alive.len() || live.len() < 3 {
            return None;
        }
        let victim =
            live[(mix_all(&[seed, KILL_SALT, event_idx as u64]) % live.len() as u64) as usize];
        self.alive[victim as usize] = false;
        Some(victim)
    }

    /// Promote the most-caught-up live replica of every vBucket whose
    /// active node is dead. The promoted copy's missing tail is lost —
    /// this is where staleness comes from.
    fn failover_dead(&mut self) -> usize {
        let mut promoted = 0;
        for vb in &mut self.vbs {
            if self.alive[vb.active_node as usize] {
                continue;
            }
            let Some(best) = vb
                .replicas
                .iter()
                .enumerate()
                .filter(|(_, r)| self.alive[r.node as usize])
                .max_by_key(|(i, r)| (r.copy.high, usize::MAX - i))
                .map(|(i, _)| i)
            else {
                continue; // no live replica: the vBucket stays down
            };
            vb.active = vb.replicas[best].copy.clone();
            vb.active_node = vb.replicas[best].node;
            vb.replicas[best].queue.clear();
            promoted += 1;
        }
        promoted
    }

    /// Rejoin protocol: revived nodes come back with their replica copies
    /// rebuilt from the current actives (the live pump's backfill,
    /// compressed to one logical step).
    fn revive_all(&mut self) -> Vec<u32> {
        let revived: Vec<u32> =
            (0..self.alive.len() as u32).filter(|&n| !self.alive[n as usize]).collect();
        for &n in &revived {
            self.alive[n as usize] = true;
        }
        for vb in &mut self.vbs {
            if !self.alive[vb.active_node as usize] {
                continue;
            }
            for r in &mut vb.replicas {
                if revived.contains(&r.node) {
                    r.copy = vb.active.clone();
                    r.queue.clear();
                }
            }
        }
        revived
    }

    fn add_node(&mut self) -> u32 {
        self.alive.push(true);
        self.alive.len() as u32 - 1
    }

    /// Rebalance to the balanced layout over live nodes: copies move
    /// without loss, every replica finishes backfilled and in sync.
    fn rebalance(&mut self) {
        let live: Vec<u32> =
            (0..self.alive.len() as u32).filter(|&n| self.alive[n as usize]).collect();
        if live.is_empty() {
            return;
        }
        for (v, vb) in self.vbs.iter_mut().enumerate() {
            if !self.alive[vb.active_node as usize] {
                continue; // nothing authoritative to move
            }
            vb.active_node = live[v % live.len()];
            for (r, replica) in vb.replicas.iter_mut().enumerate() {
                replica.node = live[(v + 1 + r) % live.len()];
                replica.copy = vb.active.clone();
                replica.queue.clear();
            }
        }
    }
}

/// Stable key hash for vBucket assignment (the sim's stand-in for the
/// smart client's CRC32 mapping).
fn hash_key(key: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One full simulated run: per-phase accumulators (raw samples kept so
/// callers can pool runs), the op/event history, and the metrics registry.
fn simulate(cfg: &ChaosConfig) -> (Vec<PhaseAcc>, History, Arc<Registry>) {
    let plan = FaultPlan::new(cfg.profile.spec(cfg.seed));
    let mut sim = Sim::new(cfg, plan);
    let rec = HistoryRecorder::new();
    let schedule = Schedule::by_name(&cfg.schedule, cfg.seed, cfg.ops);

    let registry = Arc::new(Registry::new("chaos"));
    let reads_ctr: Arc<Counter> = registry
        .counter_with_help("chaos.staleness.reads", "Reads judged for staleness in measure mode");
    let stale_ctr: Arc<Counter> = registry.counter_with_help(
        "chaos.staleness.stale_reads",
        "Reads that observed an older seqno than the key's last acked mutation",
    );
    let age_ticks_h: Arc<WindowedHistogram> = registry.windowed_histogram_with_help(
        "chaos.staleness.age_ticks",
        "Stale-read age in logical ticks since the superseding ack, over the live windows",
    );
    let age_seqnos_h: Arc<WindowedHistogram> = registry.windowed_histogram_with_help(
        "chaos.staleness.age_seqnos",
        "Stale-read age in seqno distance behind the key's last acked mutation, over the live \
         windows",
    );

    let mut acked: HashMap<String, AckedWrite> = HashMap::new();
    let mut phases: Vec<PhaseAcc> = Vec::new();
    let mut acc = PhaseAcc::new("baseline".to_string());
    let mut events: &[TopoEvent] = &schedule.events;
    let mut event_idx = 0usize;
    let mut worker_op: Vec<u64> = vec![0; cfg.workers.max(1)];
    let keys: Vec<Vec<String>> = (0..cfg.workers.max(1))
        .map(|w| (0..cfg.keys_per_worker).map(|i| format!("w{w}k{i}")).collect())
        .collect();

    for op in 0..cfg.ops {
        // Fire due topology events; each one closes the current phase.
        while let Some(ev) = events.first() {
            if ev.at > op {
                break;
            }
            phases.push(std::mem::replace(&mut acc, PhaseAcc::new(label(ev.kind, ev.at))));
            match ev.kind {
                TopoKind::Kill => match sim.kill(cfg.seed, event_idx) {
                    Some(n) => rec.event(format!("kill node {n}"), false),
                    None => rec.event("kill skipped (cluster already degraded)", false),
                },
                TopoKind::FailoverDead => {
                    let n = sim.failover_dead();
                    rec.event(format!("failover promoted {n} vbuckets"), true);
                }
                TopoKind::ReviveAll => {
                    for n in sim.revive_all() {
                        rec.event(format!("revive node {n} (rejoin protocol)"), false);
                    }
                }
                TopoKind::AddNode => {
                    let n = sim.add_node();
                    rec.event(format!("add node {n}"), false);
                }
                TopoKind::Rebalance { .. } => {
                    sim.rebalance();
                    rec.event("rebalance: ok", false);
                }
            }
            event_idx += 1;
            events = &events[1..];
        }

        let tick = op as u64 + 1;
        age_ticks_h.advance_to(tick / TICKS_PER_WINDOW);
        age_seqnos_h.advance_to(tick / TICKS_PER_WINDOW);

        // Same seeded op mix as the live worker loop.
        let w = op % cfg.workers.max(1);
        let h = mix_all(&[cfg.seed, WORKLOAD_SALT, w as u64, worker_op[w]]);
        worker_op[w] += 1;
        let key = &keys[w][((h >> 32) as usize) % keys[w].len()];
        let value = ((w as i64 + 1) << 40) | (worker_op[w] as i64);
        let roll = h % 100;

        let judge_read = |observed: Option<(Option<i64>, u64)>,
                          acked: &HashMap<String, AckedWrite>,
                          acc: &mut PhaseAcc| {
            let Some((_, seq)) = observed else { return };
            acc.reads += 1;
            reads_ctr.inc();
            let Some(last) = acked.get(key) else { return };
            if seq < last.seqno {
                acc.stale_reads += 1;
                stale_ctr.inc();
                let age_t = tick.saturating_sub(last.tick);
                let age_s = last.seqno - seq;
                acc.ticks.push(age_t);
                acc.seqnos.push(age_s);
                age_ticks_h.record_nanos(age_t);
                age_seqnos_h.record_nanos(age_s);
            }
        };

        if roll < 40 {
            // Plain upsert.
            let invoked = rec.tick();
            match sim.mutate(key, Some(value), tick) {
                Some((vb, seqno)) => {
                    acked.insert(key.clone(), AckedWrite { tick, seqno });
                    rec.record(
                        key,
                        OpKind::Put { value, durable: false },
                        invoked,
                        Ack::Ok { vb, seqno, observed: Some(value) },
                    );
                }
                None => rec.record(
                    key,
                    OpKind::Put { value, durable: false },
                    invoked,
                    Ack::Failed("active node down".to_string()),
                ),
            }
        } else if roll < 50 {
            // CAS round-trip: read, then conditional write (single-writer
            // keys, so the CAS itself always succeeds when the node is up).
            let invoked = rec.tick();
            let observed = sim.read(key);
            match observed {
                Some((val, _)) => {
                    judge_read(observed, &acked, &mut acc);
                    rec.record(
                        key,
                        OpKind::Get,
                        invoked,
                        Ack::Ok { vb: sim.vb_for_key(key) as u16, seqno: 0, observed: val },
                    );
                    let invoked2 = rec.tick();
                    match sim.mutate(key, Some(value), tick) {
                        Some((vb, seqno)) => {
                            acked.insert(key.clone(), AckedWrite { tick, seqno });
                            rec.record(
                                key,
                                OpKind::Put { value, durable: false },
                                invoked2,
                                Ack::Ok { vb, seqno, observed: Some(value) },
                            );
                        }
                        None => rec.record(
                            key,
                            OpKind::Put { value, durable: false },
                            invoked2,
                            Ack::Failed("active node down".to_string()),
                        ),
                    }
                }
                None => rec.record(
                    key,
                    OpKind::Get,
                    invoked,
                    Ack::Failed("active node down".to_string()),
                ),
            }
        } else if roll < 65 {
            // Durable put: the ack waits for replication to every replica.
            let invoked = rec.tick();
            match sim.mutate(key, Some(value), tick) {
                Some((vb, seqno)) => {
                    let durable = sim.observe(vb as usize, seqno, tick);
                    acked.insert(key.clone(), AckedWrite { tick, seqno });
                    rec.record(
                        key,
                        OpKind::Put { value, durable },
                        invoked,
                        Ack::Ok { vb, seqno, observed: Some(value) },
                    );
                }
                None => rec.record(
                    key,
                    OpKind::Put { value, durable: false },
                    invoked,
                    Ack::Failed("active node down".to_string()),
                ),
            }
        } else if roll < 85 {
            // Read.
            let invoked = rec.tick();
            let observed = sim.read(key);
            judge_read(observed, &acked, &mut acc);
            match observed {
                Some((val, _)) => rec.record(
                    key,
                    OpKind::Get,
                    invoked,
                    Ack::Ok { vb: sim.vb_for_key(key) as u16, seqno: 0, observed: val },
                ),
                None => rec.record(
                    key,
                    OpKind::Get,
                    invoked,
                    Ack::Failed("active node down".to_string()),
                ),
            }
        } else {
            // Delete.
            let invoked = rec.tick();
            match sim.mutate(key, None, tick) {
                Some((vb, seqno)) => {
                    acked.insert(key.clone(), AckedWrite { tick, seqno });
                    rec.record(key, OpKind::Delete, invoked, Ack::Ok { vb, seqno, observed: None });
                }
                None => rec.record(
                    key,
                    OpKind::Delete,
                    invoked,
                    Ack::Failed("active node down".to_string()),
                ),
            }
        }

        // Replication pump cycle: in-flight items past their latency land.
        sim.pump(tick);
    }
    phases.push(acc);

    (phases, rec.finish(), registry)
}

/// Run measure mode: simulate `cfg` deterministically and return the
/// per-phase staleness numbers, history, and `chaos.staleness.*` metrics.
pub fn measure_staleness(cfg: &ChaosConfig) -> StalenessOutcome {
    let (accs, history, registry) = simulate(cfg);
    StalenessOutcome {
        seed: cfg.seed,
        profile: cfg.profile.name().to_string(),
        schedule: Schedule::by_name(&cfg.schedule, cfg.seed, cfg.ops).name,
        ops: cfg.ops,
        phases: accs.into_iter().map(PhaseAcc::finish).collect(),
        history,
        registry,
    }
}

/// Phase-aligned aggregate of [`measure_staleness`] over `runs`
/// consecutive seeds (`cfg.seed`, `cfg.seed + 1`, ...).
///
/// A single run holds at most one failover window, so its stale-read
/// count is a coin flip, not a probability. The named schedules fire at
/// fixed op thresholds — phases are structural, identical across seeds —
/// so the sweep pools every run's samples phase-wise, making per-phase
/// `p_stale` statistically meaningful while staying a pure function of
/// `(cfg, runs)`.
#[derive(Debug)]
pub struct StalenessSweep {
    /// First seed of the sweep.
    pub seed: u64,
    /// Number of consecutive seeds pooled.
    pub runs: u64,
    /// Fault profile name.
    pub profile: String,
    /// Topology schedule name.
    pub schedule: String,
    /// Workload operations **per run**.
    pub ops: usize,
    /// Phase-wise pooled staleness (percentiles over all runs' samples).
    pub phases: Vec<PhaseStaleness>,
}

impl StalenessSweep {
    /// Total judged reads across runs and phases.
    pub fn reads(&self) -> u64 {
        self.phases.iter().map(|p| p.reads).sum()
    }

    /// Total stale reads across runs and phases.
    pub fn stale_reads(&self) -> u64 {
        self.phases.iter().map(|p| p.stale_reads).sum()
    }

    /// Sweep-wide probability of a stale read.
    pub fn p_stale(&self) -> f64 {
        let reads = self.reads();
        if reads == 0 {
            0.0
        } else {
            self.stale_reads() as f64 / reads as f64
        }
    }

    /// The sweep as a `BENCH_staleness_<profile>.json` document — same
    /// deterministic hand-built format as [`StalenessOutcome::to_json`],
    /// plus the `runs` field.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"staleness\",\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"runs\": {},\n", self.runs));
        s.push_str(&format!("  \"profile\": \"{}\",\n", self.profile));
        s.push_str(&format!("  \"schedule\": \"{}\",\n", self.schedule));
        s.push_str(&format!("  \"ops\": {},\n", self.ops));
        s.push_str(&format!("  \"reads\": {},\n", self.reads()));
        s.push_str(&format!("  \"stale_reads\": {},\n", self.stale_reads()));
        s.push_str(&format!("  \"p_stale\": {:.4},\n", self.p_stale()));
        s.push_str("  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            let sep = if i + 1 < self.phases.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"phase\": \"{}\", \"reads\": {}, \"stale_reads\": {}, \
                 \"p_stale\": {:.4}, \
                 \"age_ticks\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}, \
                 \"age_seqnos\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}}}{sep}\n",
                p.phase,
                p.reads,
                p.stale_reads,
                p.p_stale(),
                p.age_ticks[0],
                p.age_ticks[1],
                p.age_ticks[2],
                p.age_ticks[3],
                p.age_seqnos[0],
                p.age_seqnos[1],
                p.age_seqnos[2],
                p.age_seqnos[3],
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Pool `runs` measure-mode runs under consecutive seeds, phase-wise.
///
/// Requires a schedule whose event thresholds do not depend on the seed
/// (every named schedule except `"seeded"`) so phases line up.
pub fn measure_staleness_sweep(cfg: &ChaosConfig, runs: u64) -> StalenessSweep {
    assert!(runs > 0, "a sweep needs at least one run");
    assert!(cfg.schedule != "seeded", "the seeded schedule varies per seed; phases cannot pool");
    let mut agg: Option<Vec<PhaseAcc>> = None;
    for i in 0..runs {
        let mut c = cfg.clone();
        c.seed = cfg.seed.wrapping_add(i);
        let (accs, _, _) = simulate(&c);
        match &mut agg {
            None => agg = Some(accs),
            Some(agg) => {
                for (a, b) in agg.iter_mut().zip(accs) {
                    a.merge(b);
                }
            }
        }
    }
    StalenessSweep {
        seed: cfg.seed,
        runs,
        profile: cfg.profile.name().to_string(),
        schedule: Schedule::by_name(&cfg.schedule, cfg.seed, cfg.ops).name,
        ops: cfg.ops,
        phases: agg.unwrap_or_default().into_iter().map(PhaseAcc::finish).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Profile;

    fn cfg(seed: u64) -> ChaosConfig {
        let mut c = ChaosConfig::new(seed);
        c.profile = Profile::Lossy;
        c.schedule = "failover-no-revive".to_string();
        c
    }

    #[test]
    fn same_seed_is_byte_identical() {
        let a = measure_staleness(&cfg(42));
        let b = measure_staleness(&cfg(42));
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn different_seeds_differ() {
        let a = measure_staleness(&cfg(1));
        let b = measure_staleness(&cfg(2));
        assert_ne!(a.to_json(), b.to_json(), "distinct seeds produced identical staleness JSON");
    }

    #[test]
    fn fault_profile_changes_the_measurement() {
        // Jittery delays deepen replica lag, so some seed must separate
        // the profiles on more than the label in the JSON.
        let differs = (0..8u64).any(|s| {
            let mut quiet = cfg(s);
            quiet.profile = Profile::Quiet;
            let mut jittery = cfg(s);
            jittery.profile = Profile::Jittery;
            let (a, b) = (measure_staleness(&quiet), measure_staleness(&jittery));
            a.stale_reads() != b.stale_reads()
                || a.phases.iter().zip(&b.phases).any(|(x, y)| x.age_ticks != y.age_ticks)
        });
        assert!(differs, "fault profile had no effect on staleness in seeds 0..8");
    }

    #[test]
    fn failover_without_revive_produces_stale_reads() {
        // Across a handful of seeds, losing an unreplicated tail to
        // failover must surface at least one stale read.
        let any_stale = (0..8u64).any(|s| measure_staleness(&cfg(s)).stale_reads() > 0);
        assert!(any_stale, "no seed in 0..8 produced a stale read under failover-no-revive");
    }

    #[test]
    fn quiet_baseline_reads_are_never_stale() {
        let mut c = ChaosConfig::new(7);
        c.profile = Profile::Quiet;
        c.schedule = "baseline".to_string();
        let out = measure_staleness(&c);
        assert!(out.reads() > 0);
        assert_eq!(out.stale_reads(), 0, "quiet baseline produced stale reads");
        assert_eq!(out.phases.len(), 1);
        assert_eq!(out.phases[0].phase, "baseline");
    }

    #[test]
    fn phases_split_on_schedule_events() {
        let out = measure_staleness(&cfg(5));
        // failover-no-revive = Kill@30% + FailoverDead@40% → 3 phases.
        let names: Vec<&str> = out.phases.iter().map(|p| p.phase.as_str()).collect();
        assert_eq!(out.phases.len(), 3, "phases: {names:?}");
        assert_eq!(names[0], "baseline");
        assert!(names[1].starts_with("kill@"), "phases: {names:?}");
        assert!(names[2].starts_with("failover@"), "phases: {names:?}");
        let total: u64 = out.phases.iter().map(|p| p.reads).sum();
        assert_eq!(total, out.reads());
    }

    #[test]
    fn metrics_ride_the_registry() {
        let out = measure_staleness(&cfg(9));
        let snap = out.registry.snapshot();
        assert_eq!(snap.counter("chaos.staleness.reads"), out.reads());
        assert_eq!(snap.counter("chaos.staleness.stale_reads"), out.stale_reads());
        // The windowed age histograms rotated on the logical clock right
        // up to the final tick.
        let final_epoch = out.ops as u64 / TICKS_PER_WINDOW;
        assert_eq!(snap.windowed("chaos.staleness.age_ticks").epoch, final_epoch);
        assert_eq!(snap.windowed("chaos.staleness.age_seqnos").epoch, final_epoch);
        assert!(snap.windowed("chaos.staleness.age_ticks").merged.count() <= out.stale_reads());
    }

    #[test]
    fn history_is_recorded_for_the_checker() {
        let out = measure_staleness(&cfg(3));
        assert!(!out.history.is_empty());
        assert!(out.history.events.iter().any(|e| e.lossy), "failover events must be marked lossy");
    }

    #[test]
    fn sweep_pools_runs_phasewise() {
        let sweep = measure_staleness_sweep(&cfg(0), 8);
        let reads: u64 = (0..8).map(|s| measure_staleness(&cfg(s)).reads()).sum();
        let stale: u64 = (0..8).map(|s| measure_staleness(&cfg(s)).stale_reads()).sum();
        assert_eq!(sweep.reads(), reads, "sweep must pool every run's reads");
        assert_eq!(sweep.stale_reads(), stale, "sweep must pool every run's stale reads");
        assert!(sweep.stale_reads() > 0, "8 failover runs pooled should show staleness");
        assert_eq!(sweep.phases.len(), 3, "phases are structural across seeds");
        // Replay contract: same (cfg, runs) ⇒ byte-identical JSON.
        assert_eq!(sweep.to_json(), measure_staleness_sweep(&cfg(0), 8).to_json());
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let mut one = vec![7];
        assert_eq!(percentiles(&mut one), [7, 7, 7, 7]);
        let mut v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentiles(&mut v), [50, 95, 99, 100]);
        let mut empty: Vec<u64> = Vec::new();
        assert_eq!(percentiles(&mut empty), [0, 0, 0, 0]);
    }
}
