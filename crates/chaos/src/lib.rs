//! Deterministic chaos harness for the simulated cluster.
//!
//! Couchbase's correctness story under failures (§4.3.1 failover, §4.3.1
//! rebalance, §4.1.1 replication) is exactly the part a reproduction is
//! most likely to get subtly wrong, so this crate stress-tests it the way
//! Jepsen tests real clusters — but fully deterministically:
//!
//! - [`FaultPlan`] implements the cluster's [`cbs_cluster::FaultInjector`]
//!   seam. Every fault decision (drop / delay / duplicate a replication
//!   delivery, stall a client dispatch) is a **pure hash** of the plan
//!   seed and the site identity — never wall-clock, never a shared PRNG
//!   whose sequence depends on thread interleaving. A printed seed is a
//!   full replay recipe.
//! - [`HistoryRecorder`] logs every client-visible KV operation (put /
//!   get / delete / CAS, with seqnos and observed values) against a
//!   logical clock, plus the topology events (kill, failover, rebalance)
//!   that may legitimately lose un-replicated acked writes.
//! - [`check_history`] validates per-key consistency of the recorded
//!   history (phantom reads, read-your-writes for durable writes, stale
//!   reads outside failover windows, per-vBucket seqno monotonicity), and
//!   [`check_cluster`] validates topology sanity (no ownerless vBucket)
//!   and active/replica convergence after quiescence.
//! - [`run_chaos`] wires it all together: an N-node cluster, seeded
//!   workload workers, and a coordinator that fires a seeded schedule of
//!   topology events at operation-count thresholds. [`shrink`] bisects a
//!   failing run down to a minimal op count and prints a one-line replay
//!   command.
//!
//! See DESIGN.md §11.

pub mod checker;
pub mod history;
pub mod measure;
pub mod plan;
pub mod txnchaos;
pub mod workload;

pub use checker::{check_cluster, check_history, Violation};
pub use history::{
    Ack, EventRecord, History, HistoryRecorder, OpKind, OpRecord, SnapshotRecord, TxnEventKind,
    TxnRecord,
};
pub use measure::{
    measure_staleness, measure_staleness_sweep, PhaseStaleness, StalenessOutcome, StalenessSweep,
    TICKS_PER_WINDOW,
};
pub use plan::{FaultPlan, FaultSpec};
pub use txnchaos::{run_txn_chaos, txn_key, txn_value, TxnChaosConfig, TxnChaosOutcome};
pub use workload::{
    expect_clean, flight_dump, revive_clean, run_chaos, shrink, write_flight_dump, ChaosConfig,
    ChaosOutcome, Profile, Schedule, TopoEvent, TopoKind, BUCKET,
};

/// SplitMix64 finalizer: the one-way mixer behind every seeded decision in
/// this crate. Stateless, so decisions are immune to thread interleaving.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hash a list of words into one decision value.
pub(crate) fn mix_all(words: &[u64]) -> u64 {
    let mut h = 0x243f_6a88_85a3_08d3; // pi digits, nothing up the sleeve
    for &w in words {
        h = mix64(h ^ w);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_spreads() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(42), mix64(43));
        assert_eq!(mix_all(&[1, 2, 3]), mix_all(&[1, 2, 3]));
        assert_ne!(mix_all(&[1, 2, 3]), mix_all(&[3, 2, 1]));
        // Rough avalanche sanity: flipping one input bit flips ~half the
        // output bits.
        let d = (mix64(7) ^ mix64(7 | 1 << 63)).count_ones();
        assert!((16..=48).contains(&d), "poor avalanche: {d}");
    }
}
