//! Seeded fault plans: the chaos side of the cluster's
//! [`FaultInjector`] seam.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cbs_cluster::{FaultAction, FaultInjector};
use cbs_common::{NodeId, SeqNo, VbId};

use crate::mix_all;

/// Knobs for a [`FaultPlan`]. All percentages are 0..=100 and
/// `drop_pct + delay_pct + dup_pct` must stay ≤ 100 (the remainder is the
/// clean-delivery probability).
#[derive(Debug, Clone, Copy)]
pub struct FaultSpec {
    /// Seed every decision derives from. Printed on failure; setting the
    /// same seed replays the same fault pattern.
    pub seed: u64,
    /// Chance a replication delivery is dropped (connection reset: the
    /// pump tears its streams down and redelivers from the replicas' high
    /// seqnos).
    pub drop_pct: u8,
    /// Chance a replication delivery is delayed before applying.
    pub delay_pct: u8,
    /// Chance a replication delivery is applied twice (dedup exercise).
    pub dup_pct: u8,
    /// Upper bound for injected replication delays.
    pub max_delay: Duration,
    /// Chance a client dispatch stalls before reaching the node (slow-node
    /// emulation).
    pub stall_pct: u8,
    /// Upper bound for injected client stalls.
    pub max_stall: Duration,
    /// A given (vb, seqno, destination) delivery site is dropped at most
    /// this many times, then delivered — faults stay transient so healed
    /// clusters always converge.
    pub max_drops_per_site: u32,
}

impl FaultSpec {
    /// No faults at all (baseline runs).
    pub fn quiet(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            drop_pct: 0,
            delay_pct: 0,
            dup_pct: 0,
            max_delay: Duration::ZERO,
            stall_pct: 0,
            max_stall: Duration::ZERO,
            max_drops_per_site: 0,
        }
    }

    /// The standard lossy-network profile used by the integration suites:
    /// drops, delays, duplicates and client stalls all active.
    pub fn lossy(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            drop_pct: 15,
            delay_pct: 20,
            dup_pct: 10,
            max_delay: Duration::from_millis(3),
            stall_pct: 5,
            max_stall: Duration::from_millis(2),
            max_drops_per_site: 2,
        }
    }

    /// Delay/duplicate-heavy profile with no drops (reordering pressure
    /// without stream resets).
    pub fn jittery(seed: u64) -> FaultSpec {
        FaultSpec {
            drop_pct: 0,
            delay_pct: 45,
            dup_pct: 25,
            max_delay: Duration::from_millis(4),
            ..FaultSpec::lossy(seed)
        }
    }
}

/// A deterministic fault plan. Decisions are pure functions of
/// `(spec.seed, site identity)`; the only mutable state is the `armed`
/// switch (so the harness can heal the cluster after the workload) and a
/// per-dispatch counter that individualises client-stall rolls.
#[derive(Debug)]
pub struct FaultPlan {
    spec: FaultSpec,
    armed: AtomicBool,
    dispatches: AtomicU64,
}

const REPL_SALT: u64 = 0x7265_706c; // "repl"
const STALL_SALT: u64 = 0x7374_616c; // "stal"
const DELAY_SALT: u64 = 0x646c_6179; // "dlay"

impl FaultPlan {
    /// Build a plan from a spec.
    pub fn new(spec: FaultSpec) -> Arc<FaultPlan> {
        Arc::new(FaultPlan { spec, armed: AtomicBool::new(true), dispatches: AtomicU64::new(0) })
    }

    /// The spec this plan runs.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Stop injecting faults (heal phase: every subsequent decision is a
    /// clean delivery).
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Re-enable fault injection.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::SeqCst);
    }
}

impl FaultInjector for FaultPlan {
    fn repl_delivery(&self, vb: VbId, seqno: SeqNo, dst: NodeId, attempt: u32) -> FaultAction {
        if !self.armed.load(Ordering::SeqCst) {
            return FaultAction::Deliver;
        }
        let h = mix_all(&[
            self.spec.seed,
            REPL_SALT,
            u64::from(vb.0),
            seqno.0,
            u64::from(dst.0),
            u64::from(attempt),
        ]);
        let roll = (h % 100) as u8;
        if roll < self.spec.drop_pct {
            // Re-dropping every retry would stall convergence forever;
            // cap per-site drops so the redelivery eventually lands.
            if attempt < self.spec.max_drops_per_site {
                return FaultAction::Drop;
            }
            return FaultAction::Deliver;
        }
        if roll < self.spec.drop_pct + self.spec.delay_pct {
            let span = self.spec.max_delay.as_micros().max(1) as u64;
            let us = mix_all(&[h, DELAY_SALT]) % span;
            return FaultAction::Delay(Duration::from_micros(us));
        }
        if roll < self.spec.drop_pct + self.spec.delay_pct + self.spec.dup_pct {
            return FaultAction::Duplicate;
        }
        FaultAction::Deliver
    }

    fn client_dispatch(&self, node: NodeId, vb: VbId) -> Option<Duration> {
        if !self.armed.load(Ordering::SeqCst) || self.spec.stall_pct == 0 {
            return None;
        }
        // The dispatch counter makes successive calls to the same (node,
        // vb) site roll independently. Its value depends on worker-thread
        // interleaving, but stalls only perturb *timing*, never the
        // decisions the consistency checker judges — the replayed seed
        // still exercises the same drop/delay/duplicate pattern.
        let n = self.dispatches.fetch_add(1, Ordering::Relaxed);
        let h = mix_all(&[self.spec.seed, STALL_SALT, u64::from(node.0), u64::from(vb.0), n]);
        if (h % 100) as u8 >= self.spec.stall_pct {
            return None;
        }
        let span = self.spec.max_stall.as_micros().max(1) as u64;
        Some(Duration::from_micros(mix_all(&[h, DELAY_SALT]) % span))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_functions_of_seed_and_site() {
        let a = FaultPlan::new(FaultSpec::lossy(7));
        let b = FaultPlan::new(FaultSpec::lossy(7));
        for vb in 0..64u16 {
            for s in 1..20u64 {
                for attempt in 0..3u32 {
                    assert_eq!(
                        a.repl_delivery(VbId(vb), SeqNo(s), NodeId(1), attempt),
                        b.repl_delivery(VbId(vb), SeqNo(s), NodeId(1), attempt),
                    );
                }
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(FaultSpec::lossy(1));
        let b = FaultPlan::new(FaultSpec::lossy(2));
        let differ = (0..256u64).any(|s| {
            a.repl_delivery(VbId(0), SeqNo(s), NodeId(1), 0)
                != b.repl_delivery(VbId(0), SeqNo(s), NodeId(1), 0)
        });
        assert!(differ, "seed change produced identical fault pattern");
    }

    #[test]
    fn drops_are_capped_per_site() {
        let plan = FaultPlan::new(FaultSpec { drop_pct: 100, ..FaultSpec::lossy(3) });
        // At the cap, the same site must switch to Deliver.
        assert_eq!(
            plan.repl_delivery(VbId(0), SeqNo(1), NodeId(1), 2),
            FaultAction::Deliver,
            "attempt at max_drops_per_site must deliver",
        );
        assert_eq!(plan.repl_delivery(VbId(0), SeqNo(1), NodeId(1), 0), FaultAction::Drop);
    }

    #[test]
    fn disarm_silences_everything() {
        let plan =
            FaultPlan::new(FaultSpec { drop_pct: 100, stall_pct: 100, ..FaultSpec::lossy(9) });
        plan.disarm();
        assert_eq!(plan.repl_delivery(VbId(0), SeqNo(1), NodeId(1), 0), FaultAction::Deliver);
        assert_eq!(plan.client_dispatch(NodeId(1), VbId(0)), None);
        plan.arm();
        assert_eq!(plan.repl_delivery(VbId(0), SeqNo(1), NodeId(1), 0), FaultAction::Drop);
    }
}
