//! Transactional chaos: seeded batches of multi-document transactions
//! through the real `cbs-txn` coordinator, with read-only snapshot
//! transactions riding inside each batch and deliberate aborts mixed in,
//! checked by the `txn-atomicity` and `fractured-read` history rules.
//!
//! The workload is **clean by construction**: one coordinator issues
//! sequential batches (parallelism comes from the scheduler's workers, not
//! from concurrent coordinators), commit events are recorded only after a
//! batch's drain fully acknowledged, and snapshots are transactions
//! themselves — so a violation means the scheduler or the drain is broken,
//! not the harness. The teeth suite (`tests/txn_teeth.rs`) plants a torn
//! commit and an aborted-write leak to prove the rules bite.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Duration;

use cbs_cluster::{Cluster, ClusterConfig, Durability};
use cbs_common::error::Error;
use cbs_json::Value;
use cbs_txn::{Incarnation, TxnClient, TxnCtx, TxnFn, TxnOutcome};
use parking_lot::Mutex;

use crate::checker::{check_cluster, check_history, Violation};
use crate::history::{History, HistoryRecorder, TxnEventKind};
use crate::mix_all;
use crate::plan::FaultPlan;
use crate::workload::{Profile, BUCKET};

const TXN_SALT: u64 = 0x7478_6e63; // "txnc"

/// Document key for transactional-chaos key-index `k` (a key space
/// disjoint from the plain chaos workload's).
pub fn txn_key(k: usize) -> String {
    format!("txnc{k:03}")
}

/// The value transaction `id` writes to key-index `k`: unique per
/// transaction, so any observed value identifies its writer.
pub fn txn_value(id: u64, k: usize) -> i64 {
    (((id + 1) << 16) | k as u64) as i64
}

/// Full description of one transactional chaos run; round-trips through
/// `TXN_CHAOS_*` environment variables for replay.
#[derive(Debug, Clone)]
pub struct TxnChaosConfig {
    /// Seed for workload shape and fault decisions.
    pub seed: u64,
    /// Node count.
    pub nodes: usize,
    /// Replica copies per vBucket.
    pub replicas: u8,
    /// vBuckets per bucket.
    pub vbuckets: u16,
    /// Sequential batches the coordinator runs.
    pub batches: usize,
    /// Writer transactions per batch (plus one snapshot reader).
    pub txns_per_batch: usize,
    /// Size of the shared key space (small = high conflict rate).
    pub keys: usize,
    /// Scheduler worker threads.
    pub workers: usize,
    /// Transport fault intensity. Topology events are deliberately absent:
    /// a mid-drain node failure genuinely tears a commit, which is the
    /// teeth test's job to plant, not the clean run's job to suffer.
    pub profile: Profile,
    /// Drain with replicate-to-all durability.
    pub durable: bool,
}

impl TxnChaosConfig {
    /// Baseline 3-node config for a seed.
    pub fn new(seed: u64) -> TxnChaosConfig {
        TxnChaosConfig {
            seed,
            nodes: 3,
            replicas: 1,
            vbuckets: 16,
            batches: 6,
            txns_per_batch: 12,
            keys: 10,
            workers: 4,
            profile: Profile::Jittery,
            durable: false,
        }
    }

    /// Apply `TXN_CHAOS_*` environment overrides: `TXN_CHAOS_SEED`,
    /// `TXN_CHAOS_NODES`, `TXN_CHAOS_BATCHES`, `TXN_CHAOS_TXNS`,
    /// `TXN_CHAOS_KEYS`, `TXN_CHAOS_WORKERS`, `TXN_CHAOS_PROFILE`,
    /// `TXN_CHAOS_DURABLE`.
    pub fn from_env(mut self) -> TxnChaosConfig {
        fn num<T: std::str::FromStr>(var: &str) -> Option<T> {
            std::env::var(var).ok().and_then(|v| v.parse().ok())
        }
        if let Some(seed) = num("TXN_CHAOS_SEED") {
            self.seed = seed;
        }
        if let Some(nodes) = num("TXN_CHAOS_NODES") {
            self.nodes = nodes;
        }
        if let Some(batches) = num("TXN_CHAOS_BATCHES") {
            self.batches = batches;
        }
        if let Some(txns) = num("TXN_CHAOS_TXNS") {
            self.txns_per_batch = txns;
        }
        if let Some(keys) = num("TXN_CHAOS_KEYS") {
            self.keys = keys;
        }
        if let Some(workers) = num("TXN_CHAOS_WORKERS") {
            self.workers = workers;
        }
        if let Some(profile) =
            std::env::var("TXN_CHAOS_PROFILE").ok().and_then(|p| Profile::by_name(&p))
        {
            self.profile = profile;
        }
        if let Some(durable) = num::<u8>("TXN_CHAOS_DURABLE") {
            self.durable = durable != 0;
        }
        self
    }

    /// One-line replay recipe for this exact run.
    pub fn replay_command(&self) -> String {
        format!(
            "TXN_CHAOS_SEED={} TXN_CHAOS_NODES={} TXN_CHAOS_BATCHES={} TXN_CHAOS_TXNS={} \
             TXN_CHAOS_KEYS={} TXN_CHAOS_WORKERS={} TXN_CHAOS_PROFILE={} TXN_CHAOS_DURABLE={} \
             cargo test --test chaos_txn txn_chaos_smoke -- --nocapture",
            self.seed,
            self.nodes,
            self.batches,
            self.txns_per_batch,
            self.keys,
            self.workers,
            self.profile.name(),
            u8::from(self.durable),
        )
    }
}

/// What one transactional chaos run produced.
#[derive(Debug)]
pub struct TxnChaosOutcome {
    /// The config the run executed.
    pub config: TxnChaosConfig,
    /// The frozen history.
    pub history: History,
    /// Every violation (history rules + live cluster checks); empty = pass.
    pub violations: Vec<Violation>,
    /// Committed transactions (from the cluster's txn log).
    pub commits: u64,
    /// Aborted transactions.
    pub aborts: u64,
    /// Conflict-driven re-executions.
    pub re_executions: u64,
}

impl TxnChaosOutcome {
    /// Human-readable summary plus replay command on failure.
    pub fn report(&self) -> String {
        let mut s = format!(
            "txn chaos: {} commits, {} aborts, {} re-executions, {} snapshots, {} violations",
            self.commits,
            self.aborts,
            self.re_executions,
            self.history.snapshots.len(),
            self.violations.len(),
        );
        for v in &self.violations {
            s.push_str(&format!("\n  {v}"));
        }
        if !self.violations.is_empty() {
            s.push_str(&format!("\n  replay: {}", self.config.replay_command()));
        }
        s
    }
}

/// Per-incarnation observation capture for a snapshot transaction: the
/// committed incarnation (known only after the batch finishes) selects
/// which observation set is the validated one.
type SnapSlot = Arc<Mutex<HashMap<Incarnation, Vec<(String, Option<i64>)>>>>;

fn writer_txn(id: u64, keys: Vec<usize>, bail: bool) -> TxnFn {
    Arc::new(move |ctx: &mut TxnCtx<'_>| {
        for &k in &keys {
            let key = txn_key(k);
            // Read-modify-write shape: the read joins the validated read
            // set, so overlapping writers genuinely conflict.
            ctx.get(&key)?;
            ctx.upsert(&key, Value::from(txn_value(id, k)));
        }
        if bail {
            return Err(Error::Eval(format!("txn {id} bails by design")));
        }
        Ok(())
    })
}

fn snapshot_txn(keys: usize, slot: SnapSlot) -> TxnFn {
    Arc::new(move |ctx: &mut TxnCtx<'_>| {
        let mut observed = Vec::with_capacity(keys);
        for k in 0..keys {
            let key = txn_key(k);
            let value = ctx.get(&key)?.and_then(|v| v.as_value().as_i64());
            observed.push((key, value));
        }
        slot.lock().insert(ctx.incarnation(), observed);
        Ok(())
    })
}

/// What each slot of a batch is, so outcomes map back to history events.
enum Meta {
    Writer { id: u64, writes: Vec<(String, i64)> },
    Snapshot { invoked: u64, slot: SnapSlot },
}

/// Run one seeded transactional chaos workload end to end and check it.
pub fn run_txn_chaos(cfg: &TxnChaosConfig) -> TxnChaosOutcome {
    let plan = FaultPlan::new(cfg.profile.spec(cfg.seed));
    let ccfg = ClusterConfig::for_chaos(cfg.vbuckets, cfg.replicas, plan);
    let cluster = Cluster::homogeneous(cfg.nodes, ccfg);
    cluster.create_bucket(BUCKET).expect("create chaos bucket");

    let rec = HistoryRecorder::new();
    let mut coordinator = TxnClient::connect(&cluster, BUCKET)
        .expect("connect txn coordinator")
        .with_workers(cfg.workers);
    if cfg.durable {
        coordinator = coordinator.with_durability(
            Durability { replicate_to: cfg.replicas, persist_to_master: false },
            Duration::from_secs(5),
        );
    }

    let keys = cfg.keys.max(4);
    let mut next_id = 0u64;
    for b in 0..cfg.batches as u64 {
        let snap_pos =
            (mix_all(&[cfg.seed, TXN_SALT, b, 0x51]) as usize) % (cfg.txns_per_batch + 1);
        let mut txns: Vec<TxnFn> = Vec::new();
        let mut metas: Vec<Meta> = Vec::new();
        for i in 0..=cfg.txns_per_batch {
            if i == snap_pos {
                let slot: SnapSlot = Arc::default();
                metas.push(Meta::Snapshot { invoked: rec.tick(), slot: Arc::clone(&slot) });
                txns.push(snapshot_txn(keys, slot));
                continue;
            }
            let id = next_id;
            next_id += 1;
            let n_keys = 2 + (mix_all(&[cfg.seed, TXN_SALT, id, 0x4b]) as usize) % 2;
            let mut picked = BTreeSet::new();
            for j in 0..16u64 {
                if picked.len() == n_keys {
                    break;
                }
                picked.insert((mix_all(&[cfg.seed, TXN_SALT, id, 0x6b, j]) as usize) % keys);
            }
            let picked: Vec<usize> = picked.into_iter().collect();
            let bail = mix_all(&[cfg.seed, TXN_SALT, id, 0xba]).is_multiple_of(10);
            let writes = picked.iter().map(|&k| (txn_key(k), txn_value(id, k))).collect();
            rec.txn_event(id, TxnEventKind::Begin);
            metas.push(Meta::Writer { id, writes });
            txns.push(writer_txn(id, picked, bail));
        }

        let report = coordinator.run_batch(&txns).unwrap_or_else(|e| {
            panic!("batch {b} drain failed: {e}\nreplay: {}", cfg.replay_command())
        });

        for (i, meta) in metas.into_iter().enumerate() {
            match meta {
                Meta::Writer { id, writes } => {
                    let kind = match &report.outcomes[i] {
                        TxnOutcome::Committed => TxnEventKind::Commit { writes },
                        TxnOutcome::Aborted(_) => TxnEventKind::Abort { writes },
                    };
                    rec.txn_event(id, kind);
                }
                Meta::Snapshot { invoked, slot } => {
                    if report.outcomes[i].is_committed() {
                        let observed = slot
                            .lock()
                            .remove(&report.incarnations[i])
                            .expect("committed snapshot has its incarnation's observations");
                        rec.snapshot(invoked, observed);
                    }
                }
            }
        }
    }

    let history = rec.finish();
    let mut violations = check_history(&history);
    violations.extend(check_cluster(&cluster, BUCKET, Duration::from_secs(10)));
    let log = cluster.txn_log();
    TxnChaosOutcome {
        config: cfg.clone(),
        history,
        violations,
        commits: log.commits(),
        aborts: log.aborts(),
        re_executions: log.re_executions(),
    }
}
