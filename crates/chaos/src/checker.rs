//! History and cluster-state consistency checking.
//!
//! Rules over a recorded [`History`]:
//!
//! - **phantom-read** — a get observed a value no put ever attempted to
//!   write to that key.
//! - **stale-read** — outside any lossy (failover) window, a get must
//!   observe the effect of the key's last acked mutation, or of one of the
//!   unknown-outcome mutations issued after it. Per-key ops are issued by
//!   one sequential worker, so "last" is program order.
//! - **durable-floor** — even across failover windows, a get must never
//!   observe state older than the key's last durably-acked put
//!   (replicate-to-all observe succeeded, §2.3.2). This subsumes
//!   read-your-writes for durable writes; acked-but-not-durable writes
//!   *are* allowed to roll back across a failover (the paper's
//!   asynchronous-replication caveat).
//! - **seqno-regression** — per vBucket, an acked mutation that started
//!   after another acked mutation completed must carry a larger seqno,
//!   unless a failover window separates them (promotion legitimately
//!   rewinds the vBucket's seqno lineage to the replica's high seqno).
//! - **txn-atomicity** — a value staged by an aborted multi-document
//!   transaction must never be observed by any read or snapshot.
//! - **fractured-read** — a snapshot that observes one write of a
//!   committed transaction must observe the rest of its write set too
//!   (or newer committed values); see [`check_txns`].
//!
//! Rules over live cluster state ([`check_cluster`]):
//!
//! - **ownerless-vbucket** — every vBucket's active node exists, is
//!   alive, and its engine holds the vBucket in `Active` state.
//! - **replica-divergence** — after quiescence every replica's document
//!   set (replayed DCP-from-zero) matches its active's.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::time::Duration;

use cbs_cluster::Cluster;
use cbs_common::{SeqNo, VbId};
use cbs_kv::DataEngine;

use crate::history::{Ack, History, OpKind, OpRecord, TxnEventKind};

/// One consistency violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which rule fired.
    pub rule: &'static str,
    /// Key involved, when per-key.
    pub key: Option<String>,
    /// Human-readable evidence.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.key {
            Some(k) => write!(f, "[{}] key={k}: {}", self.rule, self.detail),
            None => write!(f, "[{}] {}", self.rule, self.detail),
        }
    }
}

/// Check a recorded history. Returns every violation found (empty = pass).
pub fn check_history(history: &History) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut by_key: HashMap<&str, Vec<&OpRecord>> = HashMap::new();
    for op in &history.ops {
        by_key.entry(op.key.as_str()).or_default().push(op);
    }
    for (key, ops) in &by_key {
        check_key(history, key, ops, &mut violations);
    }
    check_seqnos(history, &mut violations);
    check_txns(history, &mut violations);
    violations
}

/// The state set `{Some(v), None}` a read may legally observe.
type Allowed = HashSet<Option<i64>>;

fn check_key(history: &History, key: &str, ops: &[&OpRecord], out: &mut Vec<Violation>) {
    let mut attempted: HashSet<i64> = HashSet::new();
    // Indices (into `ops`) of the last acked mutation and the last
    // durably-acked put.
    let mut last_acked: Option<usize> = None;
    let mut durable_floor: Option<usize> = None;

    for (i, op) in ops.iter().enumerate() {
        if let OpKind::Put { value, .. } = op.kind {
            attempted.insert(value);
        }
        match op.kind {
            OpKind::Put { .. } | OpKind::Delete => {
                if matches!(op.ack, Ack::Ok { .. }) {
                    last_acked = Some(i);
                    if matches!(op.kind, OpKind::Put { durable: true, .. }) {
                        durable_floor = Some(i);
                    }
                }
            }
            OpKind::Get => {
                let Ack::Ok { observed, .. } = &op.ack else { continue };
                if let Some(v) = observed {
                    if !attempted.contains(v) {
                        out.push(Violation {
                            rule: "phantom-read",
                            key: Some(key.to_string()),
                            detail: format!(
                                "observed value {v} was never written to this key (t={})",
                                op.invoked
                            ),
                        });
                        continue;
                    }
                }
                // An op executes at some unknown point inside its
                // [invoked, completed] window, so a failover "maybe
                // separates" anchor and read iff it falls anywhere in
                // (anchor.invoked, read.completed) — conservative in both
                // directions to never flag a read that raced a promotion.
                let anchor_invoked = last_acked.map(|j| ops[j].invoked).unwrap_or(0);
                let strict = !history.lossy_within(anchor_invoked, op.completed);
                let allowed = if strict {
                    allowed_strict(ops, last_acked, i)
                } else {
                    allowed_after_failover(ops, durable_floor, i)
                };
                if !allowed.contains(observed) {
                    let (rule, context) = if strict {
                        ("stale-read", "no failover window since last acked mutation")
                    } else {
                        ("durable-floor", "failover window open, durable floor still binds")
                    };
                    out.push(Violation {
                        rule,
                        key: Some(key.to_string()),
                        detail: format!(
                            "observed {observed:?} at t={} but allowed states are {:?} ({context})",
                            op.invoked,
                            sorted(&allowed),
                        ),
                    });
                }
            }
        }
    }
}

/// No failover since the last acked mutation: the read must see that
/// mutation's effect, or the effect of a later unknown-outcome mutation.
fn allowed_strict(ops: &[&OpRecord], last_acked: Option<usize>, read_idx: usize) -> Allowed {
    let mut allowed: Allowed = HashSet::new();
    let start = match last_acked {
        Some(j) => {
            allowed.insert(ops[j].effect().unwrap_or(None));
            j + 1
        }
        None => {
            allowed.insert(None); // initial state: key absent
            0
        }
    };
    for op in &ops[start..read_idx] {
        if matches!(op.ack, Ack::Maybe(_)) {
            if let Some(effect) = op.effect() {
                allowed.insert(effect);
            }
        }
    }
    allowed
}

/// A failover window is open: any prefix of the acked tail may have been
/// rolled back, but never past the durable floor.
fn allowed_after_failover(
    ops: &[&OpRecord],
    durable_floor: Option<usize>,
    read_idx: usize,
) -> Allowed {
    let mut allowed: Allowed = HashSet::new();
    let start = match durable_floor {
        Some(j) => {
            allowed.insert(ops[j].effect().unwrap_or(None));
            j + 1
        }
        None => {
            allowed.insert(None);
            0
        }
    };
    for op in &ops[start..read_idx] {
        if op.may_have_applied() {
            if let Some(effect) = op.effect() {
                allowed.insert(effect);
            }
        }
    }
    allowed
}

fn sorted(allowed: &Allowed) -> Vec<Option<i64>> {
    let mut v: Vec<Option<i64>> = allowed.iter().copied().collect();
    v.sort_unstable();
    v
}

/// Per-vBucket seqno monotonicity under happens-before, with failover
/// windows allowed to rewind the lineage.
fn check_seqnos(history: &History, out: &mut Vec<Violation>) {
    let mut by_vb: HashMap<u16, Vec<&OpRecord>> = HashMap::new();
    for op in &history.ops {
        if matches!(op.kind, OpKind::Put { .. } | OpKind::Delete) {
            if let Ack::Ok { vb, .. } = op.ack {
                by_vb.entry(vb).or_default().push(op);
            }
        }
    }
    for (vb, mut ops) in by_vb {
        ops.sort_by_key(|o| o.invoked);
        // Completed acked mutations whose seqnos are currently part of the
        // vBucket's lineage: (invoked, completed, seqno, key).
        let mut lineage: Vec<(u64, u64, u64, &str)> = Vec::new();
        for op in ops {
            let Ack::Ok { seqno, .. } = op.ack else { unreachable!() };
            let floor = lineage
                .iter()
                .filter(|(_, completed, ..)| *completed < op.invoked)
                .max_by_key(|(.., s, _)| *s)
                .copied();
            if let Some((floor_invoked, floor_completed, floor_seqno, floor_key)) = floor {
                if seqno <= floor_seqno {
                    // Same execution-uncertainty reasoning as the
                    // freshness rule: the promotion may have landed any
                    // time after the floor op started executing and
                    // before this op finished.
                    if history.lossy_within(floor_invoked, op.completed) {
                        // Failover rewound the lineage: the rolled-back
                        // tail's seqnos may be re-assigned.
                        lineage.retain(|(.., s, _)| *s < seqno);
                    } else {
                        out.push(Violation {
                            rule: "seqno-regression",
                            key: Some(op.key.clone()),
                            detail: format!(
                                "vb {vb}: acked mutation got seqno {seqno} at t={} but {floor_key} \
                                 already completed seqno {floor_seqno} at t={floor_completed} with \
                                 no failover in between",
                                op.invoked
                            ),
                        });
                        continue;
                    }
                }
            }
            lineage.push((op.invoked, op.completed, seqno, op.key.as_str()));
        }
    }
}

/// Transactional invariants over recorded [`TxnEventKind`] events and
/// snapshot observations (no-ops for histories without transactions):
///
/// - **txn-atomicity** — a value staged by an *aborted* transaction must
///   never be observed, by any get or any snapshot, anywhere, ever.
/// - **fractured-read** — if a snapshot observes committed transaction
///   T's write on one key, then for every other key in T's write set the
///   snapshot also observed, it must see T's value or a value committed
///   *after* T. Enforced only when T's commit event (recorded after its
///   drain finished) precedes the snapshot's invocation and no lossy
///   topology event falls inside `(commit, snapshot.completed)` — a
///   failover may legitimately roll back a non-durable commit's tail.
fn check_txns(history: &History, out: &mut Vec<Violation>) {
    let mut commit_at: HashMap<u64, u64> = HashMap::new();
    let mut writes_of: HashMap<u64, &[(String, i64)]> = HashMap::new();
    // Values are unique per transaction, so a value identifies its writer.
    let mut committed_value: HashMap<i64, u64> = HashMap::new();
    let mut aborted_value: HashMap<i64, u64> = HashMap::new();
    for t in &history.txns {
        match &t.kind {
            TxnEventKind::Begin => {}
            TxnEventKind::Commit { writes } => {
                commit_at.insert(t.txn, t.at);
                writes_of.insert(t.txn, writes.as_slice());
                for (_, v) in writes {
                    committed_value.insert(*v, t.txn);
                }
            }
            TxnEventKind::Abort { writes } => {
                for (_, v) in writes {
                    aborted_value.insert(*v, t.txn);
                }
            }
        }
    }
    if history.txns.is_empty() {
        return;
    }

    for op in &history.ops {
        if !matches!(op.kind, OpKind::Get) {
            continue;
        }
        let Ack::Ok { observed: Some(v), .. } = op.ack else { continue };
        if let Some(txn) = aborted_value.get(&v) {
            out.push(Violation {
                rule: "txn-atomicity",
                key: Some(op.key.clone()),
                detail: format!(
                    "get at t={} observed value {v}, which aborted txn {txn} staged and \
                     discarded",
                    op.invoked
                ),
            });
        }
    }

    for (si, snap) in history.snapshots.iter().enumerate() {
        let observed: HashMap<&str, Option<i64>> =
            snap.observed.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        for (key, value) in &snap.observed {
            let Some(value) = value else { continue };
            if let Some(txn) = aborted_value.get(value) {
                out.push(Violation {
                    rule: "txn-atomicity",
                    key: Some(key.clone()),
                    detail: format!(
                        "snapshot {si} (t={}..{}) observed value {value}, which aborted txn \
                         {txn} staged and discarded",
                        snap.invoked, snap.completed
                    ),
                });
            }
            let Some(&txn) = committed_value.get(value) else { continue };
            let commit = commit_at[&txn];
            if commit >= snap.invoked || history.lossy_within(commit, snap.completed) {
                continue;
            }
            for (other, want) in writes_of[&txn] {
                if other == key {
                    continue;
                }
                let Some(&got) = observed.get(other.as_str()) else { continue };
                let fresh_enough = match got {
                    Some(g) if g == *want => true,
                    // A different value is fine iff a transaction that
                    // committed after T wrote it.
                    Some(g) => committed_value.get(&g).is_some_and(|u| commit_at[u] > commit),
                    // Absent is always older than T's committed write.
                    None => false,
                };
                if !fresh_enough {
                    out.push(Violation {
                        rule: "fractured-read",
                        key: Some(other.clone()),
                        detail: format!(
                            "snapshot {si} (t={}..{}) observed txn {txn}'s write {value} on \
                             {key} but {got:?} on {other}; txn {txn} committed atomically at \
                             t={commit} writing {want} there",
                            snap.invoked, snap.completed
                        ),
                    });
                }
            }
        }
    }
}

/// Live document state of one vBucket on one engine, rebuilt by replaying
/// DCP from seqno zero: key → latest value (tombstoned keys excluded).
fn vb_doc_state(engine: &DataEngine, vb: VbId) -> HashMap<String, i64> {
    let high = engine.high_seqno(vb);
    let mut latest: HashMap<String, (u64, Option<i64>)> = HashMap::new();
    if high == SeqNo::ZERO {
        return HashMap::new();
    }
    let Ok(mut stream) = engine.open_dcp_stream(vb, SeqNo::ZERO) else {
        return HashMap::new();
    };
    for item in stream.drain_until(high, Duration::from_secs(5)) {
        let value = if item.is_deletion() {
            None
        } else {
            Some(item.value.as_ref().and_then(|v| v.as_i64()).unwrap_or(i64::MIN))
        };
        let entry = latest.entry(item.key.clone()).or_insert((0, None));
        if item.meta.seqno.0 >= entry.0 {
            *entry = (item.meta.seqno.0, value);
        }
    }
    latest.into_iter().filter_map(|(k, (_, v))| v.map(|v| (k, v))).collect()
}

/// Check live cluster state: topology sanity immediately, then replica
/// convergence within `settle` (the replication pump needs a beat to drain
/// after the workload stops).
pub fn check_cluster(cluster: &Cluster, bucket: &str, settle: Duration) -> Vec<Violation> {
    let mut out = Vec::new();
    let map = match cluster.map(bucket) {
        Ok(m) => m,
        Err(e) => {
            out.push(Violation {
                rule: "ownerless-vbucket",
                key: None,
                detail: format!("no cluster map for bucket {bucket}: {e}"),
            });
            return out;
        }
    };

    // Topology sanity: every vBucket has a live, Active owner.
    for v in 0..map.num_vbuckets() {
        let vb = VbId(v);
        let owner = map.active_node(vb);
        match cluster.node(owner) {
            Ok(node) if node.is_alive() => match node.engine(bucket) {
                Ok(engine) if engine.vb_state(vb) == cbs_kv::VbState::Active => {}
                Ok(engine) => out.push(Violation {
                    rule: "ownerless-vbucket",
                    key: None,
                    detail: format!(
                        "vb {v}: map says active on {owner:?} but engine state is {:?}",
                        engine.vb_state(vb)
                    ),
                }),
                Err(e) => out.push(Violation {
                    rule: "ownerless-vbucket",
                    key: None,
                    detail: format!("vb {v}: active node {owner:?} has no engine: {e}"),
                }),
            },
            Ok(_) => out.push(Violation {
                rule: "ownerless-vbucket",
                key: None,
                detail: format!("vb {v}: active node {owner:?} is dead"),
            }),
            Err(e) => out.push(Violation {
                rule: "ownerless-vbucket",
                key: None,
                detail: format!("vb {v}: active node {owner:?} unknown: {e}"),
            }),
        }
    }
    if !out.is_empty() {
        // Convergence is meaningless against a broken topology.
        return out;
    }

    // Replica convergence: retry until every replica's doc state matches
    // its active's, or the settle deadline expires.
    let deadline = cbs_common::time::Deadline::after(settle);
    loop {
        let mut diverged: Vec<String> = Vec::new();
        for v in 0..map.num_vbuckets() {
            let vb = VbId(v);
            let Ok(active_node) = cluster.node(map.active_node(vb)) else { continue };
            let Ok(active) = active_node.engine(bucket) else { continue };
            let active_state = vb_doc_state(&active, vb);
            for r in map.replica_nodes(vb) {
                let Ok(replica_node) = cluster.node(*r) else {
                    diverged.push(format!("vb {v}: replica {r:?} unreachable"));
                    continue;
                };
                let Ok(replica) = replica_node.engine(bucket) else {
                    diverged.push(format!("vb {v}: replica {r:?} has no engine"));
                    continue;
                };
                let replica_state = vb_doc_state(&replica, vb);
                if replica_state != active_state {
                    diverged.push(format!(
                        "vb {v}: replica {r:?} has {} docs vs active {} (first diff: {})",
                        replica_state.len(),
                        active_state.len(),
                        first_diff(&active_state, &replica_state),
                    ));
                }
            }
        }
        if diverged.is_empty() {
            break;
        }
        if deadline.expired() {
            for d in diverged {
                out.push(Violation { rule: "replica-divergence", key: None, detail: d });
            }
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    out
}

fn first_diff(active: &HashMap<String, i64>, replica: &HashMap<String, i64>) -> String {
    for (k, v) in active {
        match replica.get(k) {
            Some(rv) if rv == v => {}
            Some(rv) => return format!("{k}: active={v} replica={rv}"),
            None => return format!("{k}: active={v} replica=missing"),
        }
    }
    for (k, v) in replica {
        if !active.contains_key(k) {
            return format!("{k}: active=missing replica={v}");
        }
    }
    "(none)".to_string()
}
