//! `Cluster::rebalance` racing `AutoFailover`: a node dies mid-rebalance
//! while the orchestrator's failure monitor promotes its replicas
//! concurrently with the movers' map installs. Both paths mutate the
//! installed cluster map; a clone-mutate-insert on either side loses the
//! other's update and strands a vBucket on a dead or non-Active node.
//!
//! The assertion is the chaos checker's topology rule: after the dust
//! settles, every vBucket must have an alive, `Active` owner and replicas
//! must converge.

use std::sync::Arc;
use std::time::Duration;

use cbs_chaos::{check_cluster, revive_clean, BUCKET};
use cbs_cluster::{Cluster, ClusterConfig, ServiceSet, SmartClient};
use cbs_json::Value;

fn run_race(seed_delay_ms: u64) {
    let cluster = Cluster::homogeneous(4, ClusterConfig::for_test(16, 1));
    cluster.create_bucket(BUCKET).expect("create bucket");

    // Some data so the movers actually backfill.
    let client = SmartClient::connect(Arc::clone(&cluster), BUCKET).expect("connect");
    for i in 0..200 {
        let _ = client.upsert(&format!("race-k{i}"), Value::int(i));
    }

    // Aggressive failure monitor: promotes any dead node within 5ms.
    let monitor = cluster.spawn_auto_failover(Duration::from_millis(5));

    // Add a node so the rebalance has real moves to make, then crash a
    // node mid-rebalance from another thread.
    cluster.add_node(ServiceSet::all()).expect("add node");
    let killer = {
        let cluster = Arc::clone(&cluster);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(seed_delay_ms));
            if let Ok(node) = cluster.node(cbs_common::NodeId(2)) {
                node.kill();
            }
        })
    };
    // The rebalance may legitimately fail when its source/destination
    // dies mid-move — that is not a correctness violation. What must
    // never happen is a vBucket losing its owner.
    let _ = cluster.rebalance(&[]);
    killer.join().expect("killer thread");

    // Let the monitor finish promoting, then heal: revive through the
    // rejoin protocol and rebalance back to full replication.
    std::thread::sleep(Duration::from_millis(50));
    drop(monitor);
    for node in cluster.nodes() {
        if !node.is_alive() {
            revive_clean(&cluster, &node);
        }
    }
    for _ in 0..5 {
        if cluster.rebalance(&[]).is_ok() {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    let violations = check_cluster(&cluster, BUCKET, Duration::from_secs(20));
    assert!(
        violations.is_empty(),
        "rebalance × auto-failover race (kill delay {seed_delay_ms}ms) broke the cluster:\n{}",
        violations.iter().map(|v| format!("  {v}\n")).collect::<String>(),
    );
}

#[test]
fn chaos_rebalance_vs_autofailover_early_kill() {
    run_race(2);
}

#[test]
fn chaos_rebalance_vs_autofailover_mid_kill() {
    run_race(15);
}

#[test]
fn chaos_rebalance_vs_autofailover_late_kill() {
    run_race(40);
}
