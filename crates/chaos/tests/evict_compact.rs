//! Cache eviction + storage compaction concurrent with a chaos workload:
//! a tiny cache quota (full eviction) forces background fetches through
//! the storage layer while a compaction loop rewrites the files under the
//! workload and the fault schedule. Consistency rules must hold
//! regardless.

use std::time::Duration;

use cbs_chaos::{expect_clean, run_chaos, ChaosConfig};

fn pressured(seed: u64) -> ChaosConfig {
    let mut c = ChaosConfig::new(seed);
    c.schedule = "drop-delay-failover".to_string();
    c.cache_quota = Some(2 << 10); // ~2 KiB per node: constant eviction
    c.keys_per_worker = 24; // widen the resident set past the quota
    c.compact_during = true;
    c.ops = 400;
    c.settle = Duration::from_secs(20);
    c
}

#[test]
fn chaos_eviction_and_compaction_under_faults() {
    let cfg = pressured(0xE71C);
    let outcome = run_chaos(&cfg);
    assert!(
        outcome.violations.is_empty(),
        "eviction/compaction chaos run failed:\n{}",
        outcome.report()
    );
    // The run must have actually exercised the pressure paths, or the
    // test is vacuous.
    let summary =
        outcome.events.iter().find(|e| e.contains("storage:")).expect("storage summary event");
    let vacuous = summary.contains("evictions=0");
    assert!(!vacuous, "cache quota never forced an eviction: {summary}");
}

#[test]
fn chaos_eviction_storm_schedule() {
    let mut cfg = pressured(0xE72D);
    cfg.schedule = "kill-revive-storm".to_string();
    cfg.ops = 500;
    expect_clean(&cfg);
}
