//! Checker rules against hand-built histories: each rule must fire on its
//! violation shape and stay quiet on legal anomalies (failover rollback of
//! non-durable writes, unknown-outcome tails).

use cbs_chaos::{check_history, Ack, EventRecord, History, OpKind, OpRecord};

fn put(key: &str, value: i64, durable: bool, t: u64, seqno: u64) -> OpRecord {
    OpRecord {
        key: key.to_string(),
        kind: OpKind::Put { value, durable },
        invoked: t,
        completed: t + 1,
        ack: Ack::Ok { vb: 0, seqno, observed: Some(value) },
    }
}

fn get(key: &str, observed: Option<i64>, t: u64) -> OpRecord {
    OpRecord {
        key: key.to_string(),
        kind: OpKind::Get,
        invoked: t,
        completed: t + 1,
        ack: Ack::Ok { vb: 0, seqno: 0, observed },
    }
}

fn failover(t: u64) -> EventRecord {
    EventRecord { at: t, what: "failover".to_string(), lossy: true }
}

fn rules(h: &History) -> Vec<&'static str> {
    let mut r: Vec<&'static str> = check_history(h).into_iter().map(|v| v.rule).collect();
    r.sort_unstable();
    r.dedup();
    r
}

#[test]
fn clean_history_passes() {
    let h = History {
        txns: vec![],
        snapshots: vec![],
        ops: vec![
            put("k", 1, false, 1, 1),
            get("k", Some(1), 10),
            put("k", 2, false, 20, 2),
            get("k", Some(2), 30),
        ],
        events: vec![],
    };
    assert!(check_history(&h).is_empty());
}

#[test]
fn phantom_read_is_flagged() {
    let h = History {
        txns: vec![],
        snapshots: vec![],
        ops: vec![put("k", 1, false, 1, 1), get("k", Some(999), 10)],
        events: vec![],
    };
    assert_eq!(rules(&h), vec!["phantom-read"]);
}

#[test]
fn stale_read_is_flagged_without_failover() {
    // Acked write of 2, later read still sees 1: stale.
    let h = History {
        txns: vec![],
        snapshots: vec![],
        ops: vec![put("k", 1, false, 1, 1), put("k", 2, false, 10, 2), get("k", Some(1), 20)],
        events: vec![],
    };
    assert_eq!(rules(&h), vec!["stale-read"]);
}

#[test]
fn read_missing_acked_write_entirely_is_flagged() {
    // Key never existed per the read, but a write was acked.
    let h = History {
        txns: vec![],
        snapshots: vec![],
        ops: vec![put("k", 1, false, 1, 1), get("k", None, 20)],
        events: vec![],
    };
    assert_eq!(rules(&h), vec!["stale-read"]);
}

#[test]
fn failover_may_roll_back_non_durable_tail() {
    // Non-durable acked write of 2 after durable 1; failover between the
    // write and the read: seeing 1 again is legal.
    let h = History {
        txns: vec![],
        snapshots: vec![],
        ops: vec![put("k", 1, true, 1, 1), put("k", 2, false, 10, 2), get("k", Some(1), 30)],
        events: vec![failover(20)],
    };
    assert!(check_history(&h).is_empty(), "rollback to durable floor must be legal");
}

#[test]
fn failover_cannot_roll_back_past_durable_floor() {
    // Reading pre-durable state (absent) after a durable ack: data loss.
    let h = History {
        txns: vec![],
        snapshots: vec![],
        ops: vec![put("k", 1, true, 1, 1), get("k", None, 30)],
        events: vec![failover(20)],
    };
    assert_eq!(rules(&h), vec!["durable-floor"]);
}

#[test]
fn durable_floor_binds_older_values_too() {
    let h = History {
        txns: vec![],
        snapshots: vec![],
        ops: vec![
            put("k", 1, false, 1, 1),
            put("k", 2, true, 10, 2),
            put("k", 3, false, 20, 3),
            get("k", Some(1), 40), // older than the durable 2: illegal
        ],
        events: vec![failover(30)],
    };
    assert_eq!(rules(&h), vec!["durable-floor"]);
}

#[test]
fn unknown_outcome_tail_is_permissive() {
    // A Maybe write may or may not be visible; both reads are legal.
    let maybe = OpRecord {
        key: "k".to_string(),
        kind: OpKind::Put { value: 2, durable: false },
        invoked: 10,
        completed: 11,
        ack: Ack::Maybe("timeout".to_string()),
    };
    for observed in [Some(1), Some(2)] {
        let h = History {
            txns: vec![],
            snapshots: vec![],
            ops: vec![put("k", 1, false, 1, 1), maybe.clone(), get("k", observed, 20)],
            events: vec![],
        };
        assert!(check_history(&h).is_empty(), "observed {observed:?} must be legal");
    }
}

#[test]
fn failed_write_must_not_be_visible() {
    let failed = OpRecord {
        key: "k".to_string(),
        kind: OpKind::Put { value: 2, durable: false },
        invoked: 10,
        completed: 11,
        ack: Ack::Failed("cas mismatch".to_string()),
    };
    let h = History {
        txns: vec![],
        snapshots: vec![],
        ops: vec![put("k", 1, false, 1, 1), failed, get("k", Some(2), 20)],
        events: vec![],
    };
    assert_eq!(rules(&h), vec!["stale-read"], "a definitely-failed write must stay invisible");
}

#[test]
fn seqno_regression_is_flagged_without_failover() {
    // Two sequential acked mutations in one vBucket with non-increasing
    // seqnos and no failover between them.
    let h = History {
        txns: vec![],
        snapshots: vec![],
        ops: vec![put("a", 1, false, 1, 5), put("b", 2, false, 10, 3)],
        events: vec![],
    };
    assert_eq!(rules(&h), vec!["seqno-regression"]);
}

#[test]
fn seqno_rewind_is_legal_across_failover() {
    let h = History {
        txns: vec![],
        snapshots: vec![],
        ops: vec![put("a", 1, false, 1, 5), put("b", 2, false, 10, 3)],
        events: vec![failover(5)],
    };
    assert!(check_history(&h).is_empty(), "failover legitimately rewinds the seqno lineage");
}

#[test]
fn seqno_rule_ignores_concurrent_ops() {
    // Overlapping ops are unordered; equal seqnos must not be flagged.
    let a = put("a", 1, false, 1, 5);
    let mut b = put("b", 2, false, 1, 5);
    b.completed = 3;
    let h = History { txns: vec![], snapshots: vec![], ops: vec![a, b], events: vec![] };
    assert!(check_history(&h).is_empty());
}

#[test]
fn delete_then_read_none_is_clean() {
    let del = OpRecord {
        key: "k".to_string(),
        kind: OpKind::Delete,
        invoked: 10,
        completed: 11,
        ack: Ack::Ok { vb: 0, seqno: 2, observed: None },
    };
    let h = History {
        txns: vec![],
        snapshots: vec![],
        ops: vec![put("k", 1, false, 1, 1), del, get("k", None, 20)],
        events: vec![],
    };
    assert!(check_history(&h).is_empty());
}
