//! Teeth tests for the transactional consistency rules: deliberately
//! plant a torn commit (half a write set drained, commit recorded anyway)
//! and an aborted-write leak, and prove `fractured-read` / `txn-atomicity`
//! catch them — then show the genuine coordinator path runs clean. A
//! checker that passes torn commits is worse than no checker.

use std::sync::Arc;

use cbs_chaos::{
    check_history, run_txn_chaos, txn_key, txn_value, HistoryRecorder, TxnChaosConfig,
    TxnEventKind, BUCKET,
};
use cbs_cluster::{Cluster, ClusterConfig, SmartClient};
use cbs_json::Value;

/// A buggy coordinator: drains only the first key of a two-key committed
/// transaction (a torn commit), then lets a snapshot observe the tear.
#[test]
fn txn_checker_catches_torn_commit() {
    let cluster = Cluster::homogeneous(3, ClusterConfig::for_test(8, 1));
    cluster.create_bucket(BUCKET).expect("create bucket");
    let client = SmartClient::connect(Arc::clone(&cluster), BUCKET).expect("connect");
    let rec = HistoryRecorder::new();

    // Transaction 1 writes both keys; its full drain is the baseline.
    let writes1 = vec![(txn_key(0), txn_value(1, 0)), (txn_key(1), txn_value(1, 1))];
    rec.txn_event(1, TxnEventKind::Begin);
    for (key, value) in &writes1 {
        client.upsert(key, Value::int(*value)).expect("drain txn 1");
    }
    rec.txn_event(1, TxnEventKind::Commit { writes: writes1 });

    // Transaction 2 claims to commit both keys but the BUGGY drain stops
    // after the first — key 1 still holds txn 1's value.
    let writes2 = vec![(txn_key(0), txn_value(2, 0)), (txn_key(1), txn_value(2, 1))];
    rec.txn_event(2, TxnEventKind::Begin);
    client.upsert(&txn_key(0), Value::int(txn_value(2, 0))).expect("partial drain");
    rec.txn_event(2, TxnEventKind::Commit { writes: writes2 });

    // A later snapshot reads both keys and observes the tear.
    let invoked = rec.tick();
    let observed = (0..2)
        .map(|k| {
            let key = txn_key(k);
            let value = client.get(&key).ok().and_then(|r| r.value.as_value().as_i64());
            (key, value)
        })
        .collect();
    rec.snapshot(invoked, observed);

    let violations = check_history(&rec.finish());
    assert!(
        violations.iter().any(|v| v.rule == "fractured-read"),
        "torn commit not caught; violations: {violations:?}"
    );
}

/// A buggy scheduler that lets an aborted transaction's staged write reach
/// the engine must trip `txn-atomicity` — via a plain get AND a snapshot.
#[test]
fn txn_checker_catches_aborted_write_leak() {
    let cluster = Cluster::homogeneous(3, ClusterConfig::for_test(8, 1));
    cluster.create_bucket(BUCKET).expect("create bucket");
    let client = SmartClient::connect(Arc::clone(&cluster), BUCKET).expect("connect");
    let rec = HistoryRecorder::new();

    let writes = vec![(txn_key(3), txn_value(7, 3))];
    rec.txn_event(7, TxnEventKind::Begin);
    // BUG: the staged write escapes to the engine even though the
    // transaction aborts.
    client.upsert(&txn_key(3), Value::int(txn_value(7, 3))).expect("leak");
    rec.txn_event(7, TxnEventKind::Abort { writes });

    let invoked = rec.tick();
    let leaked = client.get(&txn_key(3)).ok().and_then(|r| r.value.as_value().as_i64());
    rec.record(
        &txn_key(3),
        cbs_chaos::OpKind::Get,
        invoked,
        cbs_chaos::Ack::Ok { vb: 0, seqno: 0, observed: leaked },
    );
    let invoked = rec.tick();
    rec.snapshot(invoked, vec![(txn_key(3), leaked)]);

    let violations = check_history(&rec.finish());
    let atomicity = violations.iter().filter(|v| v.rule == "txn-atomicity").count();
    assert!(
        atomicity >= 2,
        "aborted-write leak should be flagged for the get and the snapshot; \
         violations: {violations:?}"
    );
}

/// The genuine coordinator path — parallel scheduler, real drain, snapshot
/// transactions, deliberate bails — must produce zero violations.
#[test]
fn txn_chaos_genuine_run_is_clean() {
    let outcome = run_txn_chaos(&TxnChaosConfig::new(0xC0FFEE));
    assert!(outcome.violations.is_empty(), "{}", outcome.report());
    assert!(outcome.commits > 0, "workload committed nothing: {}", outcome.report());
    assert!(outcome.aborts > 0, "bails should produce aborts: {}", outcome.report());
    assert!(
        !outcome.history.snapshots.is_empty(),
        "snapshot transactions should have recorded observations"
    );
}

/// Same scheduler under durable drains: every commit is replicated before
/// acknowledgement, and the history must still be clean.
#[test]
fn txn_chaos_durable_run_is_clean() {
    let mut cfg = TxnChaosConfig::new(0xD00D);
    cfg.durable = true;
    cfg.batches = 3;
    let outcome = run_txn_chaos(&cfg);
    assert!(outcome.violations.is_empty(), "{}", outcome.report());
    assert!(outcome.commits > 0, "{}", outcome.report());
}
