//! Replay entry point. Chaos failures print a one-line command of the
//! form
//!
//! ```text
//! CHAOS_SEED=… CHAOS_OPS=… … cargo test -p cbs-chaos --test replay -- --ignored --nocapture
//! ```
//!
//! which lands here: the full config is rebuilt from the environment and
//! the run repeats deterministically.

use cbs_chaos::{run_chaos, ChaosConfig};

#[test]
#[ignore = "replay entry point — drive with CHAOS_* env vars from a failure report"]
fn chaos_replay() {
    let cfg = ChaosConfig::new(0).from_env();
    println!("replaying: {}", cfg.replay_command());
    let outcome = run_chaos(&cfg);
    println!("{}", outcome.report());
    assert!(outcome.violations.is_empty(), "replayed failure:\n{}", outcome.report());
}
