//! Teeth test: deliberately re-introduce a known failover bug — promoting
//! a node that *skipped replica promotion* (it never held the data) — and
//! prove the history checker catches the resulting loss of durably-acked
//! writes. A checker that passes buggy failovers is worse than no checker.

use std::sync::Arc;
use std::time::Duration;

use cbs_chaos::{check_history, Ack, HistoryRecorder, OpKind, BUCKET};
use cbs_cluster::{Cluster, ClusterConfig, Durability, SmartClient};
use cbs_common::VbId;
use cbs_json::Value;
use cbs_kv::VbState;

#[test]
fn chaos_checker_catches_skipped_replica_promotion() {
    let cluster = Cluster::homogeneous(3, ClusterConfig::for_test(8, 1));
    cluster.create_bucket(BUCKET).expect("create bucket");
    let client = SmartClient::connect(Arc::clone(&cluster), BUCKET).expect("connect");
    let rec = HistoryRecorder::new();

    // Durably-acked writes across every vBucket.
    let durability = Durability { replicate_to: 1, persist_to_master: false };
    for i in 0..24 {
        let key = format!("teeth-k{i}");
        let value = 1_000 + i;
        let invoked = rec.tick();
        let m = client
            .upsert_durable(&key, Value::int(value), durability, Duration::from_secs(5))
            .expect("durable write in a healthy cluster");
        rec.record(
            &key,
            OpKind::Put { value, durable: true },
            invoked,
            Ack::Ok { vb: m.vb.0, seqno: m.seqno.0, observed: Some(value) },
        );
    }

    // Crash a node, then perform the BUGGY failover by hand: instead of
    // promoting the replica (which holds the data), route every vBucket
    // the victim owned to some *other* alive node that never replicated
    // it. This is exactly the "skipped replica promotion" defect.
    let victim = cluster.nodes().into_iter().find(|n| n.id().0 == 1).expect("node 1");
    victim.kill();
    rec.event("kill node 1", false);

    let mut map = cluster.map(BUCKET).expect("map");
    rec.event("BUGGY failover node 1 begin", true);
    let mut moved = 0;
    for v in 0..map.num_vbuckets() {
        let vb = VbId(v);
        if map.active_node(vb) != victim.id() {
            continue;
        }
        let wrong = cluster
            .nodes()
            .into_iter()
            .find(|n| {
                n.is_alive() && n.id() != victim.id() && !map.replica_nodes(vb).contains(&n.id())
            })
            .expect("an alive non-replica node exists in a 3-node cluster");
        wrong.engine(BUCKET).expect("engine").set_vb_state(vb, VbState::Active);
        map.active[vb.index()] = wrong.id();
        moved += 1;
    }
    assert!(moved > 0, "victim owned no vBuckets; test setup is wrong");
    map.epoch += 1;
    cluster.debug_install_map(BUCKET, map).expect("install corrupted map");
    rec.event("BUGGY failover node 1 done (skipped replica promotion)", true);

    // Read everything back through a fresh client (new map).
    let client = SmartClient::connect(Arc::clone(&cluster), BUCKET).expect("reconnect");
    for i in 0..24 {
        let key = format!("teeth-k{i}");
        let vb = client.vb_for_key(&key).0;
        let invoked = rec.tick();
        let ack = match client.get(&key) {
            Ok(r) => Ack::Ok { vb, seqno: 0, observed: r.value.as_i64() },
            Err(cbs_common::Error::KeyNotFound(_)) => Ack::Ok { vb, seqno: 0, observed: None },
            Err(e) => Ack::Failed(format!("{e}")),
        };
        rec.record(&key, OpKind::Get, invoked, ack);
    }

    let violations = check_history(&rec.finish());
    assert!(
        violations.iter().any(|v| v.rule == "durable-floor"),
        "checker failed to catch durably-acked writes lost by a skipped replica promotion; \
         violations: {violations:?}"
    );
}

/// One deterministic buggy-failover run: plant a marker event, write
/// durably, crash node 1 through the cluster API (so the kill lands in the
/// flight recorder), install the skipped-replica-promotion map, and return
/// the checker's violations plus the flight-recorder dump.
fn buggy_failover_with_flight_recorder(seed: u64) -> (Vec<cbs_chaos::Violation>, String) {
    let cluster = Cluster::homogeneous(3, ClusterConfig::for_test(8, 1));
    cluster.create_bucket(BUCKET).expect("create bucket");
    // The planted event the postmortem dump must surface.
    cluster.events_registry().record_event_with_help(
        "cluster.events.planted_marker",
        "teeth-test marker proving the dump covers pre-failure events",
        &[("seed", seed.to_string())],
    );
    let client = SmartClient::connect(Arc::clone(&cluster), BUCKET).expect("connect");
    let rec = HistoryRecorder::new();

    let durability = Durability { replicate_to: 1, persist_to_master: false };
    for i in 0..24 {
        let key = format!("teeth-k{i}");
        let value = 1_000 + i;
        let invoked = rec.tick();
        let m = client
            .upsert_durable(&key, Value::int(value), durability, Duration::from_secs(5))
            .expect("durable write in a healthy cluster");
        rec.record(
            &key,
            OpKind::Put { value, durable: true },
            invoked,
            Ack::Ok { vb: m.vb.0, seqno: m.seqno.0, observed: Some(value) },
        );
    }

    let victim = cluster.nodes().into_iter().find(|n| n.id().0 == 1).expect("node 1");
    cluster.kill_node(victim.id()).expect("kill node 1");
    rec.event("kill node 1", false);

    let mut map = cluster.map(BUCKET).expect("map");
    rec.event("BUGGY failover node 1 begin", true);
    let mut moved = 0;
    for v in 0..map.num_vbuckets() {
        let vb = VbId(v);
        if map.active_node(vb) != victim.id() {
            continue;
        }
        let wrong = cluster
            .nodes()
            .into_iter()
            .find(|n| {
                n.is_alive() && n.id() != victim.id() && !map.replica_nodes(vb).contains(&n.id())
            })
            .expect("an alive non-replica node exists in a 3-node cluster");
        wrong.engine(BUCKET).expect("engine").set_vb_state(vb, VbState::Active);
        map.active[vb.index()] = wrong.id();
        moved += 1;
    }
    assert!(moved > 0, "victim owned no vBuckets; test setup is wrong");
    map.epoch += 1;
    cluster.debug_install_map(BUCKET, map).expect("install corrupted map");
    rec.event("BUGGY failover node 1 done (skipped replica promotion)", true);

    let client = SmartClient::connect(Arc::clone(&cluster), BUCKET).expect("reconnect");
    for i in 0..24 {
        let key = format!("teeth-k{i}");
        let vb = client.vb_for_key(&key).0;
        let invoked = rec.tick();
        let ack = match client.get(&key) {
            Ok(r) => Ack::Ok { vb, seqno: 0, observed: r.value.as_i64() },
            Err(cbs_common::Error::KeyNotFound(_)) => Ack::Ok { vb, seqno: 0, observed: None },
            Err(e) => Ack::Failed(format!("{e}")),
        };
        rec.record(&key, OpKind::Get, invoked, ack);
    }

    let violations = check_history(&rec.finish());
    // The checker failed the run: dump the flight recorder the way
    // `run_chaos` does, and verify the on-disk bytes match the render.
    let dump = cbs_chaos::flight_dump(&cluster, seed);
    let path = cbs_chaos::write_flight_dump(&cluster, seed).expect("dump written");
    let on_disk = std::fs::read_to_string(&path).expect("read dump back");
    assert_eq!(on_disk, dump, "on-disk dump differs from the render");
    (violations, dump)
}

#[test]
fn teeth_failure_dumps_byte_identical_flight_recorder_per_seed() {
    let seed = 42;
    let (v1, d1) = buggy_failover_with_flight_recorder(seed);
    let (v2, d2) = buggy_failover_with_flight_recorder(seed);
    for v in [&v1, &v2] {
        assert!(
            v.iter().any(|v| v.rule == "durable-floor"),
            "checker failed to catch the planted failover bug; violations: {v:?}"
        );
    }
    assert_eq!(d1, d2, "flight-recorder dump must be byte-identical per seed");
    assert!(d1.contains("seed=42"), "dump names its seed:\n{d1}");
    assert!(
        d1.contains("cluster.events.planted_marker"),
        "dump must contain the planted event:\n{d1}"
    );
    assert!(
        d1.contains("cluster.events.node_killed"),
        "the kill that preceded the failure is on the timeline:\n{d1}"
    );
}

#[test]
fn chaos_checker_passes_correct_failover() {
    // Control group: the same scenario with the *real* failover must be
    // violation-free (replica promotion preserves the durable writes).
    let cluster = Cluster::homogeneous(3, ClusterConfig::for_test(8, 1));
    cluster.create_bucket(BUCKET).expect("create bucket");
    let client = SmartClient::connect(Arc::clone(&cluster), BUCKET).expect("connect");
    let rec = HistoryRecorder::new();

    let durability = Durability { replicate_to: 1, persist_to_master: false };
    for i in 0..24 {
        let key = format!("teeth-k{i}");
        let value = 1_000 + i;
        let invoked = rec.tick();
        let m = client
            .upsert_durable(&key, Value::int(value), durability, Duration::from_secs(5))
            .expect("durable write in a healthy cluster");
        rec.record(
            &key,
            OpKind::Put { value, durable: true },
            invoked,
            Ack::Ok { vb: m.vb.0, seqno: m.seqno.0, observed: Some(value) },
        );
    }

    let victim = cluster.nodes().into_iter().find(|n| n.id().0 == 1).expect("node 1");
    victim.kill();
    rec.event("kill node 1", false);
    rec.event("failover node 1 begin", true);
    cluster.failover(victim.id()).expect("failover");
    rec.event("failover node 1 done", true);

    let client = SmartClient::connect(Arc::clone(&cluster), BUCKET).expect("reconnect");
    for i in 0..24 {
        let key = format!("teeth-k{i}");
        let vb = client.vb_for_key(&key).0;
        let invoked = rec.tick();
        let ack = match client.get(&key) {
            Ok(r) => Ack::Ok { vb, seqno: 0, observed: r.value.as_i64() },
            Err(cbs_common::Error::KeyNotFound(_)) => Ack::Ok { vb, seqno: 0, observed: None },
            Err(e) => Ack::Failed(format!("{e}")),
        };
        rec.record(&key, OpKind::Get, invoked, ack);
    }

    let violations = check_history(&rec.finish());
    assert!(violations.is_empty(), "correct failover flagged: {violations:?}");
}
