//! Replayability: the whole point of the harness is that a printed seed
//! reconstructs the run. Fault decisions must be pure functions of
//! (seed, site), and full runs at the same seed must pass identically.

use std::time::Duration;

use cbs_chaos::{run_chaos, ChaosConfig, FaultPlan, FaultSpec, Profile};
use cbs_cluster::FaultInjector;
use cbs_common::{NodeId, SeqNo, VbId};

#[test]
fn chaos_fault_decisions_replay_exactly() {
    // Two independently-built plans from one seed agree on every decision
    // for a broad probe grid — including the injected delay durations.
    let a = FaultPlan::new(FaultSpec::lossy(0xDEC0DE));
    let b = FaultPlan::new(FaultSpec::lossy(0xDEC0DE));
    for vb in 0..32u16 {
        for seqno in 1..64u64 {
            for dst in 0..4u32 {
                for attempt in 0..3u32 {
                    assert_eq!(
                        a.repl_delivery(VbId(vb), SeqNo(seqno), NodeId(dst), attempt),
                        b.repl_delivery(VbId(vb), SeqNo(seqno), NodeId(dst), attempt),
                    );
                }
            }
        }
    }
}

#[test]
fn chaos_same_seed_runs_are_both_clean() {
    let mut cfg = ChaosConfig::new(411);
    cfg.ops = 150;
    cfg.settle = Duration::from_secs(15);
    let first = run_chaos(&cfg);
    let second = run_chaos(&cfg);
    assert!(
        first.violations.is_empty() && second.violations.is_empty(),
        "same-seed replays diverged or failed:\nfirst:\n{}\nsecond:\n{}",
        first.report(),
        second.report(),
    );
    assert_eq!(first.seed, second.seed);
    assert_eq!(first.replay, second.replay, "replay command must be stable");
}

#[test]
fn chaos_replay_command_round_trips_through_env() {
    let mut cfg = ChaosConfig::new(77);
    cfg.ops = 120;
    cfg.nodes = 4;
    cfg.replicas = 2;
    cfg.profile = Profile::Jittery;
    cfg.schedule = "kill-revive-storm".to_string();
    cfg.cache_quota = Some(1 << 16);
    cfg.compact_during = true;
    let cmd = cfg.replay_command();
    for needle in [
        "CHAOS_SEED=77",
        "CHAOS_OPS=120",
        "CHAOS_NODES=4",
        "CHAOS_REPLICAS=2",
        "CHAOS_PROFILE=jittery",
        "CHAOS_SCHEDULE=kill-revive-storm",
        "CHAOS_QUOTA=65536",
        "CHAOS_COMPACT=1",
        "cargo test -p cbs-chaos --test replay",
    ] {
        assert!(cmd.contains(needle), "replay command {cmd:?} missing {needle}");
    }
}
