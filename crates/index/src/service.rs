//! The Index Manager and the DCP feed pump.
//!
//! "The Index Manager resides within the indexing service and is
//! responsible for receiving requests for indexing operations (e.g.,
//! creation, deletion, maintenance, scan, lookup)" (§4.3.4).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cbs_common::sync::{rank, OrderedMutex, OrderedRwLock};
use cbs_common::{Error, Result, SeqNo, VbId};
use cbs_dcp::{BackfillSource, DcpItem};
use cbs_obs::{span, Counter, Registry};

use crate::defs::{IndexDef, IndexKey, ScanConsistency, ScanRange};
use crate::indexer::{IndexCardinality, IndexEntry, Indexer, IndexerStats};
use crate::projector::{ProjectedOp, Projector, Router};

/// Lifecycle state of an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexState {
    /// Created with `defer_build`; not maintained, not scannable.
    Deferred,
    /// Catch-up build in progress; maintained but not yet scannable.
    Building,
    /// Fully built and maintained.
    Online,
}

struct IndexInstance {
    router: Arc<Router>,
    state: OrderedMutex<IndexState>,
}

/// Manages every GSI hosted by one index-service node.
pub struct IndexManager {
    num_vbuckets: u16,
    log_dir: PathBuf,
    /// (keyspace, name) → instance.
    indexes: OrderedRwLock<HashMap<(String, String), Arc<IndexInstance>>>,
    registry: Arc<Registry>,
    scans: Arc<Counter>,
    lookups: Arc<Counter>,
    items_applied: Arc<Counter>,
    builds: Arc<Counter>,
}

impl IndexManager {
    /// Create a manager; `log_dir` hosts Standard-mode index logs.
    pub fn new(num_vbuckets: u16, log_dir: PathBuf) -> IndexManager {
        let registry = Arc::new(Registry::new("index"));
        IndexManager {
            num_vbuckets,
            log_dir,
            indexes: OrderedRwLock::new(rank::INDEX_REGISTRY, HashMap::new()),
            scans: registry.counter("index.manager.scans"),
            lookups: registry.counter("index.manager.lookups"),
            items_applied: registry.counter("index.manager.items_applied"),
            builds: registry.counter("index.manager.builds"),
            registry,
        }
    }

    /// The index service's metrics registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Number of source vBuckets.
    pub fn num_vbuckets(&self) -> u16 {
        self.num_vbuckets
    }

    /// CREATE INDEX: register the definition and its partition indexers.
    /// Returns an error on duplicate name. The index starts `Deferred` if
    /// `def.deferred`, else `Building` (scannable after
    /// [`IndexManager::build`] or a catch-up via feed).
    pub fn create_index(&self, def: IndexDef) -> Result<()> {
        let key = (def.keyspace.clone(), def.name.clone());
        // Partition indexers open log files; build them outside the
        // registry lock so DDL doesn't stall concurrent scans, then
        // re-check for a racing duplicate at insert time.
        if self.indexes.read().contains_key(&key) {
            return Err(Error::Index(format!(
                "index {} already exists on {}",
                def.name, def.keyspace
            )));
        }
        let mut partitions = Vec::with_capacity(def.num_partitions());
        for p in 0..def.num_partitions() {
            partitions.push(Arc::new(Indexer::new(
                self.num_vbuckets,
                def.storage,
                Some(self.log_dir.clone()),
                &format!("{}-{}-p{}", def.keyspace, def.name, p),
            )?));
        }
        let state = if def.deferred { IndexState::Deferred } else { IndexState::Building };
        let mut map = self.indexes.write();
        if map.contains_key(&key) {
            return Err(Error::Index(format!(
                "index {} already exists on {}",
                def.name, def.keyspace
            )));
        }
        map.insert(
            key,
            Arc::new(IndexInstance {
                router: Arc::new(Router::new(def, partitions)),
                state: OrderedMutex::new(rank::INDEX_STATE, state),
            }),
        );
        Ok(())
    }

    /// DROP INDEX.
    pub fn drop_index(&self, keyspace: &str, name: &str) -> Result<()> {
        self.indexes
            .write()
            .remove(&(keyspace.to_string(), name.to_string()))
            .map(|_| ())
            .ok_or_else(|| Error::Index(format!("no such index: {name} on {keyspace}")))
    }

    /// List definitions for a keyspace (the Query Catalog's view, §4.3.5).
    pub fn list(&self, keyspace: &str) -> Vec<IndexDef> {
        self.indexes
            .read()
            .iter()
            .filter(|((ks, _), _)| ks == keyspace)
            .map(|(_, inst)| inst.router.def().clone())
            .collect()
    }

    /// List only scannable (Online) definitions — what the planner may use.
    pub fn list_online(&self, keyspace: &str) -> Vec<IndexDef> {
        self.indexes
            .read()
            .iter()
            .filter(|((ks, _), inst)| ks == keyspace && *inst.state.lock() == IndexState::Online)
            .map(|(_, inst)| inst.router.def().clone())
            .collect()
    }

    /// Current state of an index.
    pub fn state(&self, keyspace: &str, name: &str) -> Result<IndexState> {
        Ok(*self.instance(keyspace, name)?.state.lock())
    }

    fn instance(&self, keyspace: &str, name: &str) -> Result<Arc<IndexInstance>> {
        self.indexes
            .read()
            .get(&(keyspace.to_string(), name.to_string()))
            .cloned()
            .ok_or_else(|| Error::Index(format!("no such index: {name} on {keyspace}")))
    }

    /// Catch-up build from a backfill source (BUILD INDEX for deferred
    /// indexes; also the initial build when an index is created over
    /// existing data). Safe to run while the live feed is applying newer
    /// mutations — per-document seqno guards make replay idempotent.
    pub fn build(&self, keyspace: &str, name: &str, source: &dyn BackfillSource) -> Result<()> {
        let _s = span("index.manager.build");
        self.builds.inc();
        let inst = self.instance(keyspace, name)?;
        {
            let mut st = inst.state.lock();
            if *st == IndexState::Online {
                return Ok(());
            }
            *st = IndexState::Building;
        }
        for vb in 0..self.num_vbuckets {
            let (items, high) = source.backfill(VbId(vb), SeqNo::ZERO)?;
            for item in items {
                inst.router.route(Projector::project(inst.router.def(), &item));
            }
            inst.router.advance(VbId(vb), high);
        }
        *inst.state.lock() = IndexState::Online;
        Ok(())
    }

    /// Convenience: CREATE INDEX + immediate build (the common
    /// non-deferred path).
    pub fn create_and_build(&self, def: IndexDef, source: &dyn BackfillSource) -> Result<()> {
        let (ks, name) = (def.keyspace.clone(), def.name.clone());
        let deferred = def.deferred;
        self.create_index(def)?;
        if !deferred {
            self.build(&ks, &name, source)?;
        }
        Ok(())
    }

    /// Apply one DCP item to every non-deferred index of its keyspace
    /// (projector → router, Figure 9).
    pub fn apply_dcp(&self, keyspace: &str, item: &DcpItem) {
        self.items_applied.inc();
        let instances: Vec<Arc<IndexInstance>> = self
            .indexes
            .read()
            .iter()
            .filter(|((ks, _), _)| ks == keyspace)
            .map(|(_, inst)| Arc::clone(inst))
            .collect();
        for inst in instances {
            if *inst.state.lock() == IndexState::Deferred {
                continue;
            }
            let op: ProjectedOp = Projector::project(inst.router.def(), item);
            inst.router.route(op);
        }
    }

    /// Scan an index: wait for the requested consistency on every
    /// partition, then scatter/gather ("it does scatter/gather for queries
    /// in case of a partitioned GSI index", §4.3.4) and merge in collation
    /// order.
    pub fn scan(
        &self,
        keyspace: &str,
        name: &str,
        range: &ScanRange,
        consistency: &ScanConsistency,
        timeout: Duration,
        limit: usize,
    ) -> Result<Vec<IndexEntry>> {
        let _s = span("index.manager.scan");
        self.scans.inc();
        let inst = self.instance(keyspace, name)?;
        if *inst.state.lock() != IndexState::Online {
            return Err(Error::Index(format!("index {name} is not online")));
        }
        let partitions = inst.router.partitions();
        for p in partitions {
            p.wait_consistent(consistency, timeout)?;
        }
        // Scatter...
        let partials: Vec<Vec<IndexEntry>> =
            partitions.iter().map(|p| p.scan(range, limit)).collect();
        // ...gather: k-way merge by collation order.
        let mut merged = merge_sorted(partials);
        if limit > 0 && merged.len() > limit {
            merged.truncate(limit);
        }
        Ok(merged)
    }

    /// Exact composite-key lookup.
    pub fn lookup(
        &self,
        keyspace: &str,
        name: &str,
        key: &IndexKey,
        consistency: &ScanConsistency,
        timeout: Duration,
    ) -> Result<Vec<String>> {
        let _s = span("index.manager.lookup");
        self.lookups.inc();
        let inst = self.instance(keyspace, name)?;
        if *inst.state.lock() != IndexState::Online {
            return Err(Error::Index(format!("index {name} is not online")));
        }
        let p = inst.router.def().partition_for(key.leading());
        let partition = &inst.router.partitions()[p];
        partition.wait_consistent(consistency, timeout)?;
        Ok(partition.lookup(key))
    }

    /// Aggregate cardinality across an index's partitions: entry counts
    /// sum; leading-key bounds take the min/max across partitions. Feeds
    /// the query service's statistics layer (selectivity estimation).
    ///
    /// `distinct_keys` is an **upper bound**, not an exact count:
    /// documents are routed to partitions by id, not by key, so the same
    /// composite key can appear in several partitions and the
    /// per-partition sum double-counts it. Equality selectivity derived
    /// as `1 / distinct_keys` therefore *underestimates* the matching
    /// rows, biasing the optimizer toward index scans — conservative for
    /// the bias we want, and documented in DESIGN.md §13.
    pub fn index_cardinality(&self, keyspace: &str, name: &str) -> Result<IndexCardinality> {
        let inst = self.instance(keyspace, name)?;
        let mut total = IndexCardinality::default();
        for p in inst.router.partitions() {
            let c = p.cardinality();
            total.entries += c.entries;
            total.distinct_keys += c.distinct_keys;
            total.min_leading = match (total.min_leading.take(), c.min_leading) {
                (Some(a), Some(b)) => {
                    Some(if cbs_json::cmp_values(&b, &a) == std::cmp::Ordering::Less {
                        b
                    } else {
                        a
                    })
                }
                (a, b) => a.or(b),
            };
            total.max_leading = match (total.max_leading.take(), c.max_leading) {
                (Some(a), Some(b)) => {
                    Some(if cbs_json::cmp_values(&b, &a) == std::cmp::Ordering::Greater {
                        b
                    } else {
                        a
                    })
                }
                (a, b) => a.or(b),
            };
        }
        Ok(total)
    }

    /// Aggregate stats across an index's partitions.
    pub fn index_stats(&self, keyspace: &str, name: &str) -> Result<IndexerStats> {
        let inst = self.instance(keyspace, name)?;
        let mut total = IndexerStats::default();
        for p in inst.router.partitions() {
            let s = p.stats();
            total.entries += s.entries;
            total.docs += s.docs;
            total.applied += s.applied;
            total.scans += s.scans;
            total.disk_syncs += s.disk_syncs;
        }
        Ok(total)
    }
}

fn merge_sorted(mut partials: Vec<Vec<IndexEntry>>) -> Vec<IndexEntry> {
    match partials.len() {
        0 => Vec::new(),
        1 => partials.pop().unwrap(),
        _ => {
            let mut all: Vec<IndexEntry> = partials.into_iter().flatten().collect();
            all.sort_by(|a, b| a.key.cmp(&b.key).then_with(|| a.doc_id.cmp(&b.doc_id)));
            all
        }
    }
}

/// Background pump: subscribes an [`IndexManager`] to a data engine's DCP
/// hub and applies the stream continuously — the arrow from the Data
/// Service to the Index Service in Figure 9.
pub struct IndexFeed {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl IndexFeed {
    /// Open streams from seqno 0 on every vBucket of `engine` and pump them
    /// into `manager` under `keyspace`.
    pub fn spawn(
        manager: Arc<IndexManager>,
        keyspace: String,
        engine: Arc<cbs_kv::DataEngine>,
    ) -> Result<IndexFeed> {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let n = manager.num_vbuckets;
        let mut streams = Vec::with_capacity(n as usize);
        for vb in 0..n {
            streams.push(engine.open_dcp_stream(VbId(vb), SeqNo::ZERO)?);
        }
        let handle = std::thread::Builder::new()
            .name(format!("gsi-feed-{keyspace}"))
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    let mut any = false;
                    for stream in streams.iter_mut() {
                        for item in stream.drain_available() {
                            manager.apply_dcp(&keyspace, &item);
                            any = true;
                        }
                    }
                    if !any {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            })
            .expect("spawn index feed");
        Ok(IndexFeed { stop, handle: Some(handle) })
    }

    /// Stop the pump.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for IndexFeed {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defs::IndexStorage;
    use cbs_common::Cas;
    use cbs_json::Value;
    use cbs_kv::{DataEngine, EngineConfig, MutateMode};

    fn manager(n: u16) -> IndexManager {
        IndexManager::new(n, cbs_storage::scratch_dir("gsi-svc"))
    }

    fn engine() -> Arc<DataEngine> {
        let e = DataEngine::new(EngineConfig::for_test(16)).unwrap();
        e.activate_all();
        e
    }

    fn profile(name: &str, age: i64) -> Value {
        Value::object([("name", Value::from(name)), ("age", Value::int(age))])
    }

    #[test]
    fn create_build_scan_over_existing_data() {
        let e = engine();
        for i in 0..20 {
            e.set(
                &format!("u{i}"),
                profile(&format!("user{i}"), 20 + i),
                MutateMode::Upsert,
                Cas::WILDCARD,
                0,
            )
            .unwrap();
        }
        let m = manager(16);
        m.create_and_build(IndexDef::simple("age", "b", "age"), e.as_ref()).unwrap();
        assert_eq!(m.state("b", "age").unwrap(), IndexState::Online);
        let rows = m
            .scan(
                "b",
                "age",
                &ScanRange::at_least(Value::int(35)),
                &ScanConsistency::NotBounded,
                Duration::from_secs(1),
                0,
            )
            .unwrap();
        assert_eq!(rows.len(), 5, "ages 35..39");
        // Keys come back sorted.
        let ages: Vec<i64> =
            rows.iter().map(|r| r.key.0[0].as_ref().unwrap().as_i64().unwrap()).collect();
        assert_eq!(ages, [35, 36, 37, 38, 39]);
    }

    #[test]
    fn duplicate_create_rejected() {
        let m = manager(4);
        m.create_index(IndexDef::simple("i", "b", "x")).unwrap();
        assert!(m.create_index(IndexDef::simple("i", "b", "x")).is_err());
        // Same name on another keyspace is fine.
        m.create_index(IndexDef::simple("i", "other", "x")).unwrap();
        assert_eq!(m.list("b").len(), 1);
    }

    #[test]
    fn deferred_build_flow() {
        let e = engine();
        e.set("d1", profile("a", 30), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
        let m = manager(16);
        let def = IndexDef { deferred: true, ..IndexDef::simple("age", "b", "age") };
        m.create_and_build(def, e.as_ref()).unwrap();
        assert_eq!(m.state("b", "age").unwrap(), IndexState::Deferred);
        // Scanning a deferred index fails.
        assert!(m
            .scan(
                "b",
                "age",
                &ScanRange::all(),
                &ScanConsistency::NotBounded,
                Duration::from_secs(1),
                0
            )
            .is_err());
        // BUILD INDEX.
        m.build("b", "age", e.as_ref()).unwrap();
        assert_eq!(m.state("b", "age").unwrap(), IndexState::Online);
        assert_eq!(
            m.scan(
                "b",
                "age",
                &ScanRange::all(),
                &ScanConsistency::NotBounded,
                Duration::from_secs(1),
                0
            )
            .unwrap()
            .len(),
            1
        );
    }

    #[test]
    fn live_feed_maintains_index_and_request_plus_waits() {
        let e = engine();
        let m = Arc::new(manager(16));
        m.create_and_build(IndexDef::simple("age", "b", "age"), e.as_ref()).unwrap();
        let feed = IndexFeed::spawn(Arc::clone(&m), "b".to_string(), Arc::clone(&e)).unwrap();

        // Write after the index is online; the feed must pick it up.
        e.set("new", profile("n", 99), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
        let vector = e.seqno_vector();
        let rows = m
            .scan(
                "b",
                "age",
                &ScanRange::exact(Value::int(99)),
                &ScanConsistency::AtPlus(vector),
                Duration::from_secs(5),
                0,
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].doc_id, "new");

        // Delete flows through too.
        e.delete("new", Cas::WILDCARD).unwrap();
        let vector = e.seqno_vector();
        let rows = m
            .scan(
                "b",
                "age",
                &ScanRange::exact(Value::int(99)),
                &ScanConsistency::AtPlus(vector),
                Duration::from_secs(5),
                0,
            )
            .unwrap();
        assert!(rows.is_empty());
        feed.shutdown();
    }

    #[test]
    fn partitioned_scan_scatter_gather() {
        let e = engine();
        for i in 0..30 {
            e.set(&format!("u{i}"), profile("x", i), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
        }
        let m = manager(16);
        let def = IndexDef {
            partition_splits: vec![Value::int(10), Value::int(20)],
            ..IndexDef::simple("age", "b", "age")
        };
        m.create_and_build(def, e.as_ref()).unwrap();
        let rows = m
            .scan(
                "b",
                "age",
                &ScanRange::all(),
                &ScanConsistency::NotBounded,
                Duration::from_secs(1),
                0,
            )
            .unwrap();
        assert_eq!(rows.len(), 30);
        let ages: Vec<i64> =
            rows.iter().map(|r| r.key.0[0].as_ref().unwrap().as_i64().unwrap()).collect();
        let expected: Vec<i64> = (0..30).collect();
        assert_eq!(ages, expected, "gather must merge partitions in key order");
        // Range crossing a partition boundary.
        let rows = m
            .scan(
                "b",
                "age",
                &ScanRange {
                    low: Some(Value::int(8)),
                    low_inclusive: true,
                    high: Some(Value::int(12)),
                    high_inclusive: true,
                },
                &ScanConsistency::NotBounded,
                Duration::from_secs(1),
                0,
            )
            .unwrap();
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn lookup_routes_to_single_partition() {
        let e = engine();
        e.set("u1", profile("x", 5), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
        e.set("u2", profile("y", 50), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
        let m = manager(16);
        let def = IndexDef {
            partition_splits: vec![Value::int(10)],
            ..IndexDef::simple("age", "b", "age")
        };
        m.create_and_build(def, e.as_ref()).unwrap();
        let hits = m
            .lookup(
                "b",
                "age",
                &IndexKey(vec![Some(Value::int(50))]),
                &ScanConsistency::NotBounded,
                Duration::from_secs(1),
            )
            .unwrap();
        assert_eq!(hits, ["u2"]);
        let stats = m.index_stats("b", "age").unwrap();
        assert_eq!(stats.scans, 1, "only one partition was probed");
    }

    #[test]
    fn drop_index_works() {
        let m = manager(4);
        m.create_index(IndexDef::simple("i", "b", "x")).unwrap();
        m.drop_index("b", "i").unwrap();
        assert!(m.drop_index("b", "i").is_err());
        assert!(m.list("b").is_empty());
    }

    #[test]
    fn memory_optimized_index_skips_disk() {
        let e = engine();
        e.set("d", profile("a", 1), MutateMode::Upsert, Cas::WILDCARD, 0).unwrap();
        let m = manager(16);
        let def = IndexDef {
            storage: IndexStorage::MemoryOptimized,
            ..IndexDef::simple("age", "b", "age")
        };
        m.create_and_build(def, e.as_ref()).unwrap();
        assert_eq!(m.index_stats("b", "age").unwrap().disk_syncs, 0);
        // Standard mode, by contrast, syncs.
        m.create_and_build(IndexDef::simple("age_std", "b", "age"), e.as_ref()).unwrap();
        assert!(m.index_stats("b", "age_std").unwrap().disk_syncs > 0);
    }
}
