//! The Index Service: Global Secondary Indexes (paper §3.3.2, §4.3.4).
//!
//! "A global secondary index (GSI) is a global index on all of the
//! documents stored within a specified Couchbase bucket, and it is stored
//! separately (hence 'global') from the data itself."
//!
//! The division of labour follows Figure 9 exactly:
//!
//! - the **[`Projector`]** lives on the *data* node: it consumes the DCP
//!   feed and "is responsible for mapping incoming mutations to a set of
//!   Global Secondary Key Versions needed for secondary index maintenance";
//! - the **[`Router`]** (also data-node side) "is responsible for sending
//!   Key Versions to the index service", using the index partitioning
//!   topology to pick the indexer — including the paper's subtle case where
//!   "an insert message may be sent to one indexer with a delete message
//!   being sent to another in the event that the value of the partition key
//!   itself has changed";
//! - the **[`IndexManager`]** and **[`Indexer`]** live on the *index*
//!   node(s): the manager handles DDL (create/drop/build/scan entry
//!   points), the indexer "processes the changes received from the router
//!   and manages the on-disk index tree data structure", and performs
//!   scatter/gather across range partitions at scan time.
//!
//! Features reproduced: composite keys, partial (`WHERE`) indexes (§3.3.4),
//! array indexes (§6.1.2), primary indexes over GSI (§3.3.3), deferred
//! builds, range-partitioned indexes, covering scans (§5.1.2), standard
//! (disk-synced) vs memory-optimized (§6.1.1) storage modes, and
//! `request_plus`/`not_bounded` scan consistency via per-vBucket seqno
//! watermarks (§3.2.3).

pub mod defs;
pub mod indexer;
pub mod projector;
pub mod service;

pub use defs::{
    FilterCond, FilterOp, IndexDef, IndexKey, IndexStorage, KeyExpr, ScanConsistency, ScanRange,
};
pub use indexer::{IndexCardinality, IndexEntry, Indexer, IndexerStats};
pub use projector::{ProjectedOp, Projector, Router};
pub use service::{IndexFeed, IndexManager, IndexState};
