//! Index definitions and scan vocabulary.

use std::cmp::Ordering;

use cbs_common::SeqNo;
use cbs_json::{cmp_missing, JsonPath, Value};

/// An index key expression — what `CREATE INDEX ... ON bucket(expr)`
/// extracts from each document.
#[derive(Debug, Clone, PartialEq)]
pub enum KeyExpr {
    /// A field path (`email`, `address.city`).
    Path(JsonPath),
    /// Every element of an array-valued path — the §6.1.2 array index
    /// (`DISTINCT ARRAY v FOR v IN categories END`): one index entry per
    /// element.
    ArrayElements(JsonPath),
    /// The document ID itself (`META().id`) — what a PRIMARY INDEX uses.
    DocId,
}

impl KeyExpr {
    /// Evaluate against a document; `None` is MISSING.
    pub fn eval(&self, doc_id: &str, doc: &Value) -> Option<Value> {
        match self {
            KeyExpr::Path(p) => p.eval_cloned(doc),
            KeyExpr::ArrayElements(p) => p.eval_cloned(doc),
            KeyExpr::DocId => Some(Value::from(doc_id)),
        }
    }
}

/// Comparison operator for partial-index filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// One conjunct of a partial-index `WHERE` clause (§3.3.4: "selective
/// indexes").
#[derive(Debug, Clone, PartialEq)]
pub struct FilterCond {
    /// Field path.
    pub path: JsonPath,
    /// Comparison.
    pub op: FilterOp,
    /// Literal to compare against.
    pub value: Value,
}

impl FilterCond {
    /// Does `doc` satisfy this condition? MISSING fields never match.
    pub fn matches(&self, doc: &Value) -> bool {
        let Some(actual) = self.path.eval(doc) else { return false };
        let ord = cbs_json::cmp_values(actual, &self.value);
        match self.op {
            FilterOp::Eq => ord == Ordering::Equal,
            FilterOp::Ne => ord != Ordering::Equal,
            FilterOp::Lt => ord == Ordering::Less,
            FilterOp::Le => ord != Ordering::Greater,
            FilterOp::Gt => ord == Ordering::Greater,
            FilterOp::Ge => ord != Ordering::Less,
        }
    }
}

/// Index storage mode (§6.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexStorage {
    /// Disk-backed: every applied batch is appended to a log file and
    /// synced before being acknowledged (the "standard GSI").
    #[default]
    Standard,
    /// "These new indexes will reside completely in memory, dramatically
    /// reducing dependence on disk. Recoverability is provided via
    /// disk-backups" — no per-batch sync; periodic snapshot only.
    MemoryOptimized,
}

/// A complete index definition.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexDef {
    /// Index name (unique per keyspace).
    pub name: String,
    /// The bucket/keyspace it indexes.
    pub keyspace: String,
    /// Composite key expressions, leading key first.
    pub keys: Vec<KeyExpr>,
    /// Partial-index filter (conjunction); empty = index everything.
    pub filter: Vec<FilterCond>,
    /// Storage mode.
    pub storage: IndexStorage,
    /// True for `CREATE PRIMARY INDEX` (§3.3.3).
    pub primary: bool,
    /// `WITH {"defer_build": true}`: created but not built until an
    /// explicit BUILD INDEX.
    pub deferred: bool,
    /// Range-partition split points on the leading key; empty = single
    /// partition. With k split points there are k+1 partitions.
    pub partition_splits: Vec<Value>,
}

impl IndexDef {
    /// A plain single-key secondary index.
    pub fn simple(name: &str, keyspace: &str, path: &str) -> IndexDef {
        IndexDef {
            name: name.to_string(),
            keyspace: keyspace.to_string(),
            keys: vec![KeyExpr::Path(cbs_json::parse_path(path).expect("valid path"))],
            filter: Vec::new(),
            storage: IndexStorage::Standard,
            primary: false,
            deferred: false,
            partition_splits: Vec::new(),
        }
    }

    /// A primary index (doc IDs).
    pub fn primary(name: &str, keyspace: &str) -> IndexDef {
        IndexDef {
            name: name.to_string(),
            keyspace: keyspace.to_string(),
            keys: vec![KeyExpr::DocId],
            filter: Vec::new(),
            storage: IndexStorage::Standard,
            primary: true,
            deferred: false,
            partition_splits: Vec::new(),
        }
    }

    /// Number of range partitions.
    pub fn num_partitions(&self) -> usize {
        self.partition_splits.len() + 1
    }

    /// Which partition a leading-key value belongs to.
    pub fn partition_for(&self, leading: Option<&Value>) -> usize {
        let Some(v) = leading else { return 0 };
        self.partition_splits
            .iter()
            .position(|split| cmp_missing(Some(v), Some(split)) == Ordering::Less)
            .unwrap_or(self.partition_splits.len())
    }
}

/// A composite index key. Elements are `Option<Value>` so a MISSING
/// trailing component keeps its collation position *below* `null`
/// (`Option`'s derived order — `None < Some` — matches exactly).
#[derive(Debug, Clone, PartialEq)]
pub struct IndexKey(pub Vec<Option<Value>>);

impl Eq for IndexKey {}

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> Ordering {
        for (a, b) in self.0.iter().zip(other.0.iter()) {
            let c = cmp_missing(a.as_ref(), b.as_ref());
            if c != Ordering::Equal {
                return c;
            }
        }
        self.0.len().cmp(&other.0.len())
    }
}

impl IndexKey {
    /// The leading (first) component.
    pub fn leading(&self) -> Option<&Value> {
        self.0.first().and_then(|o| o.as_ref())
    }
}

/// Range over the leading key of an index scan.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScanRange {
    /// Lower bound on the leading key (`None` = unbounded).
    pub low: Option<Value>,
    /// Is the lower bound inclusive?
    pub low_inclusive: bool,
    /// Upper bound on the leading key (`None` = unbounded).
    pub high: Option<Value>,
    /// Is the upper bound inclusive?
    pub high_inclusive: bool,
}

impl ScanRange {
    /// Match everything.
    pub fn all() -> ScanRange {
        ScanRange::default()
    }

    /// Exactly one leading-key value.
    pub fn exact(v: Value) -> ScanRange {
        ScanRange { low: Some(v.clone()), low_inclusive: true, high: Some(v), high_inclusive: true }
    }

    /// `low <= k` (half-open upward).
    pub fn at_least(v: Value) -> ScanRange {
        ScanRange { low: Some(v), low_inclusive: true, high: None, high_inclusive: false }
    }

    /// Does a leading-key value fall inside the range? MISSING matches only
    /// fully-unbounded ranges (GSI does not serve MISSING leading keys at
    /// all; the indexer never stores them — see the projector).
    pub fn contains(&self, v: &Value) -> bool {
        if let Some(low) = &self.low {
            match cbs_json::cmp_values(v, low) {
                Ordering::Less => return false,
                Ordering::Equal if !self.low_inclusive => return false,
                _ => {}
            }
        }
        if let Some(high) = &self.high {
            match cbs_json::cmp_values(v, high) {
                Ordering::Greater => return false,
                Ordering::Equal if !self.high_inclusive => return false,
                _ => {}
            }
        }
        true
    }
}

/// Query-time consistency choice (§3.2.3).
#[derive(Debug, Clone, PartialEq)]
pub enum ScanConsistency {
    /// "Returns the query with the lowest latency [...] the query output
    /// can be arbitrarily out-of-date."
    NotBounded,
    /// "Requires all mutations, up to the moment of the query request, to
    /// be processed before query execution can begin": wait until the index
    /// has applied at least this per-vBucket seqno vector.
    AtPlus(Vec<SeqNo>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_json::parse_path;

    #[test]
    fn key_expr_eval() {
        let doc = cbs_json::parse(r#"{"a":{"b":2},"tags":["x","y"]}"#).unwrap();
        assert_eq!(
            KeyExpr::Path(parse_path("a.b").unwrap()).eval("id1", &doc),
            Some(Value::int(2))
        );
        assert_eq!(KeyExpr::Path(parse_path("nope").unwrap()).eval("id1", &doc), None);
        assert_eq!(KeyExpr::DocId.eval("id1", &doc), Some(Value::from("id1")));
    }

    #[test]
    fn filter_conditions() {
        let doc = cbs_json::parse(r#"{"age":30}"#).unwrap();
        let cond =
            |op, v: i64| FilterCond { path: parse_path("age").unwrap(), op, value: Value::int(v) };
        assert!(cond(FilterOp::Gt, 21).matches(&doc));
        assert!(!cond(FilterOp::Gt, 30).matches(&doc));
        assert!(cond(FilterOp::Ge, 30).matches(&doc));
        assert!(cond(FilterOp::Eq, 30).matches(&doc));
        assert!(cond(FilterOp::Ne, 29).matches(&doc));
        assert!(cond(FilterOp::Lt, 31).matches(&doc));
        assert!(cond(FilterOp::Le, 30).matches(&doc));
        // MISSING never matches.
        let missing = FilterCond {
            path: parse_path("absent").unwrap(),
            op: FilterOp::Ne,
            value: Value::int(0),
        };
        assert!(!missing.matches(&doc));
    }

    #[test]
    fn index_key_ordering_missing_below_null() {
        let missing = IndexKey(vec![Some(Value::int(1)), None]);
        let null = IndexKey(vec![Some(Value::int(1)), Some(Value::Null)]);
        assert!(missing < null);
        // Prefix ordering.
        let short = IndexKey(vec![Some(Value::int(1))]);
        assert!(short < missing);
    }

    #[test]
    fn scan_range_semantics() {
        let r = ScanRange {
            low: Some(Value::int(10)),
            low_inclusive: true,
            high: Some(Value::int(20)),
            high_inclusive: false,
        };
        assert!(!r.contains(&Value::int(9)));
        assert!(r.contains(&Value::int(10)));
        assert!(r.contains(&Value::int(19)));
        assert!(!r.contains(&Value::int(20)));
        assert!(ScanRange::all().contains(&Value::Null));
        assert!(ScanRange::exact(Value::from("x")).contains(&Value::from("x")));
        assert!(!ScanRange::exact(Value::from("x")).contains(&Value::from("y")));
        assert!(ScanRange::at_least(Value::from("m")).contains(&Value::from("z")));
    }

    #[test]
    fn partitioning() {
        let mut def = IndexDef::simple("i", "b", "age");
        def.partition_splits = vec![Value::int(10), Value::int(20)];
        assert_eq!(def.num_partitions(), 3);
        assert_eq!(def.partition_for(Some(&Value::int(5))), 0);
        assert_eq!(def.partition_for(Some(&Value::int(10))), 1, "split point goes right");
        assert_eq!(def.partition_for(Some(&Value::int(15))), 1);
        assert_eq!(def.partition_for(Some(&Value::int(25))), 2);
        assert_eq!(def.partition_for(None), 0);
    }
}
