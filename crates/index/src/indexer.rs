//! The indexer: the ordered key→doc-id structure behind one GSI partition.
//!
//! "The indexer component processes the changes received from the router
//! and manages the on-disk index tree data structure. It also provides the
//! interface for the query client to run index scans" (§4.3.4).
//!
//! We use an ordered map keyed by [`IndexKey`] under N1QL collation, plus a
//! reverse map (doc → its current keys) so updates and deletes remove stale
//! entries. A per-vBucket seqno watermark vector supports `request_plus`
//! waits. In [`IndexStorage::Standard`] mode every applied batch is
//! appended to a log file and synced before acknowledgement (the disk
//! dependence that §6.1.1's memory-optimized mode removes).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use cbs_common::sync::{rank, OrderedMutex};
use cbs_common::{Error, Result, SeqNo, VbId};
use parking_lot::Condvar;

use crate::defs::{IndexKey, IndexStorage, ScanConsistency, ScanRange};

/// One scan result row.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexEntry {
    /// The composite index key (usable for covering scans, §5.1.2).
    pub key: IndexKey,
    /// The document ID ("An index simply returns the document ID for each
    /// attribute match", §4.5.1).
    pub doc_id: String,
}

/// What the optimizer's statistics layer reads off one partition: entry
/// counts plus the leading-key value bounds for selectivity interpolation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IndexCardinality {
    /// Live (key, doc) entries.
    pub entries: u64,
    /// Distinct composite keys.
    pub distinct_keys: u64,
    /// Smallest leading-key value present.
    pub min_leading: Option<cbs_json::Value>,
    /// Largest leading-key value present.
    pub max_leading: Option<cbs_json::Value>,
}

/// Point-in-time indexer statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexerStats {
    /// Distinct (key, doc) entries.
    pub entries: u64,
    /// Distinct documents indexed.
    pub docs: u64,
    /// Mutations applied (inserts + updates + deletes).
    pub applied: u64,
    /// Scans served.
    pub scans: u64,
    /// Disk syncs performed (Standard mode).
    pub disk_syncs: u64,
}

struct Tree {
    entries: BTreeMap<IndexKey, BTreeSet<String>>,
    /// doc → (seqno of the version indexed, its keys). The seqno makes
    /// apply idempotent and order-tolerant per document, so catch-up
    /// backfills can interleave with the live DCP feed safely.
    doc_keys: HashMap<String, (SeqNo, Vec<IndexKey>)>,
    /// Live (key, doc) pair count, maintained incrementally so stats and
    /// cardinality snapshots stay O(1) under the tree lock.
    live_entries: u64,
    watermarks: Vec<SeqNo>,
    stats: IndexerStats,
    log: Option<File>,
}

/// One index partition's storage + watermark state.
pub struct Indexer {
    tree: OrderedMutex<Tree>,
    watermark_cv: Condvar,
    storage: IndexStorage,
    log_path: Option<PathBuf>,
}

impl Indexer {
    /// Create an indexer for `num_vbuckets` partitions of the source
    /// bucket. `log_dir` is required for [`IndexStorage::Standard`].
    pub fn new(
        num_vbuckets: u16,
        storage: IndexStorage,
        log_dir: Option<PathBuf>,
        name: &str,
    ) -> Result<Indexer> {
        let log_path = match storage {
            IndexStorage::Standard => {
                let dir = log_dir
                    .ok_or_else(|| Error::Index("standard GSI requires a log dir".to_string()))?;
                std::fs::create_dir_all(&dir)?;
                Some(dir.join(format!("{name}.gsi")))
            }
            IndexStorage::MemoryOptimized => None,
        };
        let log = match &log_path {
            Some(p) => Some(OpenOptions::new().append(true).create(true).open(p)?),
            None => None,
        };
        Ok(Indexer {
            tree: OrderedMutex::new(
                rank::INDEX_TREE,
                Tree {
                    entries: BTreeMap::new(),
                    doc_keys: HashMap::new(),
                    live_entries: 0,
                    watermarks: vec![SeqNo::ZERO; num_vbuckets as usize],
                    stats: IndexerStats::default(),
                    log,
                },
            ),
            watermark_cv: Condvar::new(),
            storage,
            log_path,
        })
    }

    /// Replace the keys under which `doc_id` is indexed (array indexes emit
    /// several). An empty `keys` means "remove from index" (filtered out or
    /// leading key MISSING).
    pub fn update_doc(&self, doc_id: &str, keys: Vec<IndexKey>, vb: VbId, seqno: SeqNo) {
        let mut t = self.tree.lock();
        if stale_for_doc(&t, doc_id, seqno) {
            self.log_and_advance(&mut t, doc_id, &[], vb, seqno);
            drop(t);
            self.watermark_cv.notify_all();
            return;
        }
        remove_doc_locked(&mut t, doc_id);
        for key in &keys {
            if t.entries.entry(key.clone()).or_default().insert(doc_id.to_string()) {
                t.live_entries += 1;
            }
        }
        t.doc_keys.insert(doc_id.to_string(), (seqno, keys.clone()));
        t.stats.applied += 1;
        self.log_and_advance(&mut t, doc_id, &keys, vb, seqno);
        drop(t);
        self.watermark_cv.notify_all();
    }

    /// Remove a document (deletion / expiration).
    pub fn remove_doc(&self, doc_id: &str, vb: VbId, seqno: SeqNo) {
        let mut t = self.tree.lock();
        if stale_for_doc(&t, doc_id, seqno) {
            self.log_and_advance(&mut t, doc_id, &[], vb, seqno);
            drop(t);
            self.watermark_cv.notify_all();
            return;
        }
        remove_doc_locked(&mut t, doc_id);
        // Remember the tombstone seqno so late-arriving older versions of
        // this doc don't resurrect entries.
        t.doc_keys.insert(doc_id.to_string(), (seqno, Vec::new()));
        t.stats.applied += 1;
        self.log_and_advance(&mut t, doc_id, &[], vb, seqno);
        drop(t);
        self.watermark_cv.notify_all();
    }

    /// Advance a vBucket watermark without any index change (a mutation the
    /// projector filtered out still counts for consistency).
    pub fn advance_watermark(&self, vb: VbId, seqno: SeqNo) {
        let mut t = self.tree.lock();
        if t.watermarks[vb.index()] < seqno {
            t.watermarks[vb.index()] = seqno;
        }
        drop(t);
        self.watermark_cv.notify_all();
    }

    fn log_and_advance(
        &self,
        t: &mut Tree,
        doc_id: &str,
        keys: &[IndexKey],
        vb: VbId,
        seqno: SeqNo,
    ) {
        if t.watermarks[vb.index()] < seqno {
            t.watermarks[vb.index()] = seqno;
        }
        if self.storage == IndexStorage::Standard {
            // Append a compact change record and sync — the per-mutation
            // disk dependence memory-optimized indexes remove (§6.1.1).
            if let Some(log) = t.log.as_mut() {
                let mut line = String::with_capacity(64);
                line.push_str(doc_id);
                line.push('\t');
                for k in keys {
                    for comp in &k.0 {
                        match comp {
                            Some(v) => line.push_str(&v.to_json_string()),
                            None => line.push_str("MISSING"),
                        }
                        line.push(',');
                    }
                    line.push(';');
                }
                line.push('\n');
                let _ = log.write_all(line.as_bytes());
                let _ = log.sync_data();
                t.stats.disk_syncs += 1;
            }
        }
    }

    /// Wait until the index is caught up to the required consistency point
    /// (`request_plus` = the seqno vector snapshotted at query admission).
    pub fn wait_consistent(&self, consistency: &ScanConsistency, timeout: Duration) -> Result<()> {
        let ScanConsistency::AtPlus(target) = consistency else { return Ok(()) };
        let deadline = Instant::now() + timeout;
        let mut t = self.tree.lock();
        loop {
            let caught_up = target
                .iter()
                .enumerate()
                .all(|(vb, &s)| t.watermarks.get(vb).copied().unwrap_or(SeqNo::ZERO) >= s);
            if caught_up {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(Error::Timeout("index catch-up for request_plus".to_string()));
            }
            self.watermark_cv.wait_until(t.inner_mut(), deadline);
        }
    }

    /// Range scan over the leading key. Entries come back in full collation
    /// order; `limit` of 0 means unlimited.
    pub fn scan(&self, range: &ScanRange, limit: usize) -> Vec<IndexEntry> {
        let mut t = self.tree.lock();
        t.stats.scans += 1;
        let mut out = Vec::new();
        // Seek straight to the lower bound instead of walking from the
        // smallest key: `IndexKey([low])` sorts at-or-before every key
        // whose leading component is >= low (equal prefixes order by
        // length), so everything below the range is skipped in O(log n).
        // An exclusive low bound still filters via `contains` below; that
        // only re-checks the duplicate set of the boundary value.
        let iter = match &range.low {
            Some(low) => t.entries.range(IndexKey(vec![Some(low.clone())])..),
            None => t.entries.range(..),
        };
        for (key, docs) in iter {
            let Some(leading) = key.leading() else { continue };
            if let Some(high) = &range.high {
                // Early exit once past the upper bound (B-tree order).
                match cbs_json::cmp_values(leading, high) {
                    std::cmp::Ordering::Greater => break,
                    std::cmp::Ordering::Equal if !range.high_inclusive => break,
                    _ => {}
                }
            }
            if !range.contains(leading) {
                continue;
            }
            for doc_id in docs {
                out.push(IndexEntry { key: key.clone(), doc_id: doc_id.clone() });
                if limit > 0 && out.len() >= limit {
                    return out;
                }
            }
        }
        out
    }

    /// Exact-match lookup on the full composite key.
    pub fn lookup(&self, key: &IndexKey) -> Vec<String> {
        let mut t = self.tree.lock();
        t.stats.scans += 1;
        t.entries.get(key).map(|s| s.iter().cloned().collect()).unwrap_or_default()
    }

    /// Current watermark vector.
    pub fn watermarks(&self) -> Vec<SeqNo> {
        self.tree.lock().watermarks.clone()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> IndexerStats {
        let t = self.tree.lock();
        let mut s = t.stats;
        s.entries = t.live_entries;
        s.docs = t.doc_keys.values().filter(|(_, k)| !k.is_empty()).count() as u64;
        s
    }

    /// O(1) cardinality snapshot for the cost-based optimizer: live entry
    /// count, distinct composite keys, and the min/max leading-key values.
    pub fn cardinality(&self) -> IndexCardinality {
        let t = self.tree.lock();
        IndexCardinality {
            entries: t.live_entries,
            distinct_keys: t.entries.len() as u64,
            min_leading: t.entries.keys().next().and_then(|k| k.leading().cloned()),
            max_leading: t.entries.keys().next_back().and_then(|k| k.leading().cloned()),
        }
    }

    /// Storage mode.
    pub fn storage(&self) -> IndexStorage {
        self.storage
    }

    /// Path of the on-disk log (Standard mode).
    pub fn log_path(&self) -> Option<&PathBuf> {
        self.log_path.as_ref()
    }
}

fn stale_for_doc(t: &Tree, doc_id: &str, seqno: SeqNo) -> bool {
    matches!(t.doc_keys.get(doc_id), Some((s, _)) if *s >= seqno)
}

fn remove_doc_locked(t: &mut Tree, doc_id: &str) {
    if let Some((_, old_keys)) = t.doc_keys.remove(doc_id) {
        for key in old_keys {
            if let Some(docs) = t.entries.get_mut(&key) {
                if docs.remove(doc_id) {
                    t.live_entries -= 1;
                }
                if docs.is_empty() {
                    t.entries.remove(&key);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_json::Value;

    fn key1(v: Value) -> IndexKey {
        IndexKey(vec![Some(v)])
    }

    fn memopt() -> Indexer {
        Indexer::new(8, IndexStorage::MemoryOptimized, None, "t").unwrap()
    }

    #[test]
    fn update_and_scan() {
        let idx = memopt();
        idx.update_doc("d1", vec![key1(Value::int(10))], VbId(0), SeqNo(1));
        idx.update_doc("d2", vec![key1(Value::int(20))], VbId(0), SeqNo(2));
        idx.update_doc("d3", vec![key1(Value::int(30))], VbId(1), SeqNo(1));
        let all = idx.scan(&ScanRange::all(), 0);
        let ids: Vec<&str> = all.iter().map(|e| e.doc_id.as_str()).collect();
        assert_eq!(ids, ["d1", "d2", "d3"], "collation order");
        let some = idx.scan(
            &ScanRange {
                low: Some(Value::int(15)),
                low_inclusive: true,
                high: Some(Value::int(30)),
                high_inclusive: false,
            },
            0,
        );
        assert_eq!(some.len(), 1);
        assert_eq!(some[0].doc_id, "d2");
    }

    #[test]
    fn update_replaces_old_keys() {
        let idx = memopt();
        idx.update_doc("d1", vec![key1(Value::int(10))], VbId(0), SeqNo(1));
        idx.update_doc("d1", vec![key1(Value::int(99))], VbId(0), SeqNo(2));
        let all = idx.scan(&ScanRange::all(), 0);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].key, key1(Value::int(99)));
    }

    #[test]
    fn remove_doc_clears_entries() {
        let idx = memopt();
        idx.update_doc("d1", vec![key1(Value::int(1)), key1(Value::int(2))], VbId(0), SeqNo(1));
        assert_eq!(idx.stats().entries, 2, "array index: two entries for one doc");
        idx.remove_doc("d1", VbId(0), SeqNo(2));
        assert_eq!(idx.scan(&ScanRange::all(), 0).len(), 0);
        assert_eq!(idx.stats().docs, 0);
    }

    #[test]
    fn empty_keys_removes_from_index() {
        let idx = memopt();
        idx.update_doc("d1", vec![key1(Value::int(1))], VbId(0), SeqNo(1));
        // Doc no longer matches a partial-index filter.
        idx.update_doc("d1", vec![], VbId(0), SeqNo(2));
        assert!(idx.scan(&ScanRange::all(), 0).is_empty());
    }

    #[test]
    fn seeked_scan_matches_range_semantics() {
        let idx = memopt();
        for i in 0..100 {
            idx.update_doc(
                &format!("d{i:03}"),
                vec![IndexKey(vec![Some(Value::int(i)), Some(Value::from("x"))])],
                VbId(0),
                SeqNo(i as u64 + 1),
            );
        }
        // Inclusive low seeks past everything below it.
        let r = ScanRange::at_least(Value::int(90));
        assert_eq!(idx.scan(&r, 0).len(), 10);
        // Exclusive low excludes the boundary value.
        let r = ScanRange {
            low: Some(Value::int(90)),
            low_inclusive: false,
            high: None,
            high_inclusive: false,
        };
        assert_eq!(idx.scan(&r, 0).len(), 9);
        // Limit applies after the seek.
        let r = ScanRange::at_least(Value::int(50));
        let out = idx.scan(&r, 3);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].doc_id, "d050");
    }

    #[test]
    fn cardinality_tracks_entries_and_bounds() {
        let idx = memopt();
        assert_eq!(idx.cardinality(), IndexCardinality::default());
        idx.update_doc("a", vec![key1(Value::int(5))], VbId(0), SeqNo(1));
        idx.update_doc("b", vec![key1(Value::int(5))], VbId(0), SeqNo(2));
        idx.update_doc("c", vec![key1(Value::int(40))], VbId(0), SeqNo(3));
        let c = idx.cardinality();
        assert_eq!(c.entries, 3);
        assert_eq!(c.distinct_keys, 2);
        assert_eq!(c.min_leading, Some(Value::int(5)));
        assert_eq!(c.max_leading, Some(Value::int(40)));
        idx.remove_doc("c", VbId(0), SeqNo(4));
        let c = idx.cardinality();
        assert_eq!(c.entries, 2);
        assert_eq!(c.max_leading, Some(Value::int(5)));
        assert_eq!(idx.stats().entries, 2, "stats entries stay incremental");
    }

    #[test]
    fn limit_caps_results() {
        let idx = memopt();
        for i in 0..50 {
            idx.update_doc(
                &format!("d{i}"),
                vec![key1(Value::int(i))],
                VbId(0),
                SeqNo(i as u64 + 1),
            );
        }
        assert_eq!(idx.scan(&ScanRange::all(), 7).len(), 7);
    }

    #[test]
    fn duplicate_keys_multiple_docs() {
        let idx = memopt();
        idx.update_doc("a", vec![key1(Value::from("x"))], VbId(0), SeqNo(1));
        idx.update_doc("b", vec![key1(Value::from("x"))], VbId(0), SeqNo(2));
        let hits = idx.lookup(&key1(Value::from("x")));
        assert_eq!(hits, ["a", "b"]);
    }

    #[test]
    fn watermarks_and_consistency_wait() {
        let idx = memopt();
        idx.update_doc("d", vec![key1(Value::int(1))], VbId(3), SeqNo(5));
        idx.advance_watermark(VbId(1), SeqNo(7));
        let w = idx.watermarks();
        assert_eq!(w[3], SeqNo(5));
        assert_eq!(w[1], SeqNo(7));

        // Already satisfied: returns immediately.
        let mut target = vec![SeqNo::ZERO; 8];
        target[3] = SeqNo(5);
        idx.wait_consistent(&ScanConsistency::AtPlus(target), Duration::from_millis(10)).unwrap();

        // Unsatisfied: times out.
        let mut target = vec![SeqNo::ZERO; 8];
        target[0] = SeqNo(100);
        let err = idx
            .wait_consistent(&ScanConsistency::AtPlus(target), Duration::from_millis(30))
            .unwrap_err();
        assert!(matches!(err, Error::Timeout(_)));

        // NotBounded never waits.
        idx.wait_consistent(&ScanConsistency::NotBounded, Duration::from_millis(1)).unwrap();
    }

    #[test]
    fn consistency_wait_unblocks_on_catchup() {
        use std::sync::Arc;
        let idx = Arc::new(memopt());
        let idx2 = Arc::clone(&idx);
        let waiter = std::thread::spawn(move || {
            let mut target = vec![SeqNo::ZERO; 8];
            target[0] = SeqNo(3);
            idx2.wait_consistent(&ScanConsistency::AtPlus(target), Duration::from_secs(5))
        });
        std::thread::sleep(Duration::from_millis(20));
        idx.advance_watermark(VbId(0), SeqNo(3));
        waiter.join().unwrap().unwrap();
    }

    #[test]
    fn standard_mode_syncs_to_disk() {
        let dir = cbs_storage::scratch_dir("gsi");
        let idx = Indexer::new(4, IndexStorage::Standard, Some(dir.clone()), "email_idx").unwrap();
        idx.update_doc("d1", vec![key1(Value::from("a@x.com"))], VbId(0), SeqNo(1));
        idx.update_doc("d2", vec![key1(Value::from("b@x.com"))], VbId(0), SeqNo(2));
        assert_eq!(idx.stats().disk_syncs, 2);
        let log = idx.log_path().unwrap();
        let contents = std::fs::read_to_string(log).unwrap();
        assert!(contents.contains("d1"));
        assert!(contents.contains("a@x.com"));
        // Memory-optimized never syncs.
        let mo = memopt();
        mo.update_doc("d1", vec![key1(Value::int(1))], VbId(0), SeqNo(1));
        assert_eq!(mo.stats().disk_syncs, 0);
    }
}
