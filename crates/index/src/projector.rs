//! Projector and Router — the data-node half of the index service (§4.3.4).
//!
//! "The projector extracts the secondary keys relevant to the indexes that
//! have been defined and sends them to the router. The router then decides
//! which indexer to send the message to. In case the index is partitioned,
//! the partition key tells the router which indexer and which node to send
//! the message to."

use std::sync::Arc;

use cbs_common::{SeqNo, VbId};
use cbs_dcp::DcpItem;
use cbs_json::Value;

use crate::defs::{IndexDef, IndexKey, KeyExpr};
use crate::indexer::Indexer;

/// What the projector emits for one (mutation, index) pair.
#[derive(Debug, Clone, PartialEq)]
pub enum ProjectedOp {
    /// Index (or re-index) the document under these keys. Empty keys mean
    /// the document fell out of the index (filter/MISSING leading key);
    /// any previous entries must be removed.
    Update {
        /// Document ID.
        doc_id: String,
        /// New key versions (several for array indexes).
        keys: Vec<IndexKey>,
        /// Originating vBucket.
        vb: VbId,
        /// Mutation seqno.
        seqno: SeqNo,
    },
    /// The document was deleted/expired: remove it.
    Remove {
        /// Document ID.
        doc_id: String,
        /// Originating vBucket.
        vb: VbId,
        /// Mutation seqno.
        seqno: SeqNo,
    },
}

/// Stateless key-version extraction.
pub struct Projector;

impl Projector {
    /// Compute the key versions a mutation produces for one index
    /// definition.
    pub fn project(def: &IndexDef, item: &DcpItem) -> ProjectedOp {
        if item.is_deletion() {
            return ProjectedOp::Remove {
                doc_id: item.key.clone(),
                vb: item.vb,
                seqno: item.meta.seqno,
            };
        }
        let doc = item.value.as_ref().expect("mutation carries a value");
        let keys = Self::keys_for(def, &item.key, doc);
        ProjectedOp::Update { doc_id: item.key.clone(), keys, vb: item.vb, seqno: item.meta.seqno }
    }

    /// The index keys a document produces under `def` (empty if filtered
    /// out or leading key MISSING).
    pub fn keys_for(def: &IndexDef, doc_id: &str, doc: &Value) -> Vec<IndexKey> {
        // Partial-index filter (§3.3.4): all conjuncts must hold.
        if !def.filter.iter().all(|c| c.matches(doc)) {
            return Vec::new();
        }
        // Array index (§6.1.2): if the leading expression is ArrayElements,
        // fan out one key per element.
        match &def.keys[0] {
            KeyExpr::ArrayElements(path) => {
                let Some(Value::Array(items)) = path.eval(doc) else { return Vec::new() };
                let mut out = Vec::new();
                let mut seen = Vec::new();
                for elem in items {
                    // DISTINCT ARRAY semantics: dedupe elements.
                    if seen.iter().any(|s: &Value| s == elem) {
                        continue;
                    }
                    seen.push(elem.clone());
                    let mut comps = vec![Some(elem.clone())];
                    comps.extend(def.keys[1..].iter().map(|k| k.eval(doc_id, doc)));
                    out.push(IndexKey(comps));
                }
                out
            }
            leading => {
                // GSI does not index documents whose leading key is MISSING.
                let Some(lead) = leading.eval(doc_id, doc) else { return Vec::new() };
                let mut comps = vec![Some(lead)];
                comps.extend(def.keys[1..].iter().map(|k| k.eval(doc_id, doc)));
                vec![IndexKey(comps)]
            }
        }
    }
}

/// Routes projected operations to the right partition's indexer, and
/// advances watermarks on every partition for mutations that produced no
/// key versions (consistency must advance even for filtered-out docs).
pub struct Router {
    partitions: Vec<Arc<Indexer>>,
    def: IndexDef,
}

impl Router {
    /// Build a router over one index's partitions (one indexer per range
    /// partition; a single partition for unpartitioned indexes).
    pub fn new(def: IndexDef, partitions: Vec<Arc<Indexer>>) -> Router {
        assert_eq!(partitions.len(), def.num_partitions());
        Router { partitions, def }
    }

    /// Index definition.
    pub fn def(&self) -> &IndexDef {
        &self.def
    }

    /// Partition handles.
    pub fn partitions(&self) -> &[Arc<Indexer>] {
        &self.partitions
    }

    /// Route one projected op. Handles the paper's partition-key-change
    /// case ("an insert message may be sent to one indexer with a delete
    /// message being sent to another") by clearing the doc from every
    /// partition that is not its new home.
    pub fn route(&self, op: ProjectedOp) {
        match op {
            ProjectedOp::Remove { doc_id, vb, seqno } => {
                for p in &self.partitions {
                    p.remove_doc(&doc_id, vb, seqno);
                }
            }
            ProjectedOp::Update { doc_id, keys, vb, seqno } => {
                // Group keys by destination partition.
                let mut per_partition: Vec<Vec<IndexKey>> = vec![Vec::new(); self.partitions.len()];
                for key in keys {
                    let p = self.def.partition_for(key.leading());
                    per_partition[p].push(key);
                }
                for (pi, p) in self.partitions.iter().enumerate() {
                    let keys = std::mem::take(&mut per_partition[pi]);
                    if keys.is_empty() {
                        // Delete-on-other-partition + watermark advance.
                        p.remove_doc(&doc_id, vb, seqno);
                    } else {
                        p.update_doc(&doc_id, keys, vb, seqno);
                    }
                }
            }
        }
    }

    /// Advance all partitions' watermarks (for keyspace-unrelated DCP
    /// traffic that still counts toward consistency).
    pub fn advance(&self, vb: VbId, seqno: SeqNo) {
        for p in &self.partitions {
            p.advance_watermark(vb, seqno);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defs::{FilterCond, FilterOp, IndexStorage, ScanRange};
    use cbs_common::DocMeta;
    use cbs_json::parse_path;

    fn item(key: &str, json: &str, seq: u64) -> DcpItem {
        DcpItem::mutation(
            VbId(0),
            key,
            DocMeta { seqno: SeqNo(seq), ..Default::default() },
            cbs_json::parse(json).unwrap(),
        )
    }

    #[test]
    fn simple_projection() {
        let def = IndexDef::simple("email", "profiles", "email");
        let op = Projector::project(&def, &item("u1", r#"{"email":"a@x.com"}"#, 1));
        match op {
            ProjectedOp::Update { doc_id, keys, .. } => {
                assert_eq!(doc_id, "u1");
                assert_eq!(keys, vec![IndexKey(vec![Some(Value::from("a@x.com"))])]);
            }
            other => panic!("{other:?}"),
        }
        // MISSING leading key → empty keys.
        let op = Projector::project(&def, &item("u2", r#"{"name":"no email"}"#, 2));
        assert!(matches!(op, ProjectedOp::Update { keys, .. } if keys.is_empty()));
    }

    #[test]
    fn composite_keys_with_missing_trailing() {
        let mut def = IndexDef::simple("ix", "b", "a");
        def.keys.push(KeyExpr::Path(parse_path("b").unwrap()));
        let keys = Projector::keys_for(&def, "d", &cbs_json::parse(r#"{"a":1}"#).unwrap());
        assert_eq!(keys, vec![IndexKey(vec![Some(Value::int(1)), None])]);
    }

    #[test]
    fn partial_index_filtering() {
        // CREATE INDEX over21 ON Profile(age) WHERE age > 21 (§3.3.4).
        let mut def = IndexDef::simple("over21", "Profile", "age");
        def.filter = vec![FilterCond {
            path: parse_path("age").unwrap(),
            op: FilterOp::Gt,
            value: Value::int(21),
        }];
        let keys = Projector::keys_for(&def, "d", &cbs_json::parse(r#"{"age":30}"#).unwrap());
        assert_eq!(keys.len(), 1);
        let keys = Projector::keys_for(&def, "d", &cbs_json::parse(r#"{"age":18}"#).unwrap());
        assert!(keys.is_empty());
    }

    #[test]
    fn array_index_fans_out_distinct() {
        let def = IndexDef {
            keys: vec![KeyExpr::ArrayElements(parse_path("categories").unwrap())],
            ..IndexDef::simple("cats", "product", "categories")
        };
        let keys = Projector::keys_for(
            &def,
            "p1",
            &cbs_json::parse(r#"{"categories":["a","b","a"]}"#).unwrap(),
        );
        assert_eq!(keys.len(), 2, "DISTINCT dedupes");
        // Non-array value → nothing indexed.
        let keys =
            Projector::keys_for(&def, "p2", &cbs_json::parse(r#"{"categories":"x"}"#).unwrap());
        assert!(keys.is_empty());
    }

    #[test]
    fn primary_index_uses_doc_id() {
        let def = IndexDef::primary("#primary", "b");
        let keys = Projector::keys_for(&def, "the-doc", &Value::empty_object());
        assert_eq!(keys, vec![IndexKey(vec![Some(Value::from("the-doc"))])]);
    }

    #[test]
    fn deletion_projects_to_remove() {
        let def = IndexDef::simple("i", "b", "x");
        let del =
            DcpItem::deletion(VbId(2), "gone", DocMeta { seqno: SeqNo(9), ..Default::default() });
        assert!(matches!(
            Projector::project(&def, &del),
            ProjectedOp::Remove { doc_id, vb, seqno } if doc_id == "gone" && vb == VbId(2) && seqno == SeqNo(9)
        ));
    }

    #[test]
    fn router_moves_doc_between_partitions() {
        // Range-partitioned on age at split 50.
        let mut def = IndexDef::simple("age", "b", "age");
        def.partition_splits = vec![Value::int(50)];
        let p0 = Arc::new(Indexer::new(4, IndexStorage::MemoryOptimized, None, "p0").unwrap());
        let p1 = Arc::new(Indexer::new(4, IndexStorage::MemoryOptimized, None, "p1").unwrap());
        let router = Router::new(def.clone(), vec![Arc::clone(&p0), Arc::clone(&p1)]);

        let update = |age: i64, seq: u64| ProjectedOp::Update {
            doc_id: "d".to_string(),
            keys: vec![IndexKey(vec![Some(Value::int(age))])],
            vb: VbId(0),
            seqno: SeqNo(seq),
        };
        router.route(update(10, 1));
        assert_eq!(p0.scan(&ScanRange::all(), 0).len(), 1);
        assert_eq!(p1.scan(&ScanRange::all(), 0).len(), 0);

        // Partition key changes: insert to p1, delete from p0 (§4.3.4).
        router.route(update(99, 2));
        assert_eq!(p0.scan(&ScanRange::all(), 0).len(), 0, "stale entry deleted");
        assert_eq!(p1.scan(&ScanRange::all(), 0).len(), 1);

        // Remove clears everywhere.
        router.route(ProjectedOp::Remove { doc_id: "d".to_string(), vb: VbId(0), seqno: SeqNo(3) });
        assert_eq!(p1.scan(&ScanRange::all(), 0).len(), 0);
        // Watermarks advanced on both partitions throughout.
        assert_eq!(p0.watermarks()[0], SeqNo(3));
        assert_eq!(p1.watermarks()[0], SeqNo(3));
    }
}
