//! Property test: the indexer agrees with a naive model under any
//! interleaving of updates, removals and scans — including out-of-order
//! (stale) deliveries, which the per-document seqno guard must suppress.

use std::collections::HashMap;

use cbs_common::{SeqNo, VbId};
use cbs_index::{IndexKey, IndexStorage, Indexer, ScanRange};
use cbs_json::Value;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Update doc `d` with key value `k` at sequence `seq`.
    Update { d: u8, k: i64, seq: u64 },
    /// Remove doc `d` at sequence `seq`.
    Remove { d: u8, seq: u64 },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (any::<u8>(), -20i64..20, 1u64..100).prop_map(|(d, k, seq)| Op::Update {
                d: d % 12,
                k,
                seq
            }),
            (any::<u8>(), 1u64..100).prop_map(|(d, seq)| Op::Remove { d: d % 12, seq }),
        ],
        1..80,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn indexer_matches_model(ops in arb_ops()) {
        let idx = Indexer::new(4, IndexStorage::MemoryOptimized, None, "prop").unwrap();
        // Model: doc → (last applied seq, Some(key) | None).
        let mut model: HashMap<String, (u64, Option<i64>)> = HashMap::new();
        for op in &ops {
            match op {
                Op::Update { d, k, seq } => {
                    let doc = format!("d{d}");
                    idx.update_doc(
                        &doc,
                        vec![IndexKey(vec![Some(Value::int(*k))])],
                        VbId(0),
                        SeqNo(*seq),
                    );
                    let e = model.entry(doc).or_insert((0, None));
                    if *seq > e.0 {
                        *e = (*seq, Some(*k));
                    }
                }
                Op::Remove { d, seq } => {
                    let doc = format!("d{d}");
                    idx.remove_doc(&doc, VbId(0), SeqNo(*seq));
                    let e = model.entry(doc).or_insert((0, None));
                    if *seq > e.0 {
                        *e = (*seq, None);
                    }
                }
            }
        }
        // Full scan must equal the model's live set, sorted by (key, doc).
        let mut expected: Vec<(i64, String)> = model
            .iter()
            .filter_map(|(d, (_, k))| k.map(|k| (k, d.clone())))
            .collect();
        expected.sort();
        let scanned: Vec<(i64, String)> = idx
            .scan(&ScanRange::all(), 0)
            .into_iter()
            .map(|e| (e.key.0[0].as_ref().unwrap().as_i64().unwrap(), e.doc_id))
            .collect();
        prop_assert_eq!(scanned, expected);

        // Range scans agree too.
        let range = ScanRange {
            low: Some(Value::int(-5)),
            low_inclusive: true,
            high: Some(Value::int(5)),
            high_inclusive: false,
        };
        let in_range: Vec<(i64, String)> = model
            .iter()
            .filter_map(|(d, (_, k))| k.map(|k| (k, d.clone())))
            .filter(|(k, _)| (-5..5).contains(k))
            .collect();
        let mut in_range = in_range;
        in_range.sort();
        let scanned: Vec<(i64, String)> = idx
            .scan(&range, 0)
            .into_iter()
            .map(|e| (e.key.0[0].as_ref().unwrap().as_i64().unwrap(), e.doc_id))
            .collect();
        prop_assert_eq!(scanned, in_range);

        // Watermark equals the max seq delivered.
        let max_seq = ops
            .iter()
            .map(|o| match o {
                Op::Update { seq, .. } | Op::Remove { seq, .. } => *seq,
            })
            .max()
            .unwrap_or(0);
        prop_assert_eq!(idx.watermarks()[0], SeqNo(max_seq));
    }
}
