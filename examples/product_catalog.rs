//! Catalog / SKU management — the paper's second motivating workload
//! (§1: "applications such as catalog and SKU management systems need the
//! ability to change and update information on the fly").
//!
//! Demonstrates the document-database side: mixed document types in one
//! bucket, selective (partial) indexes (§3.3.4), array indexes on
//! categories (§6.1.2), the paper's NEST/UNNEST queries (§3.2.3), and a
//! reduced view for per-category pricing stats.
//!
//! ```text
//! cargo run --example product_catalog
//! ```

use couchbase_repro::{
    ClusterConfig, CouchbaseCluster, DesignDoc, MapCond, MapExpr, MapFn, QueryOptions, Reducer,
    Stale, ViewDef, ViewQuery,
};

fn main() {
    let cluster = CouchbaseCluster::homogeneous(2, ClusterConfig::for_test(64, 0));
    let bucket = cluster.create_bucket("catalog").expect("bucket");
    let opts = QueryOptions::default();
    let rp = QueryOptions::default().request_plus();

    // --- Mixed document types in one bucket --------------------------------
    let products = [
        (
            "product::1",
            r#"{"doc_type":"product","name":"Mechanical Keyboard","price":129.0,
          "categories":["peripherals","office"],"stock":12}"#,
        ),
        (
            "product::2",
            r#"{"doc_type":"product","name":"4K Monitor","price":399.0,
          "categories":["displays","office"],"stock":3}"#,
        ),
        (
            "product::3",
            r#"{"doc_type":"product","name":"USB Hub","price":25.0,
          "categories":["peripherals"],"stock":0}"#,
        ),
        (
            "product::4",
            r#"{"doc_type":"product","name":"Laptop Stand","price":45.0,
          "categories":["office","ergonomics"],"stock":31}"#,
        ),
    ];
    for (k, json) in products {
        bucket.upsert(k, couchbase_repro::parse_json(json).unwrap()).expect("seed product");
    }
    // Orders reference products by key — the key-based relationships N1QL
    // joins are built for (§3.2.4).
    bucket
        .upsert(
            "order::1001",
            couchbase_repro::parse_json(
                r#"{"doc_type":"order","customer":"borkar123",
                    "items":["product::1","product::3"],"total":154.0}"#,
            )
            .unwrap(),
        )
        .expect("seed order");
    bucket
        .upsert(
            "profile::borkar123",
            couchbase_repro::parse_json(
                r#"{"doc_type":"profile","name":"Dipti",
                    "shipped_order_history":[{"order_id":"order::1001"}]}"#,
            )
            .unwrap(),
        )
        .expect("seed profile");

    // --- Indexing: primary + selective + array (§3.3) ----------------------
    cluster.query("CREATE PRIMARY INDEX ON catalog", &opts).expect("primary");
    // Selective index: only in-stock products (§3.3.4's pattern).
    cluster
        .query("CREATE INDEX in_stock ON catalog(stock) WHERE stock > 0 USING GSI", &opts)
        .expect("partial index");
    // Array index over categories (§6.1.2).
    cluster
        .query(
            "CREATE INDEX by_category ON catalog(DISTINCT ARRAY c FOR c IN categories END)",
            &opts,
        )
        .expect("array index");

    // --- The paper's UNNEST example: live categories -----------------------
    let res = cluster
        .query(
            "SELECT DISTINCT categories FROM catalog UNNEST catalog.categories AS categories \
             ORDER BY categories",
            &rp,
        )
        .expect("unnest");
    println!("categories in use (UNNEST):");
    for row in &res.rows {
        println!("  {row}");
    }

    // Array-predicate query served by the array index.
    let res = cluster
        .query(
            "SELECT name FROM catalog WHERE ANY c IN categories SATISFIES c = 'office' END \
             ORDER BY name",
            &rp,
        )
        .expect("array predicate");
    println!("office products (array index): {} rows", res.rows.len());

    // Partial-index query: the WHERE clause implies the index filter.
    let res = cluster
        .query("SELECT name, stock FROM catalog WHERE stock > 0 ORDER BY stock DESC", &rp)
        .expect("partial");
    println!("in-stock products (selective index):");
    for row in &res.rows {
        println!("  {row}");
    }

    // --- The paper's NEST example: orders embedded in the profile ----------
    let res = cluster
        .query(
            "SELECT PO.name, orders FROM catalog PO USE KEYS 'profile::borkar123' \
             NEST catalog AS orders \
             ON KEYS ARRAY s.order_id FOR s IN PO.shipped_order_history END",
            &opts,
        )
        .expect("nest");
    println!("profile with nested orders (NEST): {}", res.rows[0]);

    // --- JOIN over keys: order line items -----------------------------------
    let res = cluster
        .query(
            "SELECT o.total, p.name AS item FROM catalog o USE KEYS 'order::1001' \
             JOIN catalog p ON KEYS o.items",
            &opts,
        )
        .expect("join");
    println!("order::1001 line items (ON KEYS join):");
    for row in &res.rows {
        println!("  {row}");
    }

    // --- On-the-fly updates (sub-document SET, §3.2.2) ----------------------
    cluster
        .query("UPDATE catalog USE KEYS 'product::2' SET price = 349.0, sale.active = true", &opts)
        .expect("update");
    let monitor = bucket.get("product::2").unwrap().value;
    println!(
        "price updated on the fly: {} (sale={})",
        monitor.get_field("price").unwrap(),
        monitor.get_field("sale").unwrap()
    );

    // --- View with reduce: per-category price stats -------------------------
    cluster
        .create_design_doc(
            "catalog",
            DesignDoc {
                name: "stats".to_string(),
                views: vec![(
                    "price_by_type".to_string(),
                    ViewDef {
                        map: MapFn {
                            when: vec![MapCond::doc_type("product")],
                            key: MapExpr::field("doc_type"),
                            value: Some(MapExpr::field("price")),
                        },
                        reduce: Some(Reducer::Stats),
                    },
                )],
            },
        )
        .expect("ddoc");
    let res = cluster
        .view_query(
            "catalog",
            "stats",
            "price_by_type",
            &ViewQuery { stale: Stale::False, reduce: true, ..Default::default() },
        )
        .expect("view");
    println!("product price stats (view reduce): {}", res.rows[0].value);
}
