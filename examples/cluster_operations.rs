//! Day-2 cluster operations (§4.1, §4.3, §4.4, §4.6): elastic scaling,
//! failover, multi-dimensional scaling, and cross-datacenter replication.
//!
//! ```text
//! cargo run --release --example cluster_operations
//! ```

use std::time::Duration;

use couchbase_repro::{ClusterConfig, CouchbaseCluster, KeyFilter, NodeId, ServiceSet, Value};

fn main() {
    // --- Start with 2 nodes, load data -------------------------------------
    let cluster = CouchbaseCluster::homogeneous(2, ClusterConfig::for_test(128, 1));
    let bucket = cluster.create_bucket("default").expect("bucket");
    const DOCS: usize = 1_000;
    for i in 0..DOCS {
        bucket
            .upsert(&format!("doc::{i}"), Value::object([("i", Value::int(i as i64))]))
            .expect("load");
    }
    println!("loaded {DOCS} docs on 2 nodes; orchestrator = {:?}", cluster.orchestrator());

    // --- Scale out: add a node and rebalance (§4.3.1) ----------------------
    let new_node = cluster.add_node(ServiceSet::all()).expect("add node");
    println!("added {new_node:?}; rebalancing (DCP movers + atomic switchover)...");
    cluster.rebalance(&[]).expect("rebalance");
    let map = cluster.inner().map("default").expect("map");
    for node in cluster.inner().nodes() {
        println!(
            "  {:?}: {} active vBuckets, {} replica vBuckets",
            node.id(),
            map.active_vbs(node.id()).len(),
            map.replica_vbs(node.id()).len()
        );
    }
    verify_all(&bucket, DOCS, "after rebalance-in");

    // --- Failure + failover (§4.3.1) ----------------------------------------
    println!("killing node:1 ...");
    cluster.kill_node(NodeId(1)).expect("kill");
    let promoted = cluster.failover(NodeId(1)).expect("failover");
    println!(
        "failover promoted {promoted} replica vBuckets; new orchestrator = {:?}",
        cluster.orchestrator()
    );
    verify_all(&bucket, DOCS, "after failover");

    // --- Rebalance the survivor set ------------------------------------------
    cluster.rebalance(&[]).expect("rebalance after failover");
    verify_all(&bucket, DOCS, "after post-failover rebalance");

    // --- XDCR to a second datacenter (§4.6) ----------------------------------
    // Destination has a different size and partition count: XDCR routing is
    // topology-aware.
    let dr_site = CouchbaseCluster::homogeneous(2, ClusterConfig::for_test(64, 0));
    dr_site.create_bucket("default").expect("dst bucket");
    // Only replicate European documents (filtered replication).
    for i in 0..50 {
        bucket
            .upsert(&format!("eu::doc::{i}"), Value::object([("region", Value::from("eu"))]))
            .expect("eu docs");
    }
    let link = cluster
        .replicate_to(&dr_site, "default", Some(KeyFilter::compile("^eu::").unwrap()))
        .expect("xdcr link");
    let dr_bucket = dr_site.bucket("default").expect("dst handle");
    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    while std::time::Instant::now() < deadline {
        if (0..50).all(|i| dr_bucket.get(&format!("eu::doc::{i}")).is_ok()) {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let replicated = (0..50).filter(|i| dr_bucket.get(&format!("eu::doc::{i}")).is_ok()).count();
    let leaked = (0..DOCS).filter(|i| dr_bucket.get(&format!("doc::{i}")).is_ok()).count();
    println!("XDCR: {replicated}/50 eu:: docs replicated, {leaked} non-matching docs leaked");
    println!(
        "XDCR stats: shipped={} filtered={}",
        link.stats().shipped.get(),
        link.stats().filtered.get()
    );
    link.shutdown();

    println!("done.");
}

fn verify_all(bucket: &couchbase_repro::Bucket, n: usize, stage: &str) {
    let missing = (0..n).filter(|i| bucket.get(&format!("doc::{i}")).is_err()).count();
    println!("  verify {stage}: {}/{n} docs readable ({missing} missing)", n - missing);
    assert_eq!(missing, 0, "data loss {stage}");
}
