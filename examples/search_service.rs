//! The full-text search service (§6.1.3): a support-ticket knowledge base
//! with term, phrase and prefix search over DCP-fed inverted indexes.
//!
//! ```text
//! cargo run --example search_service
//! ```

use couchbase_repro::{ClusterConfig, CouchbaseCluster, FtsIndexDef, SearchQuery, Value};

fn ticket(subject: &str, body: &str, product: &str) -> Value {
    Value::object([
        ("subject", Value::from(subject)),
        ("body", Value::from(body)),
        ("product", Value::from(product)),
        ("comments", Value::Array(vec![Value::from(format!("auto-ack for {product}"))])),
    ])
}

fn main() {
    let cluster = CouchbaseCluster::homogeneous(2, ClusterConfig::for_test(64, 0));
    let bucket = cluster.create_bucket("tickets").expect("bucket");

    // One index over every text field; a second restricted to subjects.
    cluster
        .create_fts_index(FtsIndexDef {
            name: "everything".to_string(),
            keyspace: "tickets".to_string(),
            fields: None,
        })
        .expect("fts index");
    cluster
        .create_fts_index(FtsIndexDef {
            name: "subjects".to_string(),
            keyspace: "tickets".to_string(),
            fields: Some(vec!["subject".parse().unwrap()]),
        })
        .expect("fts index 2");

    let tickets = [
        (
            "t1",
            ticket(
                "Cluster rebalance stuck at 90 percent",
                "After adding a node the rebalance never completes",
                "server",
            ),
        ),
        (
            "t2",
            ticket(
                "Query latency spike under request_plus",
                "Index catch-up waits dominate our p99 latency",
                "query",
            ),
        ),
        (
            "t3",
            ticket(
                "Rebalance fails with timeout",
                "The mover times out when moving large vBuckets",
                "server",
            ),
        ),
        (
            "t4",
            ticket(
                "How to tune the object cache quota",
                "Residency ratio drops and background fetches spike",
                "server",
            ),
        ),
        (
            "t5",
            ticket(
                "N1QL covering index not selected",
                "EXPLAIN shows a fetch even though all fields are indexed",
                "query",
            ),
        ),
    ];
    for (id, doc) in tickets {
        bucket.upsert(id, doc).expect("upsert");
    }

    // Term search with TF-IDF ranking; `consistent=true` waits for the
    // index to cover every acknowledged write (request_plus parity).
    println!("term 'rebalance':");
    for hit in cluster
        .fts_search("tickets", "everything", &SearchQuery::Term("rebalance".to_string()), 0, true)
        .expect("search")
    {
        println!("  {} (score {:.3}, fields {:?})", hit.doc_id, hit.score, hit.fields);
    }

    // Phrase search.
    println!("phrase 'never completes':");
    for hit in cluster
        .fts_search(
            "tickets",
            "everything",
            &SearchQuery::Phrase(vec!["never".to_string(), "completes".to_string()]),
            0,
            true,
        )
        .expect("search")
    {
        println!("  {}", hit.doc_id);
    }

    // Prefix search.
    println!("prefix 'lat':");
    for hit in cluster
        .fts_search("tickets", "everything", &SearchQuery::Prefix("lat".to_string()), 0, true)
        .expect("search")
    {
        println!("  {}", hit.doc_id);
    }

    // Conjunction, field-restricted index.
    println!("subjects index, all of ['rebalance','timeout']:");
    for hit in cluster
        .fts_search(
            "tickets",
            "subjects",
            &SearchQuery::All(vec!["rebalance".to_string(), "timeout".to_string()]),
            0,
            true,
        )
        .expect("search")
    {
        println!("  {}", hit.doc_id);
    }

    // Live updates flow through DCP: close a ticket, search again.
    bucket
        .upsert("t1", ticket("RESOLVED rebalance stuck", "fixed by mover patch", "server"))
        .expect("update");
    let hits = cluster
        .fts_search("tickets", "everything", &SearchQuery::Term("resolved".to_string()), 0, true)
        .expect("search");
    println!(
        "after live update, 'resolved' matches: {:?}",
        hits.iter().map(|h| &h.doc_id).collect::<Vec<_>>()
    );
}
