//! cbstats: the operator surface of `cbs-obs` (DESIGN.md §10).
//!
//! Drives a short YCSB workload-A burst against a small cluster, then
//! prints what an operator would pull from `cbstats` on a real Couchbase
//! deployment: per-node topology, per-service op counters, latency
//! percentiles from the merged histogram snapshots, the slow-op log with
//! full span trees, a causally stitched end-to-end trace of one durable
//! replicated write (DESIGN.md §17), and a Prometheus text sample.
//!
//! ```text
//! cargo run --release --example cbstats
//! CBS_NODES=2 CBS_RECORDS=500 CBS_OPS=100 cargo run --release --example cbstats
//! CBS_TRACE_EXPORT=target/trace.json cargo run --release --example cbstats
//! ```

use std::time::Duration;

use cbs_ycsb::{run_workload, LoadPhase, WorkloadSpec};
use couchbase_repro::{ClusterConfig, CouchbaseCluster, Durability, QueryOptions};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn print_percentiles(stats: &cbs_cluster::ClusterStats, names: &[&str]) {
    println!("\n== latency percentiles (cluster-wide merged histograms) ==");
    println!(
        "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "metric", "count", "p50", "p95", "p99", "max"
    );
    for name in names {
        let h = stats.histogram(name);
        if h.is_empty() {
            println!("{name:<28} {:>8} (no samples)", 0);
            continue;
        }
        let d = |p: f64| h.percentile(p).unwrap_or(Duration::ZERO);
        println!(
            "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10}",
            name,
            h.count(),
            format!("{:.1?}", d(50.0)),
            format!("{:.1?}", d(95.0)),
            format!("{:.1?}", d(99.0)),
            format!("{:.1?}", h.max().unwrap_or(Duration::ZERO)),
        );
    }
}

fn main() {
    let nodes = env_u64("CBS_NODES", 3) as usize;
    let records = env_u64("CBS_RECORDS", 2_000);
    let ops_per_thread = env_u64("CBS_OPS", 250);

    println!("cbstats demo: {nodes}-node cluster, YCSB-A burst ({records} docs)");
    let cluster = CouchbaseCluster::homogeneous(nodes, ClusterConfig::for_test(64, 1));
    cluster.create_bucket("ycsb").expect("create bucket");

    // Generate load on every access path the stats cover.
    let spec = WorkloadSpec::a(records);
    LoadPhase::run(&cluster, "ycsb", &spec, 4).expect("load phase");
    let summary = run_workload(&cluster, "ycsb", &spec, 4, ops_per_thread).expect("run phase");
    println!("{}", summary.report_row());

    // Deliberately slow operation for the slow-op log: with the threshold
    // at zero, the next traced request is guaranteed to be captured. A
    // primary scan over the whole bucket walks every vBucket on every
    // node, so its span tree has depth: execute -> parse/plan/scan/fetch.
    cluster.set_slow_threshold(Duration::ZERO);
    cluster.query("CREATE PRIMARY INDEX ON ycsb", &QueryOptions::default()).expect("primary index");
    cluster
        .query("SELECT COUNT(*) AS n FROM ycsb", &QueryOptions::default())
        .expect("slow primary scan");

    // Query profiling: PROFILE returns the EXPLAIN-shaped plan annotated
    // with each operator's items in/out and kernel time, plus the phase
    // rollups extracted from the request's span tree.
    let profiled = cluster
        .query("PROFILE SELECT COUNT(*) AS n FROM ycsb", &QueryOptions::default())
        .expect("profiled query");
    println!("\n== PROFILE SELECT COUNT(*) AS n FROM ycsb ==");
    println!("{}", cbs_json::print::to_json_pretty(&profiled.rows[0], 2));

    // Freeze everything. `stats()` drains each registry's slow-op ring, so
    // one snapshot owns the captured trace.
    let stats = cluster.stats();

    println!("\n== topology ==");
    for node in &stats.nodes {
        let s = node.services;
        let services: Vec<&str> = [("kv", s.data), ("index", s.index), ("n1ql", s.query)]
            .iter()
            .filter(|(_, on)| *on)
            .map(|(name, _)| *name)
            .collect();
        let queued: u64 =
            node.buckets.iter().flat_map(|b| &b.vbuckets).map(|v| v.queued_items).sum();
        println!(
            "node n{}: alive={} services={} buckets={} active_vbuckets={} disk_queue={}",
            node.node.0,
            node.alive,
            services.join("+"),
            node.buckets.len(),
            node.buckets.iter().map(|b| b.vbuckets.len()).sum::<usize>(),
            queued,
        );
    }

    let merged = stats.merged();
    println!("\n== op counters (cluster-wide) ==");
    for (name, value) in &merged.counters {
        if *value > 0 {
            println!("{name:<32} {value}");
        }
    }

    print_percentiles(
        &stats,
        &[
            "kv.engine.get_latency",
            "kv.engine.set_latency",
            "kv.flusher.fsync_latency",
            "n1ql.query.latency",
            "n1ql.phase.plan",
            "n1ql.phase.index_scan",
            "n1ql.phase.fetch",
            "n1ql.phase.run",
            "fts.service.search_latency",
        ],
    );

    // Consistency observability: per-vBucket replica seqno lag from the
    // replication pumps, summarized from the same `ClusterStats` rows
    // that `system:replication` serves.
    let per_vb = stats.per_vb_replica_lag();
    println!("\n== replica lag (per vBucket, seqnos behind the active) ==");
    println!("{:<8} {:>4} {:>8} {:>8}", "bucket", "vb", "max", "mean");
    for (bucket, vb, max, mean) in per_vb.iter().take(8) {
        println!("{bucket:<8} {vb:>4} {max:>8} {mean:>8.2}");
    }
    if per_vb.len() > 8 {
        println!("... {} more vBuckets", per_vb.len() - 8);
    }
    let stale_rows = cluster
        .query("SELECT * FROM system:staleness", &QueryOptions::default())
        .expect("query the staleness catalog");
    println!("system:staleness per-bucket summary:");
    for row in &stale_rows.rows {
        println!("{}", row.to_json_string());
    }
    let repl_rows = cluster
        .query("SELECT * FROM system:replication", &QueryOptions::default())
        .expect("query the replication catalog");
    println!("system:replication via N1QL: {} rows", repl_rows.rows.len());

    // The request log: what `system:completed_requests` / `system:
    // active_requests` serve, straight off the snapshot.
    println!("\n== completed requests ({} retained) ==", stats.completed_requests.len());
    for (id, req) in stats.completed_requests.iter().rev().take(5) {
        let field = |name: &str| {
            req.get_field(name).and_then(cbs_json::Value::as_str).unwrap_or("?").to_string()
        };
        println!(
            "{id}: [{}] {} | {} | {}",
            field("state"),
            field("statement"),
            field("elapsedTime"),
            field("plan"),
        );
    }
    println!("active requests in flight: {}", stats.active_requests.len());

    // The same log is a keyspace: the query service can introspect itself.
    let log_rows = cluster
        .query("SELECT * FROM system:completed_requests", &QueryOptions::default())
        .expect("query the request log");
    println!("\nsystem:completed_requests via N1QL: {} rows", log_rows.rows.len());

    // Prepared statements: PREPARE caches the plan, EXECUTE skips the
    // front end entirely, and system:prepareds shows the registry — the
    // n1ql.plancache.* counters above account for every lookup.
    cluster
        .query(
            "PREPARE hot FROM SELECT meta().id AS id FROM ycsb \
             WHERE meta().id >= $start LIMIT $lim",
            &QueryOptions::default(),
        )
        .expect("prepare");
    for i in 0..20 {
        let opts = QueryOptions::with_named_args([
            ("start", couchbase_repro::Value::from(format!("user{i:04}"))),
            ("lim", couchbase_repro::Value::int(10)),
        ]);
        cluster.query("EXECUTE hot", &opts).expect("execute prepared");
    }
    let prepared_rows = cluster
        .query("SELECT * FROM system:prepareds", &QueryOptions::default())
        .expect("query the prepared registry");
    println!("\n== system:prepareds ==");
    for row in &prepared_rows.rows {
        println!("{}", row.to_json_string());
    }
    let post = cluster.stats();
    let (hits, misses) =
        (post.counter("n1ql.plancache.hits"), post.counter("n1ql.plancache.misses"));
    println!(
        "plan cache: hits={hits} misses={misses} hit_rate={:.1}%",
        100.0 * hits as f64 / (hits + misses).max(1) as f64
    );

    println!("\n== slow ops ({} captured) ==", stats.slow_ops.len());
    for op in stats.slow_ops.iter().rev().take(3) {
        println!("[{}] {:.1?}", op.service, op.total);
        print!("{}", op.render());
    }

    // Causal end-to-end tracing (DESIGN.md §17): sample every operation,
    // run one durable replicated write, and render the stitched span tree
    // — client -> active engine -> replication deliver -> replica apply ->
    // flusher WAL commit, one trace id across every lane.
    let store = std::sync::Arc::clone(cluster.inner().trace_store());
    store.set_sample_every(1);
    let bucket = cluster.bucket("ycsb").expect("bucket handle");
    let durability = Durability { replicate_to: 1, persist_to_master: true };
    bucket
        .upsert_durable(
            "trace::demo",
            couchbase_repro::Value::int(1),
            durability,
            Duration::from_secs(5),
        )
        .expect("durable traced write (needs >= 2 nodes and 1 replica)");
    // The replica-side spans are recorded by the replication pump threads;
    // wait for the durable trace to carry them before rendering.
    let mut durable_trace = None;
    for _ in 0..400 {
        durable_trace = store.completed_traces().into_iter().rev().find(|t| {
            t.root_name == "client.kv.durable"
                && t.span("kv.engine.replica_apply").is_some()
                && t.span("kv.flusher.wal_commit").is_some()
        });
        if durable_trace.is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    let traces = store.completed_traces();
    println!("\n== completed traces ({} retained, stitched across lanes) ==", traces.len());
    println!("{:<10} {:<22} {:>10} {:>6}  lanes", "trace", "root", "total", "spans");
    for t in traces.iter().rev().take(5) {
        let lanes: Vec<String> = t.lanes().iter().map(|l| l.to_string()).collect();
        println!(
            "t{:<9x} {:<22} {:>10} {:>6}  {}",
            t.trace_id,
            t.root_name,
            format!("{:.1?}", t.total),
            t.spans.len(),
            lanes.join("+"),
        );
    }
    match &durable_trace {
        Some(t) => {
            println!("\none durable replicated write, end to end:");
            print!("{}", t.render());
        }
        None => println!("\n(no stitched durable trace captured — is the cluster >= 2 nodes?)"),
    }

    // The same traces and the flight-recorder timeline as N1QL keyspaces.
    let trace_rows = cluster
        .query("SELECT * FROM system:completed_traces", &QueryOptions::default())
        .expect("query the trace catalog");
    println!("\nsystem:completed_traces via N1QL: {} rows", trace_rows.rows.len());
    let event_rows = cluster
        .query("SELECT * FROM system:events", &QueryOptions::default())
        .expect("query the flight recorder");
    println!("system:events via N1QL: {} rows", event_rows.rows.len());

    // CBS_TRACE_EXPORT=<path>: dump every retained trace in the Chrome
    // `trace_event` format (load it in chrome://tracing or Perfetto;
    // `cargo xtask validate-trace <path>` checks it structurally).
    if let Ok(path) = std::env::var("CBS_TRACE_EXPORT") {
        std::fs::write(&path, store.export_chrome()).expect("write trace export");
        println!("chrome trace export written to {path}");
    }

    let prom = stats.prometheus();
    println!("\n== prometheus sample (first 20 of {} lines) ==", prom.lines().count());
    for line in prom.lines().take(20) {
        println!("{line}");
    }

    // The operator-facing invariant the tracing exists to demonstrate: a
    // spread distribution reports non-degenerate percentiles.
    let kv = stats.histogram("kv.engine.get_latency");
    if let (Some(p50), Some(p99)) = (kv.percentile(50.0), kv.percentile(99.0)) {
        println!("\nkv get p50 {p50:.1?} < p99 {p99:.1?}: {}", p50 < p99);
    }
}
