//! Quickstart: the three access paths of §3.1 in one minute.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use couchbase_repro::{
    CouchbaseCluster, DesignDoc, MapCond, MapExpr, MapFn, QueryOptions, Stale, Value, ViewDef,
    ViewQuery,
};

fn main() {
    // A 2-node cluster, every service on every node.
    let cluster = CouchbaseCluster::homogeneous(2, couchbase_repro::ClusterConfig::for_test(64, 1));
    let bucket = cluster.create_bucket("default").expect("create bucket");

    // ------------------------------------------------------------------
    // Access path 1: key-value via the primary key (§3.1.1).
    // ------------------------------------------------------------------
    let profile =
        couchbase_repro::parse_json(r#"{"name": "Dipti Borkar", "email": "dipti@couchbase.com"}"#)
            .expect("valid JSON");
    bucket.upsert("borkar123", profile).expect("upsert");
    let got = bucket.get("borkar123").expect("get");
    println!("KV get:   {}", got.value);

    // The CAS optimistic-locking flow from §3.1.1.
    let read = bucket.get("borkar123").expect("read for update");
    let mut updated = read.value.clone();
    updated.make_mut().insert_field("title", Value::from("VP Product"));
    bucket.replace("borkar123", updated, read.meta.cas).expect("CAS replace");
    println!("CAS write: ok (rev {:?})", bucket.get("borkar123").unwrap().meta.rev);

    // ------------------------------------------------------------------
    // Access path 2: the View API (§3.1.2) — the paper's exact example.
    // ------------------------------------------------------------------
    cluster
        .create_design_doc(
            "default",
            DesignDoc {
                name: "profiles".to_string(),
                views: vec![(
                    "by_name".to_string(),
                    ViewDef {
                        // function(doc) { if (doc.name) emit(doc.name, doc.email) }
                        map: MapFn {
                            when: vec![MapCond::Exists("name".parse().unwrap())],
                            key: MapExpr::field("name"),
                            value: Some(MapExpr::field("email")),
                        },
                        reduce: None,
                    },
                )],
            },
        )
        .expect("design doc");
    // ?key="Dipti Borkar"&stale=false
    let q = ViewQuery { stale: Stale::False, ..ViewQuery::by_key(Value::from("Dipti Borkar")) };
    let res = cluster.view_query("default", "profiles", "by_name", &q).expect("view query");
    println!("View:     {} -> {}", res.rows[0].key, res.rows[0].value);

    // ------------------------------------------------------------------
    // Access path 3: N1QL (§3.1.3).
    // ------------------------------------------------------------------
    for (i, (name, age)) in
        [("alice", 31), ("bob", 24), ("carol", 47), ("dan", 19)].iter().enumerate()
    {
        bucket
            .upsert(
                &format!("user::{i}"),
                Value::object([("name", Value::from(*name)), ("age", Value::int(*age))]),
            )
            .expect("seed");
    }
    cluster
        .query("CREATE INDEX by_age ON default(age) USING GSI", &QueryOptions::default())
        .expect("create index");
    let res = cluster
        .query(
            "SELECT name, age FROM default WHERE age >= 21 ORDER BY age",
            &QueryOptions::default().request_plus(),
        )
        .expect("N1QL query");
    println!("N1QL:");
    for row in &res.rows {
        println!("  {row}");
    }

    // EXPLAIN shows the Figure 11 pipeline.
    let plan = cluster
        .query(
            "EXPLAIN SELECT name, age FROM default WHERE age >= 21 ORDER BY age",
            &QueryOptions::default(),
        )
        .expect("explain");
    println!("EXPLAIN:  {}", plan.rows[0]);
}
