//! A population-scale user profile store — the paper's flagship workload
//! (§1: "1-3 milliseconds being a common latency expectation for
//! applications like user profile stores").
//!
//! Demonstrates the front-end OLTP patterns on the KV access path:
//! session documents with TTLs, CAS-safe profile updates under
//! concurrency, GETL hard locks, per-mutation durability choices, and a
//! latency report.
//!
//! ```text
//! cargo run --release --example user_profile_store
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use couchbase_repro::{ClusterConfig, CouchbaseCluster, Durability, Error, Value};

fn now_secs() -> u32 {
    std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_secs() as u32
}

fn main() {
    let cluster = CouchbaseCluster::homogeneous(3, ClusterConfig::for_test(256, 1));
    let bucket = Arc::new(cluster.create_bucket("profiles").expect("bucket"));

    // --- Seed a user base -------------------------------------------------
    const USERS: usize = 5_000;
    println!("seeding {USERS} user profiles...");
    for i in 0..USERS {
        bucket
            .upsert(
                &format!("user::{i}"),
                Value::object([
                    ("name", Value::from(format!("user-{i}"))),
                    ("email", Value::from(format!("u{i}@example.com"))),
                    ("login_count", Value::int(0)),
                    ("preferences", Value::object([("theme", Value::from("dark"))])),
                ]),
            )
            .expect("seed");
    }

    // --- Read latency at memory speed -------------------------------------
    let mut worst = Duration::ZERO;
    let mut total = Duration::ZERO;
    const READS: usize = 20_000;
    for i in 0..READS {
        let t = Instant::now();
        bucket.get(&format!("user::{}", i % USERS)).expect("read");
        let d = t.elapsed();
        total += d;
        worst = worst.max(d);
    }
    println!(
        "{READS} profile reads: mean {:?}, worst {:?} (memory-first cache hits)",
        total / READS as u32,
        worst
    );

    // --- Concurrent login counters via the CAS loop (§3.1.1) --------------
    println!("8 threads x 200 CAS-checked login-count increments on one hot profile...");
    let mut handles = Vec::new();
    for _ in 0..8 {
        let bucket = Arc::clone(&bucket);
        handles.push(std::thread::spawn(move || {
            for _ in 0..200 {
                bucket
                    .mutate_in_loop(
                        "user::42",
                        |doc| {
                            let n =
                                doc.get_field("login_count").and_then(Value::as_i64).unwrap_or(0);
                            doc.insert_field("login_count", Value::int(n + 1));
                        },
                        256,
                    )
                    .expect("CAS loop");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let logins = bucket.get("user::42").unwrap().value.get_field("login_count").cloned();
    println!(
        "login_count = {} (expected 1600; optimistic locking lost no update)",
        logins.unwrap()
    );

    // --- Session documents with TTL ---------------------------------------
    bucket
        .upsert_with_expiry(
            "session::abc",
            Value::object([("user", Value::from("user::42"))]),
            now_secs() + 3600,
        )
        .expect("session");
    println!("session::abc created with 1h TTL: {:?}", bucket.get("session::abc").is_ok());
    bucket
        .upsert_with_expiry("session::expired", Value::from("stale"), now_secs() - 1)
        .expect("expired session");
    assert!(matches!(bucket.get("session::expired"), Err(Error::KeyNotFound(_))));
    println!("expired session lazily reaped on access: ok");

    // --- GETL: pessimistic locking for the rare critical section ----------
    let locked = bucket.get_and_lock("user::7", Duration::from_secs(5)).expect("lock");
    assert!(matches!(bucket.upsert("user::7", Value::Null), Err(Error::Locked(_))));
    bucket.unlock("user::7", locked.meta.cas).expect("unlock");
    println!("GETL hard lock blocked concurrent writers, then released: ok");

    // --- Durability choices per mutation (§2.3.2) --------------------------
    let t = Instant::now();
    bucket.upsert("fast::1", Value::int(1)).expect("fast");
    let fast = t.elapsed();
    let t = Instant::now();
    bucket
        .upsert_durable(
            "safe::1",
            Value::int(1),
            Durability { replicate_to: 1, persist_to_master: true },
            Duration::from_secs(10),
        )
        .expect("durable");
    let safe = t.elapsed();
    println!("memory-ack write: {fast:?}; replicate+persist write: {safe:?}");
    println!("done — a profile store needs no external cache (§1.2, Figure 2).");
}
