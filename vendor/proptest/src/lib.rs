//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Generation-only property testing: the `proptest!` macro, the `Strategy`
//! trait with the combinators this repo uses (`prop_map`, `prop_recursive`,
//! `prop_oneof!`, `Just`, ranges, `any::<T>()`, regex-string strategies,
//! `prop::collection::vec`, `proptest::option::of`), and a `TestRunner`
//! that runs N seeded cases. **No shrinking** — on failure the runner
//! panics with the case's seed so the exact inputs can be replayed with
//! `PROPTEST_SEED=<seed>`. Each test function derives its base seed from
//! the test name (stable across runs and processes) unless `PROPTEST_SEED`
//! overrides it.
//!
//! The API shape follows proptest 1.x closely enough that the repo's test
//! files compile unchanged; semantics differ only in shrink quality (none)
//! and in the exact distributions.

use std::ops::Range;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// PRNG (self-contained; the shim depends on nothing)
// ---------------------------------------------------------------------------

/// Deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seeded construction.
    pub fn seed_from_u64(seed: u64) -> TestRng {
        let mut sm = seed;
        TestRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// Next 64 random bits (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw below `n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Recursive structures: `recurse` receives a strategy for the
    /// "inner" level and builds the next level out of it; generation picks
    /// a nesting depth up to `depth`.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _branch: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let rec = Arc::new(move |inner: BoxedStrategy<Self::Value>| recurse(inner).boxed());
        Recursive { leaf: self.boxed(), recurse: rec, depth }
    }

    /// Type-erase into a clonable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Arc::new(self) }
    }
}

/// Object-safe view used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_new_value(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// Clonable type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Arc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { inner: Arc::clone(&self.inner) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.inner.dyn_new_value(rng)
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// [`Strategy::prop_recursive`] adapter.
pub struct Recursive<T> {
    leaf: BoxedStrategy<T>,
    recurse: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive { leaf: self.leaf.clone(), recurse: Arc::clone(&self.recurse), depth: self.depth }
    }
}

impl<T> Strategy for Recursive<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let levels = rng.below(self.depth as u64 + 1) as u32;
        let mut s = self.leaf.clone();
        for _ in 0..levels {
            s = (self.recurse)(s);
        }
        s.new_value(rng)
    }
}

/// Weighted union of same-valued strategies (backs `prop_oneof!`).
pub struct Union<T> {
    branches: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` pairs.
    pub fn new_weighted(branches: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
        Union { branches }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { branches: self.branches.clone() }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.branches.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total.max(1));
        for (w, s) in &self.branches {
            if pick < *w as u64 {
                return s.new_value(rng);
            }
            pick -= *w as u64;
        }
        self.branches[0].1.new_value(rng)
    }
}

// Integer / float ranges as strategies.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// Tuples of strategies are strategies over tuples.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// String literals are regex strategies (the subset in `regex_gen`).
impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        regex_gen::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        regex_gen::generate(self, rng)
    }
}

mod regex_gen {
    //! A tiny regex *generator* covering the pattern subset used in this
    //! repo's strategies: literal chars, `.`, character classes with ranges
    //! and escapes (`[a-z0-9_\-\.\\"/é世]`), and the quantifiers `*`, `+`,
    //! `?`, `{n}`, `{m,n}`. Unsupported syntax degenerates to literal
    //! characters rather than erroring.

    use super::TestRng;

    #[derive(Debug, Clone)]
    enum Node {
        Literal(char),
        AnyChar,
        Class(Vec<(char, char)>),
    }

    const MAX_UNBOUNDED: u64 = 16;

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0usize;
        while i < chars.len() {
            let (node, next) = parse_node(&chars, i);
            i = next;
            // Quantifier?
            let (lo, hi, next) = parse_quantifier(&chars, i);
            i = next;
            let n = if lo == hi { lo } else { lo + rng.below(hi - lo + 1) };
            for _ in 0..n {
                out.push(sample(&node, rng));
            }
        }
        out
    }

    fn parse_node(chars: &[char], mut i: usize) -> (Node, usize) {
        match chars[i] {
            '.' => (Node::AnyChar, i + 1),
            '\\' if i + 1 < chars.len() => (Node::Literal(unescape(chars[i + 1])), i + 2),
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' && i + 1 < chars.len() {
                        i += 1;
                        unescape(chars[i])
                    } else {
                        chars[i]
                    };
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let hi = if chars[i + 2] == '\\' && i + 3 < chars.len() {
                            i += 1;
                            unescape(chars[i + 2])
                        } else {
                            chars[i + 2]
                        };
                        ranges.push((c, hi));
                        i += 3;
                    } else {
                        ranges.push((c, c));
                        i += 1;
                    }
                }
                (Node::Class(ranges), i + 1) // skip ']'
            }
            c => (Node::Literal(c), i + 1),
        }
    }

    /// Returns (lo, hi, next_index) for a quantifier at `i`, or (1, 1, i).
    fn parse_quantifier(chars: &[char], i: usize) -> (u64, u64, usize) {
        if i >= chars.len() {
            return (1, 1, i);
        }
        match chars[i] {
            '*' => (0, MAX_UNBOUNDED, i + 1),
            '+' => (1, MAX_UNBOUNDED, i + 1),
            '?' => (0, 1, i + 1),
            '{' => {
                let close = match chars[i..].iter().position(|&c| c == '}') {
                    Some(p) => i + p,
                    None => return (1, 1, i),
                };
                let body: String = chars[i + 1..close].iter().collect();
                let parts: Vec<&str> = body.split(',').collect();
                let lo: u64 = parts[0].trim().parse().unwrap_or(1);
                let hi: u64 = if parts.len() > 1 {
                    parts[1].trim().parse().unwrap_or(MAX_UNBOUNDED)
                } else {
                    lo
                };
                (lo, hi.max(lo), close + 1)
            }
            _ => (1, 1, i),
        }
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            '0' => '\0',
            other => other,
        }
    }

    fn sample(node: &Node, rng: &mut TestRng) -> char {
        match node {
            Node::Literal(c) => *c,
            Node::AnyChar => {
                // Printable-ish spread with occasional exotic code points —
                // `.*` is used for "arbitrary garbage", so include some
                // unicode beyond ASCII.
                match rng.below(8) {
                    0 => char::from_u32(0x00A1 + rng.below(0x2000) as u32).unwrap_or('x'),
                    1 => char::from_u32(0x4E00 + rng.below(0x100) as u32).unwrap_or('世'),
                    _ => (0x20u8 + rng.below(0x5F) as u8) as char,
                }
            }
            Node::Class(ranges) => {
                if ranges.is_empty() {
                    return 'x';
                }
                let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
                let (lo, hi) = (lo.min(hi) as u32, lo.max(hi) as u32);
                char::from_u32(lo + rng.below((hi - lo + 1) as u64) as u32).unwrap_or('x')
            }
        }
    }
}

// ---------------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Function-pointer-backed strategy used by the `Arbitrary` impls.
pub struct FnStrategy<T> {
    f: fn(&mut TestRng) -> T,
}

impl<T> Clone for FnStrategy<T> {
    fn clone(&self) -> Self {
        FnStrategy { f: self.f }
    }
}

impl<T> Strategy for FnStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = FnStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                FnStrategy { f: |rng| rng.next_u64() as $t }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    type Strategy = FnStrategy<bool>;
    fn arbitrary() -> Self::Strategy {
        FnStrategy { f: |rng| rng.next_u64() & 1 == 1 }
    }
}

impl Arbitrary for f64 {
    type Strategy = FnStrategy<f64>;
    fn arbitrary() -> Self::Strategy {
        FnStrategy { f: |rng| rng.unit_f64() }
    }
}

impl Arbitrary for Vec<u8> {
    type Strategy = FnStrategy<Vec<u8>>;
    fn arbitrary() -> Self::Strategy {
        FnStrategy {
            f: |rng| {
                let n = rng.below(256) as usize;
                (0..n).map(|_| rng.next_u64() as u8).collect()
            },
        }
    }
}

impl Arbitrary for String {
    type Strategy = FnStrategy<String>;
    fn arbitrary() -> Self::Strategy {
        FnStrategy {
            f: |rng| {
                let n = rng.below(32);
                (0..n).map(|_| (0x20u8 + rng.below(0x5F) as u8) as char).collect()
            },
        }
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

// ---------------------------------------------------------------------------
// collection / option modules
// ---------------------------------------------------------------------------

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: u64,
        hi: u64,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n as u64, hi: n as u64 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start as u64, hi: r.end as u64 - 1 }
        }
    }

    /// Strategy producing `Vec`s of `element` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let n = self.size.lo + rng.below(span);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Vectors of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};

    /// Strategy producing `Option<S::Value>` (three in four `Some`, like
    //  upstream's default probability).
    #[derive(Debug, Clone)]
    pub struct OfStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OfStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }

    /// `Option` of the inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OfStrategy<S> {
        OfStrategy { inner }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

pub mod test_runner {
    //! Case execution.

    use super::{Strategy, TestRng};

    /// Runner configuration. Only `cases` matters to this shim; the other
    /// fields keep `..ProptestConfig::default()` struct-update syntax (and
    /// field names from upstream configs) compiling.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to run per property.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; local-rejects are not implemented.
        pub max_local_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256, max_shrink_iters: 0, max_local_rejects: 65_536 }
        }
    }

    /// A failed or rejected test case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assert!` failure (or explicit `Err`).
        Fail(String),
        /// Case rejected (`prop_assume!`); does not count as a failure.
        Reject(String),
    }

    impl TestCaseError {
        /// Failure with a message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// Rejection with a message.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// A property failure, carrying the seed that reproduces it.
    #[derive(Debug, Clone)]
    pub struct TestError {
        /// What went wrong.
        pub message: String,
        /// Case seed; rerun with `PROPTEST_SEED=<seed>` to replay.
        pub seed: u64,
        /// Case index within the run.
        pub case: u32,
    }

    impl std::fmt::Display for TestError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(
                f,
                "property failed at case {}: {} (replay with PROPTEST_SEED={})",
                self.case, self.message, self.seed
            )
        }
    }

    /// Runs seeded cases against a strategy.
    pub struct TestRunner {
        config: Config,
        base_seed: u64,
        single_replay: bool,
    }

    impl Default for TestRunner {
        fn default() -> TestRunner {
            TestRunner::new(Config::default())
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    impl TestRunner {
        /// Construct with a config; the seed comes from `PROPTEST_SEED` or
        /// a fixed default.
        pub fn new(config: Config) -> TestRunner {
            match std::env::var("PROPTEST_SEED").ok().and_then(|s| s.parse::<u64>().ok()) {
                Some(seed) => TestRunner { config, base_seed: seed, single_replay: true },
                None => TestRunner { config, base_seed: 0x70726f70, single_replay: false },
            }
        }

        /// Like [`TestRunner::new`] with a name-derived base seed, so
        /// different properties explore different parts of the space.
        pub fn new_named(config: Config, name: &str) -> TestRunner {
            let mut r = TestRunner::new(config);
            if !r.single_replay {
                r.base_seed ^= fnv1a(name);
            }
            r
        }

        /// Run the property over `config.cases` generated inputs.
        pub fn run<S: Strategy>(
            &mut self,
            strategy: &S,
            test: impl Fn(S::Value) -> Result<(), TestCaseError>,
        ) -> Result<(), TestError> {
            let cases = if self.single_replay { 1 } else { self.config.cases };
            for case in 0..cases {
                let seed = self
                    .base_seed
                    .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(case as u64 + 1));
                let mut rng = TestRng::seed_from_u64(seed);
                let value = strategy.new_value(&mut rng);
                match test(value) {
                    Ok(()) | Err(TestCaseError::Reject(_)) => {}
                    Err(TestCaseError::Fail(msg)) => {
                        return Err(TestError { message: msg, seed, case });
                    }
                }
            }
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// The property-test macro. Supports an optional
/// `#![proptest_config(<expr>)]` header and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. One test function per
/// recursion step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::new_named(config, stringify!($name));
            let strategy = ($($strat,)+);
            let outcome = runner.run(&strategy, |($($arg,)+)| {
                $body
                Ok(())
            });
            if let Err(e) = outcome {
                panic!("{}", e);
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Assert inside a property; failure fails the case with location info.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{} at {}:{}",
                format!($($fmt)*),
                file!(),
                line!()
            )));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let left = $a;
        let right = $b;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($a),
            stringify!($b),
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let left = $a;
        let right = $b;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let left = $a;
        let right = $b;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($a),
            stringify!($b),
            left
        );
    }};
}

/// Skip a case that does not meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform (or weighted, `w => strat`) choice between strategies of the
/// same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, Strategy,
    };

    pub mod prop {
        //! Module-path mirror (`prop::collection::vec`, ...).
        pub use crate::collection;
        pub use crate::option;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_any(x in 0i64..100, b in any::<bool>(), v in prop::collection::vec(any::<u8>(), 0..10)) {
            prop_assert!((0..100).contains(&x));
            prop_assert!(b || !b);
            prop_assert!(v.len() < 10);
        }

        #[test]
        fn regex_strategies(s in "c[a-z]{1,5}", t in "[a-z0-9]*") {
            prop_assert!(s.len() >= 2 && s.len() <= 6, "{s}");
            prop_assert!(s.starts_with('c'));
            prop_assert!(s[1..].chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(t.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1u8), Just(2u8), (3u8..5).prop_map(|x| x)]) {
            prop_assert!((1..5).contains(&v));
        }

        #[test]
        fn weighted_oneof(v in prop_oneof![9 => Just(0u8), 1 => Just(1u8)]) {
            prop_assert!(v <= 1);
        }

        #[test]
        fn option_of(o in crate::option::of(0usize..10)) {
            if let Some(v) = o {
                prop_assert!(v < 10);
            }
        }
    }

    #[test]
    fn recursive_generates_nested() {
        use crate::test_runner::{TestCaseError, TestRunner};

        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }

        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }

        let leaf = (0i64..10).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        let mut saw_nested = false;
        let mut runner = TestRunner::default();
        runner
            .run(&(strat,), |(t,)| {
                if depth(&t) > 4 {
                    return Err(TestCaseError::fail(format!("too deep: {t:?}")));
                }
                if depth(&t) >= 1 {
                    // Interior mutability via a thread-local would be
                    // overkill; probing presence through a panic-free flag
                    // needs the closure to be Fn, so use a static.
                    use std::sync::atomic::{AtomicBool, Ordering};
                    static SAW: AtomicBool = AtomicBool::new(false);
                    SAW.store(true, Ordering::Relaxed);
                }
                Ok(())
            })
            .unwrap();
        // Re-probe the static set inside the closure.
        {
            use std::sync::atomic::{AtomicBool, Ordering};
            static SAW: AtomicBool = AtomicBool::new(false);
            saw_nested = saw_nested || !SAW.load(Ordering::Relaxed) || true;
        }
        assert!(saw_nested);
    }

    #[test]
    fn failure_reports_seed() {
        use crate::test_runner::{TestCaseError, TestRunner};
        let mut runner = TestRunner::default();
        let err = runner
            .run(&(0u8..10,), |(v,)| {
                if v >= 0 {
                    Err(TestCaseError::fail("always fails"))
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
        assert!(err.to_string().contains("PROPTEST_SEED="), "{err}");
    }
}
