//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the handful of external crates it uses as minimal shims (see
//! `vendor/README.md`). This one exposes the `parking_lot` lock API the
//! repo relies on — `Mutex` / `RwLock` / `Condvar` with guards that do
//! **not** poison — implemented over `std::sync`. Poisoning is swallowed
//! (`unwrap_or_else(PoisonError::into_inner)`) to match parking_lot
//! semantics: a panicking thread never wedges the lock for everyone else.
//!
//! Only the API surface this repo calls is provided. It is not a
//! performance-faithful replacement (std locks are heavier under
//! contention), but every correctness property the code depends on holds.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A mutual exclusion primitive (parking_lot-flavoured: no poisoning).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex. `const` so it can back `static` items.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`].
///
/// The inner std guard lives in an `Option` so [`Condvar`] can temporarily
/// take it during a wait and put the re-acquired guard back — parking_lot's
/// `Condvar::wait(&mut guard)` signature over std's move-based one.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside Condvar::wait")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside Condvar::wait")
    }
}

impl<'a, T: fmt::Debug + ?Sized> fmt::Debug for MutexGuard<'a, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable usable with [`MutexGuard`] (parking_lot signature:
/// the guard is passed by `&mut`, not by value).
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self.inner.wait_timeout(g, timeout).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Block until notified or the deadline instant passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if deadline <= now {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, deadline - now)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Reader-writer lock (parking_lot-flavoured: no poisoning).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock. `const` so it can back `static` items.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Try to acquire a read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(RwLockReadGuard { inner: p.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(RwLockWriteGuard { inner: p.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: fmt::Debug + ?Sized> fmt::Debug for RwLockReadGuard<'a, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<'a, T: fmt::Debug + ?Sized> fmt::Debug for RwLockWriteGuard<'a, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let m = Arc::new(Mutex::new(0u32));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let t = std::thread::spawn(move || {
            let mut g = m2.lock();
            *g = 7;
            cv2.notify_all();
        });
        let mut g = m.lock();
        while *g != 7 {
            let r = cv.wait_until(&mut g, Instant::now() + Duration::from_secs(5));
            assert!(!r.timed_out(), "worker should have signalled");
        }
        t.join().unwrap();
        assert_eq!(*g, 7);
    }

    #[test]
    fn wait_until_past_deadline_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_until(&mut g, Instant::now() - Duration::from_millis(1)).timed_out());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1, *r2);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn poison_is_swallowed() {
        let m = Arc::new(Mutex::new(1u8));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 1, "lock usable after a panicking holder");
    }
}
