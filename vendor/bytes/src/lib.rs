//! Offline stand-in for the `bytes` crate (see `vendor/README.md`).
//!
//! [`Bytes`] is a cheaply-clonable immutable byte buffer (`Arc<[u8]>`
//! underneath, so clones are refcount bumps like the real crate, though
//! without zero-copy slicing). [`BytesMut`] is a growable buffer over
//! `Vec<u8>`. [`Buf`]/[`BufMut`] carry only the little-endian integer and
//! slice accessors the storage record codec uses.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Bytes
// ---------------------------------------------------------------------------

/// Immutable, cheaply clonable byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// The empty buffer.
    pub fn new() -> Bytes {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Wrap a static slice (no copy in the real crate; one here).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes { data: Arc::from(s) }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes { data: Arc::from(s) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out to a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        Bytes::from(b.buf)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &**self == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &**self == *other
    }
}

// ---------------------------------------------------------------------------
// BytesMut
// ---------------------------------------------------------------------------

/// Growable byte buffer.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Drop the contents, keeping capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Reserve room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.buf.len())
    }
}

// ---------------------------------------------------------------------------
// Buf / BufMut
// ---------------------------------------------------------------------------

/// Read cursor over a byte source (the consuming subset: little-endian
/// integers plus `advance`). Implemented for `&[u8]`, which the record
/// decoder uses directly.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Consume a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut a = [0u8; 2];
        a.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(a)
    }

    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut a = [0u8; 4];
        a.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(a)
    }

    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut a = [0u8; 8];
        a.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(a)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor over a growable byte sink (the appending subset:
/// little-endian integers plus `put_slice`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints_and_slices() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u16_le(0x1234);
        w.put_u32_le(0xdead_beef);
        w.put_u64_le(0x0102_0304_0506_0708);
        w.put_slice(b"tail");
        let frozen = w.clone().freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(r.remaining(), 4);
        r.advance(1);
        assert_eq!(r, b"ail");
    }

    #[test]
    fn bytes_clone_is_shallow() {
        let b = Bytes::copy_from_slice(b"abc");
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&*c, b"abc");
        assert_eq!(Bytes::from_static(b"x").len(), 1);
        assert!(Bytes::new().is_empty());
    }
}
