//! Offline stand-in for the `crossbeam` crate (see `vendor/README.md`).
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is provided —
//! the subset this repo uses (the DCP hub fan-out and test helpers). The
//! implementation delegates to `std::sync::mpsc`, whose `Sender` is `Clone`
//! and whose `Receiver` supports `try_recv` / `recv_timeout`, which covers
//! every call site.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// All senders dropped and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Timed out with no message.
        Timeout,
        /// All senders dropped and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Send a message; fails only when every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Blocking receive with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Iterate over received messages until all senders hang up.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_clone_recv() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            drop(tx2);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(9).is_err());
        }
    }
}
