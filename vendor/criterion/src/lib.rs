//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! A minimal wall-clock benchmark harness with the API subset this repo's
//! benches use: `Criterion::benchmark_group`, `bench_function`,
//! `Bencher::iter`/`iter_batched`, `Throughput`, `BatchSize`, and the
//! `criterion_group!`/`criterion_main!` macros. No statistics beyond
//! mean-of-samples, no HTML reports, no comparison to baselines — it times
//! the closure, prints one line per benchmark, and moves on. Good enough to
//! keep `cargo bench` working and spot order-of-magnitude regressions.

use std::time::{Duration, Instant};

/// How batched inputs are sized in [`Bencher::iter_batched`]. Only used to
/// pick an iteration count here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup outputs; many iterations per sample.
    SmallInput,
    /// Large setup outputs; fewer iterations per sample.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Units for per-iteration throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Respect the CLI filter arg cargo-bench passes through
        // (`cargo bench -- <filter>`); flags like --bench are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
            sample_size: 30,
            filter,
        }
    }
}

impl Criterion {
    /// Set the target measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    /// Set the warm-up time per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Criterion {
        self.warm_up_time = t;
        self
    }

    /// Set the number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), throughput: None }
    }
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Report per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Run one benchmark.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            warm_up: self.criterion.warm_up_time,
            measurement: self.criterion.measurement_time,
            samples: self.criterion.sample_size,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some(r) => {
                let per_iter = r.total.as_secs_f64() / r.iters.max(1) as f64;
                let rate = self.throughput.map(|t| match t {
                    Throughput::Bytes(n) => {
                        format!(", {:.1} MiB/s", n as f64 / per_iter / (1 << 20) as f64)
                    }
                    Throughput::Elements(n) => format!(", {:.0} elem/s", n as f64 / per_iter),
                });
                println!("{full:<48} {}{}", fmt_time(per_iter), rate.unwrap_or_default());
            }
            None => println!("{full:<48} (no measurement)"),
        }
    }

    /// End the group (formatting hook in the real crate; no-op here).
    pub fn finish(self) {}
}

struct Measurement {
    total: Duration,
    iters: u64,
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    result: Option<Measurement>,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up while calibrating iterations-per-sample.
        let warm_start = Instant::now();
        let mut calib_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            calib_iters += 1;
        }
        let per_iter = self.warm_up.as_secs_f64() / calib_iters.max(1) as f64;
        let per_sample =
            ((self.measurement.as_secs_f64() / self.samples as f64 / per_iter.max(1e-9)) as u64)
                .max(1);

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            total += t0.elapsed();
            iters += per_sample;
        }
        self.result = Some(Measurement { total, iters });
    }

    /// Time `routine` over inputs produced by `setup`, excluding setup time
    /// where the batch size allows (`PerIteration` times each call alone).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        size: BatchSize,
    ) {
        let batch: u64 = match size {
            BatchSize::PerIteration => 1,
            BatchSize::SmallInput => 16,
            BatchSize::LargeInput => 4,
        };
        // Short warm-up: one batch.
        for _ in 0..batch {
            let input = setup();
            black_box(routine(input));
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            total += t0.elapsed();
            iters += batch;
        }
        self.result = Some(Measurement { total, iters });
    }
}

/// Opaque value barrier to keep the optimizer from deleting benchmarked
/// work (same contract as `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:>10.1} ns/iter", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:>10.2} µs/iter", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:>10.2} ms/iter", secs * 1e3)
    } else {
        format!("{secs:>10.2} s/iter")
    }
}

/// Declare a benchmark group: either the `name/config/targets` form or the
/// plain list-of-functions form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_smoke() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5))
            .sample_size(3);
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(1));
        let mut hits = 0u64;
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::PerIteration)
        });
        hits += 1;
        g.finish();
        assert_eq!(hits, 1);
    }
}
