//! Offline stand-in for the `rand` crate, 0.8 API (see `vendor/README.md`).
//!
//! Provides `RngCore`, the `Rng` extension trait (`gen`, `gen_range`,
//! `gen_bool`, `fill_bytes`), `SeedableRng::seed_from_u64`, and
//! `rngs::StdRng` backed by xoshiro256** seeded through splitmix64. Not
//! statistically identical to upstream `StdRng` (different algorithm, so
//! fixed-seed sequences differ), but a high-quality deterministic PRNG with
//! the same API shape — every use in this repo treats seeds as opaque.

/// Core random-number source.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Values producible from raw random bits (the `Standard` distribution of
/// the real crate, folded into one trait because this shim has no
/// distribution zoo).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience extension methods, available on every [`RngCore`]
/// (including `dyn RngCore`).
pub trait Rng: RngCore {
    /// Draw a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Named generator types.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic PRNG: xoshiro256** with splitmix64
    /// seeding. Fast, passes BigCrush, and — unlike the real `StdRng` — no
    /// stability promise is needed because seeds are opaque in this repo.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let u = r.gen_range(0u64..3);
            assert!(u < 3);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn dyn_rng_core_usable() {
        let mut r = StdRng::seed_from_u64(1);
        let dynr: &mut dyn RngCore = &mut r;
        let x: f64 = dynr.gen();
        assert!((0.0..1.0).contains(&x));
        let v = dynr.gen_range(0u64..5);
        assert!(v < 5);
        assert!(matches!(dynr.gen_bool(1.0), true));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0), "13 random bytes shouldn't be all zero");
    }
}
