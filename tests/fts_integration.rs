//! Full-text search (§6.1.3) over the cluster: DCP-fed inverted index,
//! consistent search, survival across failover.

use std::time::Duration;

use couchbase_repro::{ClusterConfig, CouchbaseCluster, FtsIndexDef, NodeId, SearchQuery, Value};

fn article(title: &str, body: &str) -> Value {
    Value::object([("title", Value::from(title)), ("body", Value::from(body))])
}

#[test]
fn fts_end_to_end_with_consistency() {
    let cluster = CouchbaseCluster::homogeneous(2, ClusterConfig::for_test(32, 0));
    let bucket = cluster.create_bucket("wiki").unwrap();
    cluster
        .create_fts_index(FtsIndexDef {
            name: "articles".to_string(),
            keyspace: "wiki".to_string(),
            fields: None,
        })
        .unwrap();

    bucket
        .upsert("a1", article("Distributed Systems", "Consensus and replication protocols"))
        .unwrap();
    bucket
        .upsert("a2", article("Database Internals", "B-tree indexes and replication logs"))
        .unwrap();
    bucket.upsert("a3", article("Cooking 101", "How to make pasta")).unwrap();

    // Consistent search sees every acknowledged write immediately.
    let hits = cluster
        .fts_search("wiki", "articles", &SearchQuery::Term("replication".to_string()), 0, true)
        .unwrap();
    assert_eq!(hits.len(), 2);

    // Phrase search.
    let hits = cluster
        .fts_search(
            "wiki",
            "articles",
            &SearchQuery::Phrase(vec!["make".to_string(), "pasta".to_string()]),
            0,
            true,
        )
        .unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].doc_id, "a3");

    // Prefix search.
    let hits = cluster
        .fts_search("wiki", "articles", &SearchQuery::Prefix("repli".to_string()), 0, true)
        .unwrap();
    assert_eq!(hits.len(), 2);

    // Update re-indexes; delete removes.
    bucket.upsert("a3", article("Baking", "Bread and butter")).unwrap();
    let hits = cluster
        .fts_search("wiki", "articles", &SearchQuery::Term("pasta".to_string()), 0, true)
        .unwrap();
    assert!(hits.is_empty(), "old terms gone after update");
    bucket.remove("a2", couchbase_repro::Cas::WILDCARD).unwrap();
    let hits = cluster
        .fts_search("wiki", "articles", &SearchQuery::Term("replication".to_string()), 0, true)
        .unwrap();
    assert_eq!(hits.len(), 1, "deleted doc removed from the index");
}

#[test]
fn fts_survives_failover() {
    let cluster = CouchbaseCluster::homogeneous(3, ClusterConfig::for_test(32, 1));
    let bucket = cluster.create_bucket("wiki").unwrap();
    cluster
        .create_fts_index(FtsIndexDef {
            name: "s".to_string(),
            keyspace: "wiki".to_string(),
            fields: None,
        })
        .unwrap();
    for i in 0..30 {
        bucket.upsert(&format!("doc{i}"), article("shared term", &format!("body {i}"))).unwrap();
    }
    let hits =
        cluster.fts_search("wiki", "s", &SearchQuery::Term("shared".to_string()), 0, true).unwrap();
    assert_eq!(hits.len(), 30);

    // Kill + fail over a node; the pump re-opens streams from the new
    // actives and searches keep working (including for new writes).
    cluster.kill_node(NodeId(1)).unwrap();
    cluster.failover(NodeId(1)).unwrap();
    // Let replication/sequence state settle before relying on seqno vector.
    std::thread::sleep(Duration::from_millis(100));
    bucket.upsert("post-failover", article("shared too", "fresh")).unwrap();
    let hits =
        cluster.fts_search("wiki", "s", &SearchQuery::Term("shared".to_string()), 0, true).unwrap();
    assert_eq!(hits.len(), 31, "index keeps up through failover");
}

#[test]
fn fts_errors() {
    let cluster = CouchbaseCluster::single_node();
    cluster.create_bucket("b").unwrap();
    assert!(
        cluster
            .create_fts_index(FtsIndexDef {
                name: "x".to_string(),
                keyspace: "missing".to_string(),
                fields: None
            })
            .is_err(),
        "bucket must exist"
    );
    assert!(cluster
        .fts_search("b", "nope", &SearchQuery::Term("t".to_string()), 0, false)
        .is_err());
}
