//! Acceptance test for causal end-to-end tracing (DESIGN.md §17): one
//! durable write against a 2-node, 1-replica cluster must produce exactly
//! one trace that spans the client, the active node's engine, the
//! replication pump, the replica's apply, and both WAL group commits —
//! stitched by a single trace id with intact parent links, across thread
//! and node boundaries.

use std::sync::Arc;
use std::time::Duration;

use cbs_cluster::{Cluster, ClusterConfig, ClusterDatastore, Durability, SmartClient};
use cbs_common::{Cas, SeqNo};
use cbs_json::Value;
use cbs_kv::MutateMode;
use cbs_n1ql::QueryOptions;

/// Spans recorded by the replication pump and the replica's flusher land
/// asynchronously after the client call returns; poll until a completed
/// trace satisfies `cond`.
fn wait_for_stitched_trace(
    store: &Arc<cbs_obs::TraceStore>,
    cond: impl Fn(&cbs_obs::CompletedTrace) -> bool,
) -> cbs_obs::CompletedTrace {
    for _ in 0..1_000 {
        if let Some(t) = store.completed_traces().into_iter().find(&cond) {
            return t;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("no matching trace within 2s; traces: {:#?}", store.completed_traces());
}

#[test]
fn durable_write_yields_one_stitched_trace() {
    let cluster = Cluster::homogeneous(2, ClusterConfig::for_test(8, 1));
    cluster.create_bucket("default").expect("create bucket");
    let store = Arc::clone(cluster.trace_store());
    store.set_sample_every(1);

    let client = SmartClient::connect(Arc::clone(&cluster), "default").expect("connect");

    // Warm-up, deliberately untraced: drive one mutation through the
    // active engine directly — no client entry point, no ambient context,
    // so no trace is minted — and wait for the replica to apply it. A
    // replica ack proves the pump built its live DCP streams (all
    // vBuckets are built in the same pump iteration), so the traced write
    // below rides the live stream and carries its TraceContext; the
    // stream-open backfill rebuilds items from the cache, which cannot
    // carry one.
    let warm_vb = client.vb_for_key("stitch::warm");
    let map = cluster.map("default").expect("map");
    let engine_of = |id: cbs_common::NodeId| {
        cluster
            .nodes()
            .into_iter()
            .find(|n| n.id() == id)
            .expect("node")
            .engine("default")
            .expect("engine")
    };
    engine_of(map.active_node(warm_vb))
        .set("stitch::warm", Value::int(0), MutateMode::Upsert, Cas::WILDCARD, 0)
        .expect("warm-up set");
    let replica = engine_of(map.replica_nodes(warm_vb)[0]);
    for _ in 0..1_000 {
        if replica.high_seqno(warm_vb) >= SeqNo(1) {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(replica.high_seqno(warm_vb) >= SeqNo(1), "replica never applied the warm-up");

    let durability = Durability { replicate_to: 1, persist_to_master: true };
    client
        .upsert_durable("stitch::k", Value::int(7), durability, Duration::from_secs(5))
        .expect("durable write");

    let want = [
        "client.kv.durable",
        "client.kv.upsert",
        "kv.engine.set",
        "cluster.replication.deliver",
        "kv.engine.replica_apply",
        "kv.flusher.wal_commit",
        "client.kv.observe",
    ];
    // Both flushers (active + replica) must have attributed their WAL
    // group commit to this trace.
    let trace = wait_for_stitched_trace(&store, |t| {
        want.iter().all(|s| t.span(s).is_some())
            && t.spans.iter().filter(|s| s.name == "kv.flusher.wal_commit").count() == 2
    });

    // Exactly one trace: the single durable op is the only entry point
    // that minted a root, and everything downstream joined it.
    let traces = store.completed_traces();
    assert_eq!(traces.len(), 1, "expected exactly one trace: {traces:#?}");
    assert_eq!(trace.root_name, "client.kv.durable");
    assert!(!trace.failed);
    assert_eq!(trace.dropped_spans, 0);

    // Every span shares the root's trace id by construction (the store
    // files spans under the slot the id hashes to); parent links must
    // reconstruct the causal chain across client -> active -> replica.
    let apply = trace.span("kv.engine.replica_apply").expect("replica apply span");
    assert_eq!(
        trace.path_to_root(apply).expect("intact parent links"),
        vec![
            "client.kv.durable",
            "client.kv.upsert",
            "kv.engine.set",
            "cluster.replication.deliver",
            "kv.engine.replica_apply",
        ],
        "replica apply must chain through the pump and the active engine"
    );
    let set = trace.span("kv.engine.set").expect("engine set span");
    assert_eq!(
        trace.path_to_root(set).expect("intact parent links"),
        vec!["client.kv.durable", "client.kv.upsert", "kv.engine.set"],
    );
    let observe = trace.span("client.kv.observe").expect("observe span");
    assert_eq!(
        trace.path_to_root(observe).expect("intact parent links"),
        vec!["client.kv.durable", "client.kv.observe"],
    );

    // Both nodes flushed the mutation: the active's WAL commit and the
    // replica's carry the same trace on different lanes.
    let lanes = trace.lanes();
    let node_lanes: Vec<_> = lanes.iter().filter(|l| l.starts_with('n')).collect();
    assert!(node_lanes.len() >= 2, "trace must cross >= 2 node lanes: {lanes:?}");
    let wal_lanes: Vec<_> = trace
        .spans
        .iter()
        .filter(|s| s.name == "kv.flusher.wal_commit")
        .map(|s| s.lane.to_string())
        .collect();
    assert_eq!(wal_lanes.len(), 2, "active + replica WAL commits: {wal_lanes:?}");
    assert_ne!(wal_lanes[0], wal_lanes[1], "WAL commits on distinct nodes");

    // The render is operator-readable: one line per span, indented.
    let rendered = trace.render();
    for span in want {
        assert!(rendered.contains(span), "render lacks {span}:\n{rendered}");
    }
}

/// The same data is queryable: `system:completed_traces` serves the trace
/// store, `system:events` serves the flight recorder's merged timeline.
#[test]
fn trace_and_event_catalogs_are_queryable() {
    let cluster = Cluster::homogeneous(3, ClusterConfig::for_test(8, 1));
    cluster.create_bucket("default").expect("create bucket");
    cluster.trace_store().set_sample_every(1);
    let client = SmartClient::connect(Arc::clone(&cluster), "default").expect("connect");
    let durability = Durability { replicate_to: 1, persist_to_master: false };
    client
        .upsert_durable("cat::k", Value::int(1), durability, Duration::from_secs(5))
        .expect("durable write");

    // Land topology lifecycle events on the flight recorder.
    let victim = cluster.nodes().into_iter().find(|n| n.id().0 == 2).expect("node 2");
    cluster.kill_node(victim.id()).expect("kill");
    cluster.failover(victim.id()).expect("failover");

    // `SELECT *` nests each catalog document under its keyspace alias
    // (`{"completed_traces": {...}}`); peel that off to reach the fields.
    let doc =
        |row: &'_ Value, alias: &str| -> Value { row.get_field(alias).unwrap_or(row).clone() };
    let ds = ClusterDatastore::new(Arc::clone(&cluster));
    let traces =
        ds.query("SELECT * FROM system:completed_traces", &QueryOptions::default()).expect("query");
    assert!(!traces.rows.is_empty(), "trace catalog is empty");
    let roots: Vec<String> = traces
        .rows
        .iter()
        .filter_map(|r| {
            doc(r, "completed_traces").get_field("root").and_then(Value::as_str).map(String::from)
        })
        .collect();
    assert!(roots.iter().any(|r| r == "client.kv.durable"), "durable trace not served: {roots:?}");

    let events = ds.query("SELECT * FROM system:events", &QueryOptions::default()).expect("query");
    let names: Vec<String> = events
        .rows
        .iter()
        .filter_map(|r| {
            doc(r, "events").get_field("event").and_then(Value::as_str).map(String::from)
        })
        .collect();
    for expected in ["cluster.events.node_killed", "cluster.events.failover"] {
        assert!(
            names.iter().any(|n| n == expected),
            "{expected} missing from system:events: {names:?}"
        );
    }
}
