//! Property-based cross-component equivalence tests.
//!
//! The load-bearing invariant of the whole indexing architecture: for any
//! data set and any (sargable) predicate, an IndexScan-based plan must
//! return exactly the rows a PrimaryScan-based evaluation returns — the
//! index is an optimization, never a semantic change. Likewise the
//! cluster-backed datastore must agree with the in-memory reference
//! datastore on the same documents and queries.

use proptest::prelude::*;

use couchbase_repro::{ClusterConfig, CouchbaseCluster, QueryOptions, Value};

fn arb_doc() -> impl Strategy<Value = Value> {
    (0i64..100, "[a-c]{1,3}", prop::collection::vec(0i64..5, 0..4), any::<bool>()).prop_map(
        |(age, city, nums, active)| {
            Value::object([
                ("age", Value::int(age)),
                ("city", Value::from(city)),
                ("nums", Value::Array(nums.into_iter().map(Value::int).collect())),
                ("active", Value::Bool(active)),
            ])
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// IndexScan == PrimaryScan for random datasets and range predicates.
    #[test]
    fn index_scan_equals_primary_scan(
        docs in prop::collection::vec(arb_doc(), 1..40),
        low in 0i64..100,
        width in 1i64..50,
    ) {
        let cluster = CouchbaseCluster::homogeneous(2, ClusterConfig::for_test(16, 0));
        let bucket = cluster.create_bucket("b").unwrap();
        for (i, d) in docs.iter().enumerate() {
            bucket.upsert(&format!("d{i:03}"), d.clone()).unwrap();
        }
        let opts = QueryOptions::default().request_plus();
        // Primary-scan evaluation (no secondary index exists yet).
        cluster.query("CREATE PRIMARY INDEX ON b", &QueryOptions::default()).unwrap();
        let high = low + width;
        let q = format!(
            "SELECT META().id AS id, age FROM b WHERE age >= {low} AND age < {high} ORDER BY id"
        );
        let via_primary = cluster.query(&q, &opts).unwrap().rows;
        // Now add the index; the planner must switch to IndexScan.
        cluster.query("CREATE INDEX by_age ON b(age)", &QueryOptions::default()).unwrap();
        let explain = cluster.query(&format!("EXPLAIN {q}"), &opts).unwrap().rows;
        prop_assert!(
            explain[0].to_json_string().contains("IndexScan"),
            "planner must use the index: {}",
            explain[0]
        );
        let via_index = cluster.query(&q, &opts).unwrap().rows;
        prop_assert_eq!(via_primary, via_index);
    }

    /// The cluster datastore agrees with the single-process reference
    /// implementation on identical documents + queries.
    #[test]
    fn cluster_agrees_with_memory_reference(
        docs in prop::collection::vec(arb_doc(), 1..30),
        pivot in 0i64..100,
    ) {
        use cbs_n1ql::{Datastore, MemoryDatastore};
        let cluster = CouchbaseCluster::homogeneous(3, ClusterConfig::for_test(16, 0));
        let bucket = cluster.create_bucket("b").unwrap();
        let mem = MemoryDatastore::new();
        mem.create_keyspace("b");
        for (i, d) in docs.iter().enumerate() {
            let key = format!("d{i:03}");
            bucket.upsert(&key, d.clone()).unwrap();
            Datastore::upsert(&mem, "b", &key, d.clone()).unwrap();
        }
        cluster.query("CREATE PRIMARY INDEX ON b", &QueryOptions::default()).unwrap();
        Datastore::create_index(&mem, cbs_index::IndexDef::primary("#primary", "b")).unwrap();
        for q in [
            format!("SELECT META().id AS id FROM b WHERE age > {pivot} ORDER BY id"),
            "SELECT city, COUNT(*) AS n FROM b GROUP BY city ORDER BY city".to_string(),
            "SELECT DISTINCT active FROM b ORDER BY active".to_string(),
            "SELECT META().id AS id FROM b WHERE ANY x IN nums SATISFIES x = 3 END ORDER BY id"
                .to_string(),
            format!("SELECT SUM(age) AS s, MIN(age) AS lo, MAX(age) AS hi FROM b WHERE age != {pivot}"),
        ] {
            let a = cluster.query(&q, &QueryOptions::default().request_plus()).unwrap().rows;
            let b2 = cbs_n1ql::query(&mem, &q, &QueryOptions::default()).unwrap().rows;
            prop_assert_eq!(a, b2, "query: {}", q);
        }
    }
}

#[test]
fn view_reduce_equals_manual_aggregation() {
    use couchbase_repro::{DesignDoc, MapExpr, MapFn, Reducer, Stale, ViewDef, ViewQuery};
    let cluster = CouchbaseCluster::homogeneous(2, ClusterConfig::for_test(32, 0));
    let bucket = cluster.create_bucket("b").unwrap();
    let mut expected_sum = 0i64;
    for i in 0..200i64 {
        let amount = (i * 37) % 101;
        expected_sum += amount;
        bucket.upsert(&format!("d{i}"), Value::object([("amount", Value::int(amount))])).unwrap();
    }
    cluster
        .create_design_doc(
            "b",
            DesignDoc {
                name: "dd".to_string(),
                views: vec![(
                    "sum".to_string(),
                    ViewDef {
                        map: MapFn {
                            when: vec![],
                            key: MapExpr::DocId,
                            value: Some(MapExpr::field("amount")),
                        },
                        reduce: Some(Reducer::Sum),
                    },
                )],
            },
        )
        .unwrap();
    let res = cluster
        .view_query(
            "b",
            "dd",
            "sum",
            &ViewQuery { stale: Stale::False, reduce: true, ..Default::default() },
        )
        .unwrap();
    assert_eq!(res.rows[0].value, Value::int(expected_sum));
}
