//! Plan-cache and cost-based-optimizer integration tests: PREPARE/EXECUTE
//! through the cluster, epoch invalidation on DDL and flush, the
//! `system:prepareds` catalog, and the `n1ql.plancache.*` metrics that
//! make the cache's hit rate observable.

use couchbase_repro::{ClusterConfig, CouchbaseCluster, QueryOptions, Value};

fn seeded_cluster(nodes: usize, docs: i64) -> std::sync::Arc<CouchbaseCluster> {
    let cluster = CouchbaseCluster::homogeneous(nodes, ClusterConfig::for_test(32, 0));
    let bucket = cluster.create_bucket("default").unwrap();
    for i in 0..docs {
        bucket
            .upsert(
                &format!("user{i:05}"),
                Value::object([
                    ("name", Value::from(format!("user-{i}"))),
                    ("age", Value::int(i % 100)),
                ]),
            )
            .unwrap();
    }
    cluster.query("CREATE PRIMARY INDEX ON default", &QueryOptions::default()).unwrap();
    cluster
}

/// The check.sh `plancache-smoke` stage: prepare once, execute hot, and
/// require a ≥99% plan-cache hit rate plus a populated `system:prepareds`
/// row — the fig16 fast path end to end, in well under 10 seconds.
#[test]
fn plancache_smoke() {
    let cluster = seeded_cluster(2, 300);
    cluster
        .query(
            "PREPARE smoke FROM SELECT meta().id AS id FROM default \
             WHERE meta().id >= $start LIMIT $lim",
            &QueryOptions::default(),
        )
        .unwrap();
    for i in 0..100 {
        let opts = QueryOptions::with_named_args([
            ("start", Value::from(format!("user{:05}", i * 3))),
            ("lim", Value::int(10)),
        ]);
        let r = cluster.query("EXECUTE smoke", &opts).unwrap();
        assert!(!r.rows.is_empty(), "scan from user{:05} returned nothing", i * 3);
        assert_eq!(r.rows.len().min(10), r.rows.len(), "LIMIT respected");
    }

    // Hit rate ≥ 99% after warmup: PREPARE itself inserts the plan, so
    // every one of the 100 EXECUTEs is a cache hit.
    let stats = cluster.stats();
    let hits = stats.counter("n1ql.plancache.hits");
    let misses = stats.counter("n1ql.plancache.misses");
    assert!(hits >= 100, "expected >=100 plan-cache hits, got {hits}");
    let rate = hits as f64 / (hits + misses).max(1) as f64;
    assert!(rate >= 0.99, "plan-cache hit rate {rate:.3} below 0.99 (hits={hits} misses={misses})");

    // The prepared statement is visible in system:prepareds with its use
    // count and timing.
    let rows =
        cluster.query("SELECT * FROM system:prepareds", &QueryOptions::default()).unwrap().rows;
    let text = rows.iter().map(|r| r.to_json_string()).collect::<String>();
    assert!(text.contains("smoke"), "system:prepareds missing entry: {text}");
    assert!(text.contains("\"uses\":100"), "expected 100 uses in {text}");

    // And the snapshot surface carries the same rows for cbstats.
    assert!(stats.prepareds.iter().any(|(name, _)| name == "smoke"));
}

/// CREATE INDEX and DROP INDEX bump the keyspace epoch: cached plans that
/// depend on the keyspace are evicted, and the next EXECUTE re-plans
/// against the surviving indexes instead of scanning a dead one.
#[test]
fn ddl_invalidates_cached_plans() {
    let cluster = seeded_cluster(1, 200);
    cluster
        .query(
            "PREPARE by_age FROM SELECT name FROM default WHERE age > $min",
            &QueryOptions::default(),
        )
        .unwrap();
    let opts = QueryOptions::with_named_args([("min", Value::int(97))]);
    let before = cluster.query("EXECUTE by_age", &opts).unwrap().rows.len();
    assert_eq!(before, 4, "ages 98,99 across two hundred docs");

    let inv0 = cluster.stats().counter("n1ql.plancache.invalidations");
    cluster.query("CREATE INDEX age_idx ON default(age)", &QueryOptions::default()).unwrap();
    let inv1 = cluster.stats().counter("n1ql.plancache.invalidations");
    assert!(inv1 > inv0, "CREATE INDEX must evict cached plans for the keyspace");

    // Re-planned under the new index: same rows.
    assert_eq!(cluster.query("EXECUTE by_age", &opts).unwrap().rows.len(), before);
    let plan = cluster
        .query("EXPLAIN SELECT name FROM default WHERE age > 97", &QueryOptions::default())
        .unwrap()
        .rows[0]
        .to_json_string();
    assert!(plan.contains("age_idx"), "selective predicate should use age_idx: {plan}");

    // Drop the index out from under the cached plan: the next EXECUTE
    // must re-plan (primary scan), not scan the dead index.
    cluster.query("DROP INDEX default.age_idx", &QueryOptions::default()).unwrap();
    let inv2 = cluster.stats().counter("n1ql.plancache.invalidations");
    assert!(inv2 > inv1, "DROP INDEX must evict cached plans for the keyspace");
    assert_eq!(cluster.query("EXECUTE by_age", &opts).unwrap().rows.len(), before);
}

/// EXPLAIN prints the optimizer's estimates next to the chosen access
/// path, fed by live index-service statistics: a selective range keeps
/// the secondary index, an unselective one falls back to PrimaryScan.
#[test]
fn explain_costs_from_cluster_statistics() {
    let cluster = seeded_cluster(1, 200);
    cluster.query("CREATE INDEX age_idx ON default(age)", &QueryOptions::default()).unwrap();

    let selective = cluster
        .query("EXPLAIN SELECT name FROM default WHERE age > 97", &QueryOptions::default())
        .unwrap()
        .rows[0]
        .to_json_string();
    assert!(selective.contains("IndexScan"), "selective range should keep age_idx: {selective}");
    for field in ["\"cost\"", "\"cardinality\"", "\"statsUsed\":true"] {
        assert!(selective.contains(field), "missing {field} in {selective}");
    }

    let unselective = cluster
        .query("EXPLAIN SELECT name FROM default WHERE age >= 0", &QueryOptions::default())
        .unwrap()
        .rows[0]
        .to_json_string();
    assert!(
        unselective.contains("PrimaryScan"),
        "all-rows range should price out to a primary scan: {unselective}"
    );
}

/// Flushing a keyspace bumps its epoch: plans cached against the old
/// contents are evicted and statistics are recollected, exercised at the
/// embedded (MemoryDatastore) level where flush exists.
#[test]
fn flush_evicts_plans_and_stats() {
    use cbs_n1ql::{query, MemoryDatastore};
    let ds = MemoryDatastore::new();
    ds.create_keyspace("b");
    ds.load("b", (0..50).map(|i| (format!("k{i:03}"), Value::object([("n", Value::int(i))]))));
    query(&ds, "CREATE PRIMARY INDEX ON b", &QueryOptions::default()).unwrap();

    query(&ds, "PREPARE all_b FROM SELECT n FROM b", &QueryOptions::default()).unwrap();
    assert_eq!(query(&ds, "EXECUTE all_b", &QueryOptions::default()).unwrap().rows.len(), 50);

    let cache = cbs_n1ql::Datastore::plan_cache(&ds).unwrap();
    let inv0 = cache.invalidations();
    ds.flush_keyspace("b").unwrap();
    assert!(cache.invalidations() > inv0, "flush must evict plans depending on the keyspace");

    // Re-planned against the empty keyspace; statistics recollect lazily
    // (empty → unavailable → rule-based planning) and the query still runs.
    assert_eq!(query(&ds, "EXECUTE all_b", &QueryOptions::default()).unwrap().rows.len(), 0);
    ds.load("b", [("k1".to_string(), Value::object([("n", Value::int(1))]))]);
    assert_eq!(query(&ds, "EXECUTE all_b", &QueryOptions::default()).unwrap().rows.len(), 1);
}

/// EXECUTE of an unknown name and PREPARE name reuse behave sanely.
#[test]
fn prepared_lifecycle_edges() {
    let cluster = seeded_cluster(1, 50);
    let err = cluster.query("EXECUTE nope", &QueryOptions::default()).unwrap_err();
    assert!(err.to_string().contains("no such prepared statement"), "got: {err}");

    cluster
        .query(
            "PREPARE p FROM SELECT meta().id AS id FROM default LIMIT 1",
            &QueryOptions::default(),
        )
        .unwrap();
    cluster.query("EXECUTE p", &QueryOptions::default()).unwrap();
    // Re-preparing the same name replaces the entry and resets counters.
    cluster
        .query(
            "PREPARE p FROM SELECT meta().id AS id FROM default LIMIT 2",
            &QueryOptions::default(),
        )
        .unwrap();
    let r = cluster.query("EXECUTE p", &QueryOptions::default()).unwrap();
    assert_eq!(r.rows.len(), 2, "EXECUTE must run the re-prepared statement");
}
