//! Consistency observability end to end: the replication pumps' lag
//! tables feed `system:replication` / `system:staleness` N1QL catalogs,
//! the `ClusterStats` snapshot, and the Prometheus export — all live,
//! while a workload is running.

use std::time::Duration;

use couchbase_repro::{ClusterConfig, CouchbaseCluster, QueryOptions, Value};

/// `SELECT *` nests each catalog document under its keyspace alias
/// (`{"replication": {...}}`); peel that off to reach the fields.
fn doc<'a>(row: &'a Value, alias: &str) -> &'a Value {
    row.get_field(alias).unwrap_or(row)
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = std::time::Instant::now() + timeout;
    while std::time::Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

/// Acceptance: `SELECT * FROM system:replication` returns live
/// per-vBucket lag rows during an active workload.
#[test]
fn system_replication_returns_live_rows_during_workload() {
    const VBS: u16 = 16;
    let cluster = CouchbaseCluster::homogeneous(3, ClusterConfig::for_test(VBS, 1));
    let bucket = cluster.create_bucket("app").unwrap();

    // Keep mutations flowing while we poll the catalog, so the rows we
    // read describe an active system, not a quiesced one.
    let opts = QueryOptions::default();
    let mut i = 0u64;
    let ok = wait_until(Duration::from_secs(10), || {
        for _ in 0..20 {
            bucket.upsert(&format!("doc::{i}"), Value::object([("i", Value::from(i))])).unwrap();
            i += 1;
        }
        let rows = cluster.query("SELECT * FROM system:replication", &opts).unwrap().rows;
        // One replica per vBucket: the catalog is fully populated once the
        // pump has sampled every slot.
        rows.len() == VBS as usize
    });
    assert!(ok, "system:replication never reported all {VBS} replica slots");

    let rows = cluster.query("SELECT * FROM system:replication", &opts).unwrap().rows;
    assert_eq!(rows.len(), VBS as usize);
    for row in &rows {
        let row = doc(row, "replication");
        assert_eq!(row.get_field("bucket"), Some(&Value::from("app")));
        let vb = row.get_field("vb").and_then(Value::as_i64).expect("vb field");
        assert!((0..VBS as i64).contains(&vb), "vb out of range: {vb}");
        let replica = row.get_field("replica").unwrap().to_json_string();
        assert!(replica.starts_with("\"n"), "replica not a node name: {replica}");
        assert!(row.get_field("lag").is_some(), "lag missing: {}", row.to_json_string());
        assert!(row.get_field("ageCycles").is_some());
    }
}

/// `system:staleness` summarizes each bucket: the pump's logical clock
/// advances and the windowed lag-age distribution is exposed with
/// percentiles in pump cycles.
#[test]
fn system_staleness_summarizes_per_bucket() {
    let cluster = CouchbaseCluster::homogeneous(2, ClusterConfig::for_test(8, 1));
    let bucket = cluster.create_bucket("app").unwrap();
    for i in 0..100 {
        bucket.upsert(&format!("k{i}"), Value::from(i)).unwrap();
    }

    let opts = QueryOptions::default();
    let ok = wait_until(Duration::from_secs(10), || {
        let rows = cluster.query("SELECT * FROM system:staleness", &opts).unwrap().rows;
        rows.len() == 1
            && doc(&rows[0], "staleness")
                .get_field("cycles")
                .and_then(Value::as_i64)
                .is_some_and(|c| c > 0)
    });
    assert!(ok, "system:staleness never reported a cycling pump");

    let rows = cluster.query("SELECT * FROM system:staleness", &opts).unwrap().rows;
    let row = doc(&rows[0], "staleness");
    assert_eq!(row.get_field("bucket"), Some(&Value::from("app")));
    for field in [
        "laggingVbuckets",
        "lagMax",
        "lagTotal",
        "windowEpoch",
        "lagAgeEpisodes",
        "lagAgeP50Cycles",
        "lagAgeP95Cycles",
        "lagAgeP99Cycles",
    ] {
        assert!(row.get_field(field).is_some(), "{field} missing: {}", row.to_json_string());
    }
}

/// The same lag rows ride the `ClusterStats` snapshot (cbstats surface)
/// and the Prometheus exposition.
#[test]
fn cluster_stats_and_prometheus_carry_replication_lag() {
    let cluster = CouchbaseCluster::homogeneous(3, ClusterConfig::for_test(8, 1));
    let bucket = cluster.create_bucket("app").unwrap();
    for i in 0..50 {
        bucket.upsert(&format!("k{i}"), Value::from(i)).unwrap();
    }

    let ok = wait_until(Duration::from_secs(10), || !cluster.stats().replication.is_empty());
    assert!(ok, "ClusterStats.replication never populated");

    let stats = cluster.stats();
    assert!(stats.replication.iter().all(|r| r.bucket == "app"));
    let per_vb = stats.per_vb_replica_lag();
    assert!(!per_vb.is_empty(), "per-vBucket lag table empty");
    assert!(per_vb.iter().all(|(b, vb, max, mean)| b == "app" && *vb < 8 && *mean <= *max as f64));

    // The pump's logical clock is a counter, so the merged snapshot sees it.
    assert!(stats.counter("cluster.replication.cycles") > 0);

    let text = stats.prometheus();
    for needle in [
        "# TYPE cbs_cluster_replication_lag_max gauge",
        "# TYPE cbs_cluster_replication_cycles counter",
        "cbs_cluster_replication_lag_age_window",
        "cbs_cluster_replication_lag_age_window_epoch",
    ] {
        assert!(text.contains(needle), "prometheus export missing {needle}");
    }

    // The lag table is reachable directly for operator tooling.
    let lag = cluster.inner().replication_lag("app").expect("lag table for app");
    assert!(lag.cycle() > 0);
    assert_eq!(lag.bucket(), "app");
}
