//! Cross-crate integration tests: the full system lifecycle through the
//! public SDK — load, query, index, view, failover, rebalance, XDCR.

use std::time::Duration;

use couchbase_repro::{
    Cas, ClusterConfig, CouchbaseCluster, DesignDoc, Error, KeyFilter, MapExpr, MapFn, NodeId,
    QueryOptions, Reducer, ServiceSet, Stale, Value, ViewDef, ViewQuery,
};

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = std::time::Instant::now() + timeout;
    while std::time::Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

fn user(i: i64) -> Value {
    Value::object([
        ("doc_type", Value::from("user")),
        ("name", Value::from(format!("user-{i:04}"))),
        ("age", Value::int(18 + (i % 50))),
        ("city", Value::from(["SF", "NY", "LA"][(i % 3) as usize])),
        (
            "tags",
            Value::Array(if i % 2 == 0 {
                vec![Value::from("even")]
            } else {
                vec![Value::from("odd")]
            }),
        ),
    ])
}

#[test]
fn full_lifecycle_load_query_failover_rebalance() {
    let cluster = CouchbaseCluster::homogeneous(3, ClusterConfig::for_test(64, 1));
    let bucket = cluster.create_bucket("app").unwrap();

    // Load.
    const N: i64 = 300;
    for i in 0..N {
        bucket.upsert(&format!("user::{i}"), user(i)).unwrap();
    }

    // Index + query.
    let opts = QueryOptions::default();
    let rp = QueryOptions::default().request_plus();
    cluster.query("CREATE INDEX by_age ON app(age)", &opts).unwrap();
    cluster.query("CREATE PRIMARY INDEX ON app", &opts).unwrap();
    let res = cluster.query("SELECT COUNT(*) AS n FROM app WHERE age >= 18", &rp).unwrap();
    assert_eq!(res.rows[0].get_field("n"), Some(&Value::int(N)));

    // Views.
    cluster
        .create_design_doc(
            "app",
            DesignDoc {
                name: "dd".to_string(),
                views: vec![(
                    "count_by_city".to_string(),
                    ViewDef {
                        map: MapFn { when: vec![], key: MapExpr::field("city"), value: None },
                        reduce: Some(Reducer::Count),
                    },
                )],
            },
        )
        .unwrap();
    let v = cluster
        .view_query(
            "app",
            "dd",
            "count_by_city",
            &ViewQuery { stale: Stale::False, reduce: true, group: true, ..Default::default() },
        )
        .unwrap();
    assert_eq!(v.rows.len(), 3, "three cities");
    let total: i64 = v.rows.iter().map(|r| r.value.as_i64().unwrap()).sum();
    assert_eq!(total, N);

    // Failover.
    cluster.kill_node(NodeId(2)).unwrap();
    let promoted = cluster.failover(NodeId(2)).unwrap();
    assert!(promoted > 0);
    for i in 0..N {
        assert!(bucket.get(&format!("user::{i}")).is_ok(), "user::{i} after failover");
    }

    // Rebalance the survivors, then add a node and rebalance again.
    cluster.rebalance(&[]).unwrap();
    cluster.add_node(ServiceSet::all()).unwrap();
    cluster.rebalance(&[]).unwrap();
    for i in 0..N {
        assert!(bucket.get(&format!("user::{i}")).is_ok(), "user::{i} after rebalances");
    }

    // Queries still work on the reshaped cluster (the GSI pump re-attaches
    // to the moved actives).
    bucket.upsert("user::fresh", user(999)).unwrap();
    let res = cluster.query("SELECT COUNT(*) AS n FROM app WHERE age >= 18", &rp).unwrap();
    assert_eq!(res.rows[0].get_field("n"), Some(&Value::int(N + 1)));
}

#[test]
fn read_your_own_writes_semantics() {
    // §3.2.3: request_plus "is important to applications that require
    // consistent reads or read-your-own-write semantics."
    let cluster = CouchbaseCluster::homogeneous(2, ClusterConfig::for_test(64, 0));
    let bucket = cluster.create_bucket("app").unwrap();
    cluster.query("CREATE INDEX by_n ON app(n)", &QueryOptions::default()).unwrap();

    for round in 0..25 {
        bucket.upsert(&format!("doc{round}"), Value::object([("n", Value::int(round))])).unwrap();
        // Immediately query for the write through the index.
        let res = cluster
            .query(
                &format!("SELECT META().id AS id FROM app WHERE n = {round}"),
                &QueryOptions::default().request_plus(),
            )
            .unwrap();
        assert_eq!(res.rows.len(), 1, "round {round}: RYOW must hold under request_plus");
    }
}

#[test]
fn durability_survives_orderly_failover() {
    // A write acknowledged with replicate_to=1 must survive losing the
    // active node.
    let cluster = CouchbaseCluster::homogeneous(3, ClusterConfig::for_test(64, 1));
    let bucket = cluster.create_bucket("app").unwrap();
    let m = bucket
        .upsert_durable(
            "precious",
            Value::from("do not lose"),
            couchbase_repro::Durability { replicate_to: 1, persist_to_master: false },
            Duration::from_secs(10),
        )
        .unwrap();
    // Kill whichever node is active for that vBucket.
    let owner = cluster.inner().map("app").unwrap().active_node(m.vb);
    cluster.kill_node(owner).unwrap();
    cluster.failover(owner).unwrap();
    let got = bucket.get("precious").unwrap();
    assert_eq!(got.value, Value::from("do not lose"));
}

#[test]
fn xdcr_bidirectional_bulk_convergence() {
    let east = CouchbaseCluster::homogeneous(2, ClusterConfig::for_test(32, 0));
    let west = CouchbaseCluster::homogeneous(2, ClusterConfig::for_test(64, 0));
    east.create_bucket("geo").unwrap();
    west.create_bucket("geo").unwrap();
    let e2w = east.replicate_to(&west, "geo", None).unwrap();
    let w2e = west.replicate_to(&east, "geo", None).unwrap();

    let eb = east.bucket("geo").unwrap();
    let wb = west.bucket("geo").unwrap();
    // Interleaved writes to disjoint keys on both sides.
    for i in 0..40 {
        eb.upsert(&format!("east::{i}"), Value::int(i)).unwrap();
        wb.upsert(&format!("west::{i}"), Value::int(i)).unwrap();
    }
    assert!(wait_until(Duration::from_secs(15), || {
        (0..40)
            .all(|i| eb.get(&format!("west::{i}")).is_ok() && wb.get(&format!("east::{i}")).is_ok())
    }));
    // Conflicting writes on the same key converge to the same winner.
    // West writes first: whatever the links ship in between, east's two
    // updates end at a strictly higher revision count than west's one,
    // so most-updates-wins resolution is deterministic here. (Writing
    // east first is racy: the link can ship east-1 to west before
    // west's upsert, which then lands at rev 2 and ties east.)
    wb.upsert("both", Value::from("west-1")).unwrap();
    eb.upsert("both", Value::from("east-1")).unwrap();
    eb.upsert("both", Value::from("east-2")).unwrap();
    assert!(wait_until(Duration::from_secs(15), || {
        let a = eb.get("both").map(|g| g.value).ok();
        let b = wb.get("both").map(|g| g.value).ok();
        a.is_some() && a == b
    }));
    assert_eq!(eb.get("both").unwrap().value, Value::from("east-2"), "2 updates beat 1");
    e2w.shutdown();
    w2e.shutdown();
}

#[test]
fn xdcr_filtered_by_key_regex() {
    let src = CouchbaseCluster::homogeneous(1, ClusterConfig::for_test(32, 0));
    let dst = CouchbaseCluster::homogeneous(1, ClusterConfig::for_test(32, 0));
    src.create_bucket("b").unwrap();
    dst.create_bucket("b").unwrap();
    let link =
        src.replicate_to(&dst, "b", Some(KeyFilter::compile("^order::[0-9]+$").unwrap())).unwrap();
    let sb = src.bucket("b").unwrap();
    let db = dst.bucket("b").unwrap();
    sb.upsert("order::1", Value::int(1)).unwrap();
    sb.upsert("order::abc", Value::int(2)).unwrap();
    sb.upsert("user::1", Value::int(3)).unwrap();
    assert!(wait_until(Duration::from_secs(10), || db.get("order::1").is_ok()));
    std::thread::sleep(Duration::from_millis(100));
    assert!(db.get("order::abc").is_err());
    assert!(db.get("user::1").is_err());
    link.shutdown();
}

#[test]
fn paper_worked_examples_end_to_end() {
    // The USE KEYS examples of §3.2.3 verbatim.
    let cluster = CouchbaseCluster::single_node();
    let bucket = cluster.create_bucket("profiles").unwrap();
    bucket
        .upsert("acme-uuid-1234-5678", Value::object([("company", Value::from("acme"))]))
        .unwrap();
    bucket
        .upsert("roadster-uuid-4321-8765", Value::object([("company", Value::from("roadster"))]))
        .unwrap();
    let opts = QueryOptions::default();
    let res =
        cluster.query(r#"SELECT * FROM profiles USE KEYS "acme-uuid-1234-5678""#, &opts).unwrap();
    assert_eq!(res.rows.len(), 1);
    let res = cluster
        .query(
            r#"SELECT * FROM profiles USE KEYS ["acme-uuid-1234-5678", "roadster-uuid-4321-8765"]"#,
            &opts,
        )
        .unwrap();
    assert_eq!(res.rows.len(), 2);

    // §3.3.4's selective index (age > 21).
    bucket.upsert("kid", Value::object([("age", Value::int(12))])).unwrap();
    bucket.upsert("adult", Value::object([("age", Value::int(30))])).unwrap();
    cluster.query("CREATE INDEX over21 ON profiles(age) WHERE age > 21 USING GSI", &opts).unwrap();
    let res = cluster
        .query(
            "SELECT META().id AS id FROM profiles WHERE age > 21",
            &QueryOptions::default().request_plus(),
        )
        .unwrap();
    assert_eq!(res.rows.len(), 1);
    assert_eq!(res.rows[0].get_field("id"), Some(&Value::from("adult")));
}

#[test]
fn error_paths_are_clean() {
    let cluster = CouchbaseCluster::single_node();
    let bucket = cluster.create_bucket("b").unwrap();
    assert!(matches!(bucket.get("absent"), Err(Error::KeyNotFound(_))));
    assert!(matches!(bucket.remove("absent", Cas::WILDCARD), Err(Error::KeyNotFound(_))));
    assert!(cluster.create_bucket("b").is_err(), "duplicate bucket");
    assert!(cluster.query("SELECT FROM", &QueryOptions::default()).is_err());
    assert!(cluster.query("SELECT * FROM missing_bucket", &QueryOptions::default()).is_err());
    assert!(cluster.failover(NodeId(0)).is_err(), "cannot fail over a live node");
    assert!(cluster.view_query("b", "nope", "v", &ViewQuery::default()).is_err());
}
