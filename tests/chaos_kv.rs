//! Chaos integration suite: seeded workloads × fault schedules against
//! 3–4 node clusters, checked for per-key consistency, seqno
//! monotonicity, durable-write survival and replica convergence.
//!
//! Every test fails with a printed seed and a one-line replay command
//! (see `cbs_chaos::expect_clean`). `CHAOS_SEEDS=n` widens the sweep
//! test; `CHAOS_SEED=…` re-points any run.

use std::time::Duration;

use cbs_chaos::{expect_clean, ChaosConfig, Profile};

fn cfg(seed: u64, schedule: &str) -> ChaosConfig {
    let mut c = ChaosConfig::new(seed);
    c.schedule = schedule.to_string();
    c.settle = Duration::from_secs(20);
    c
}

/// Fixed-seed fast path for `scripts/check.sh chaos-smoke` (<10s).
#[test]
fn chaos_smoke() {
    let mut c = cfg(0x5EED, "drop-delay-failover").from_env();
    c.ops = 150;
    expect_clean(&c);
}

// ---------------------------------------------------------------------
// The eight seeded fault schedules (distinct seeds, distinct shapes).
// ---------------------------------------------------------------------

/// Message drops + delays + duplicates with a mid-run failover, the
/// canonical lossy-network scenario.
#[test]
fn chaos_drop_delay_failover() {
    expect_clean(&cfg(101, "drop-delay-failover"));
}

/// A node crashes while a background rebalance is mid-flight.
#[test]
fn chaos_crash_during_rebalance() {
    let mut c = cfg(202, "crash-during-rebalance");
    c.nodes = 4;
    expect_clean(&c);
}

/// Two full kill → failover → revive → rebalance cycles in one run.
#[test]
fn chaos_kill_revive_storm() {
    let mut c = cfg(303, "kill-revive-storm");
    c.ops = 600;
    expect_clean(&c);
}

/// Cluster growth under load: two added nodes, three rebalances (one in
/// the background), no crashes.
#[test]
fn chaos_rebalance_churn() {
    expect_clean(&cfg(404, "rebalance-churn"));
}

/// Failover with no revive: the cluster runs degraded until the heal
/// phase re-integrates the node.
#[test]
fn chaos_failover_no_revive() {
    expect_clean(&cfg(505, "failover-no-revive"));
}

/// Reordering pressure: heavy delays and duplicates, no drops, against
/// the storm schedule.
#[test]
fn chaos_jittery_storm() {
    let mut c = cfg(606, "kill-revive-storm");
    c.profile = Profile::Jittery;
    c.ops = 600;
    expect_clean(&c);
}

/// Double-replica cluster: failover must promote the most caught-up
/// replica and the surviving sibling must converge to the new lineage.
#[test]
fn chaos_two_replicas_failover() {
    let mut c = cfg(707, "drop-delay-failover");
    c.nodes = 4;
    c.replicas = 2;
    expect_clean(&c);
}

/// Seeded schedule: the template and its event timings derive from the
/// seed itself.
#[test]
fn chaos_seeded_schedule() {
    expect_clean(&cfg(808, "seeded"));
}

/// Seed sweep, widened by `CHAOS_SEEDS=n` (default 2): distinct seeds
/// explore distinct fault patterns *and* distinct seeded schedules.
#[test]
fn chaos_seed_sweep() {
    let n: u64 = std::env::var("CHAOS_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(2);
    for seed in 0..n {
        let mut c = cfg(0xBA5E + seed * 7919, "seeded");
        c.ops = 250;
        expect_clean(&c);
    }
}
