//! Transaction integration suite: the Block-STM coordinator end to end
//! against live clusters — `Cluster::transact`, the chaos workload with
//! snapshot transactions under transport faults, the
//! `system:transactions` catalog, and the `txn.batch.*` metrics.
//!
//! A chaos artifact: every decision here is a pure function of the
//! printed seed (`TXN_CHAOS_SEED=…` re-points the smoke run and the
//! failure report carries a one-line replay command).

use std::sync::Arc;

use cbs_chaos::{run_txn_chaos, TxnChaosConfig};
use cbs_json::Value;
use cbs_txn::{Transact, TxnClient, TxnCtx, TxnFn};
use couchbase_repro::{ClusterConfig, CouchbaseCluster, Error, QueryOptions};

/// Fixed-seed fast path for `scripts/check.sh txn-smoke` (<10s): the
/// genuine coordinator under a jittery transport, with interleaved
/// snapshot transactions, checked for atomicity and fractured reads.
#[test]
fn txn_chaos_smoke() {
    let outcome = run_txn_chaos(&TxnChaosConfig::new(0x7A12).from_env());
    assert!(outcome.violations.is_empty(), "{}", outcome.report());
    assert!(outcome.commits > 0, "nothing committed: {}", outcome.report());
    println!("{}", outcome.report());
}

/// `Cluster::transact` moves value between two documents atomically: the
/// commit lands both writes, and an aborted transaction (the closure's
/// own error) leaves the bucket untouched and surfaces the error
/// verbatim.
#[test]
fn transact_commits_and_aborts_across_documents() {
    let cluster = CouchbaseCluster::homogeneous(2, ClusterConfig::for_test(8, 1));
    let bucket = cluster.create_bucket("bank").unwrap();
    bucket.upsert("acct::a", Value::object([("balance", Value::from(100))])).unwrap();
    bucket.upsert("acct::b", Value::object([("balance", Value::from(10))])).unwrap();

    let transfer = |amount: i64| {
        move |ctx: &mut TxnCtx<'_>| {
            let read = |ctx: &mut TxnCtx<'_>, key: &str| -> couchbase_repro::Result<i64> {
                Ok(ctx
                    .get(key)?
                    .and_then(|d| d.as_value().get_field("balance").and_then(Value::as_i64))
                    .unwrap_or(0))
            };
            let a = read(ctx, "acct::a")?;
            let b = read(ctx, "acct::b")?;
            if a < amount {
                return Err(Error::Eval(format!("insufficient funds: {a} < {amount}")));
            }
            ctx.replace("acct::a", Value::object([("balance", Value::from(a - amount))]))?;
            ctx.replace("acct::b", Value::object([("balance", Value::from(b + amount))]))?;
            Ok(())
        }
    };

    // Commit: both sides move.
    cluster.inner().transact("bank", transfer(30)).unwrap();
    let balance = |key: &str| {
        bucket.get(key).unwrap().value.get_field("balance").and_then(Value::as_i64).unwrap()
    };
    assert_eq!(balance("acct::a"), 70);
    assert_eq!(balance("acct::b"), 40);

    // Abort: the closure's error comes back verbatim and neither
    // document changes — no torn transfer.
    let err = cluster.inner().transact("bank", transfer(1000)).unwrap_err();
    assert!(
        err.to_string().contains("insufficient funds"),
        "abort error not propagated verbatim: {err}"
    );
    assert_eq!(balance("acct::a"), 70);
    assert_eq!(balance("acct::b"), 40);
}

/// The observability surface is live after a parallel batch: the
/// `system:transactions` catalog serves per-transaction rows through
/// N1QL and the coordinator's `txn.batch.*` metrics land on the
/// cluster's query registry.
#[test]
fn txn_catalog_and_metrics_are_live() {
    let cluster = CouchbaseCluster::homogeneous(2, ClusterConfig::for_test(8, 1));
    cluster.create_bucket("app").unwrap();

    let coordinator = TxnClient::connect(cluster.inner(), "app").unwrap().with_workers(4);
    let txns: Vec<TxnFn> = (0..6)
        .map(|i| {
            Arc::new(move |ctx: &mut TxnCtx<'_>| {
                let v = ctx.get("counter")?.and_then(|d| d.as_value().as_i64()).unwrap_or(0);
                ctx.upsert("counter", Value::from(v + 1));
                if i == 5 {
                    return Err(Error::Eval("deliberate bail".into()));
                }
                Ok(())
            }) as TxnFn
        })
        .collect();
    let report = coordinator.run_batch(&txns).unwrap();
    assert_eq!(report.committed(), 5, "five of six transactions commit");
    assert_eq!(report.aborted(), 1);

    // The catalog serves one row per finished transaction, with the
    // batch id, commit/abort state and incarnation count.
    let rows =
        cluster.query("SELECT * FROM system:transactions", &QueryOptions::default()).unwrap().rows;
    assert_eq!(rows.len(), 6, "one catalog row per transaction");
    let state_of = |row: &Value| {
        let doc = row.get_field("transactions").cloned().unwrap_or_else(|| row.clone());
        doc.get_field("state").unwrap().to_json_string()
    };
    let committed = rows.iter().filter(|r| state_of(r) == "\"committed\"").count();
    let aborted = rows.iter().filter(|r| state_of(r) == "\"aborted\"").count();
    assert_eq!((committed, aborted), (5, 1), "catalog states mirror the report");

    // Coordinator metrics land on the cluster's query registry.
    let snap = cluster.inner().query_registry().snapshot();
    assert_eq!(snap.counters.get("txn.batch.commits"), Some(&5));
    assert_eq!(snap.counters.get("txn.batch.aborts"), Some(&1));
    assert!(snap.counters.contains_key("txn.batch.re_executions"));
    let latency = snap.histograms.get("txn.batch.latency").expect("latency histogram");
    assert!(latency.count() >= 1, "batch latency recorded");
}
