#!/usr/bin/env bash
# Pre-PR verification gate (DESIGN.md §9). Run from anywhere in the repo.
#
#   scripts/check.sh                 # full gate: static analysis + models + tests
#   scripts/check.sh --quick         # static analysis + concurrency models only
#   scripts/check.sh chaos-smoke     # fixed-seed chaos smoke run only (<10s)
#   scripts/check.sh plancache-smoke # prepared-statement fast path only (<10s)
#   scripts/check.sh staleness-smoke # measure-mode staleness replay only (<30s)
#   scripts/check.sh txn-smoke       # serializability replay + txn chaos (<15s)
#   scripts/check.sh trace-smoke     # stitched causal trace + Chrome export (<60s)
#
# Stages:
#   1. cargo fmt --check          formatting (rustfmt.toml)
#   2. cargo xtask lint           repo-invariant lint (hot-path unwraps,
#                                 std::sync, guard-across-I/O, wall-clock)
#   3. cargo xtask analyze        whole-workspace interprocedural lock-order
#                                 / guard-across-blocking / raw-lock static
#                                 analysis (SARIF at target/analyze.sarif)
#   4. cargo clippy -D warnings   workspace lint walls ([workspace.lints])
#   5. model suite                lock-order detector + flusher and txn
#                                 protocol models (exhaustive interleaving
#                                 search)
#   6. chaos + txn smoke          fixed-seed fault-injection run (<10s)
#                                 against a 3-node cluster, plus the
#                                 serializability replay and transactional
#                                 chaos run; seed sweeps honor CHAOS_SEEDS=n
#   7. full test suite            (skipped with --quick)
#   8. TSan / Miri subset         best-effort: requires nightly toolchain
#                                 with rust-src / miri; skipped gracefully
#                                 when the components are not installed.
set -u

cd "$(dirname "$0")/.." || exit 2

QUICK=0
[ "${1:-}" = "--quick" ] && QUICK=1

FAILED=0
run() {
    local label="$1"
    shift
    echo "==> $label"
    if "$@"; then
        echo "    ok"
    else
        echo "    FAILED: $*"
        FAILED=1
    fi
}

# Deterministic fault-injection smoke: one fixed-seed chaos run (seeded
# message drop/delay/dup + failover) through the full history checker.
# Finishes in well under 10s; failures print a one-line replay command.
# The full suite's seed sweep widens with CHAOS_SEEDS=n (default 2).
chaos_smoke() {
    cargo test --quiet --test chaos_kv chaos_smoke -- --exact
}

# Prepared-statement fast-path smoke: PREPARE once, EXECUTE hot against a
# live cluster, and require a ≥99% plan-cache hit rate plus a populated
# `system:prepareds` catalog — the fig16 YCSB-E fast path end to end.
plancache_smoke() {
    cargo test --quiet --test plancache plancache_smoke -- --exact
}

# Transaction smoke: the serializability battery at a pinned seed (the
# parallel scheduler and the deterministic wave driver must both match
# the serial witness, bit-stably), then the transactional chaos run —
# snapshot transactions under a jittery transport through the
# fractured-read / txn-atomicity checker. Failures print `TXN_SEED=…` /
# `TXN_CHAOS_SEED=…` one-line replay commands.
txn_smoke() {
    TXN_SEED=48879 cargo test --quiet -p cbs-txn --test serializability \
        txn_seed_replay -- --exact || return 1
    cargo test --quiet --test chaos_txn txn_chaos_smoke -- --exact
}

# Staleness smoke: replay the seeded fault plans in chaos measure mode
# and require populated BENCH_staleness_*.json artifacts whose bytes are
# stable across a replay — same seed, same file, bit for bit.
staleness_smoke() {
    local out snap
    out="$(CHAOS_RUNS=16 cargo run --quiet -p cbs-bench --bin staleness 2>/dev/null)" || return 1
    echo "$out" | grep -q "failover@" || { echo "    no failover phase in the table"; return 1; }
    for p in quiet lossy jittery; do
        grep -q '"bench": "staleness"' "BENCH_staleness_$p.json" 2>/dev/null \
            || { echo "    BENCH_staleness_$p.json missing or malformed"; return 1; }
        grep -q '"phases": \[' "BENCH_staleness_$p.json" \
            || { echo "    BENCH_staleness_$p.json has no phase breakdown"; return 1; }
    done
    snap="$(mktemp)"
    cp BENCH_staleness_lossy.json "$snap"
    CHAOS_RUNS=16 cargo run --quiet -p cbs-bench --bin staleness >/dev/null 2>&1 \
        || { rm -f "$snap"; return 1; }
    if ! cmp -s "$snap" BENCH_staleness_lossy.json; then
        echo "    replay is not byte-identical (determinism regression)"
        rm -f "$snap"
        return 1
    fi
    rm -f "$snap"
}

# Causal-tracing smoke (DESIGN.md §17): drive cbstats with full sampling
# and a Chrome export, require the rendered stitched trace of one durable
# replicated write (client lane -> active engine -> replication deliver ->
# replica apply -> WAL commit), populated trace/event catalogs, and a
# structurally valid trace_event JSON with >= 2 node lanes
# (`cargo xtask validate-trace`).
trace_smoke() {
    local out
    out="$(CBS_NODES=2 CBS_RECORDS=500 CBS_OPS=100 CBS_TRACE_SAMPLE=1 \
        CBS_TRACE_EXPORT=target/trace.json \
        cargo run --quiet --release --example cbstats 2>/dev/null)" || return 1
    echo "$out" | grep -q "completed traces" || { echo "    missing trace table"; return 1; }
    for span in client.kv.durable kv.engine.set cluster.replication.deliver \
        kv.engine.replica_apply kv.flusher.wal_commit; do
        echo "$out" | grep -q "$span" || { echo "    stitched trace lacks $span"; return 1; }
    done
    echo "$out" | grep -Eq "system:completed_traces via N1QL: [1-9]" \
        || { echo "    trace catalog empty"; return 1; }
    echo "$out" | grep -Eq "system:events via N1QL: [1-9]" \
        || { echo "    flight recorder catalog empty"; return 1; }
    [ -s target/trace.json ] || { echo "    target/trace.json missing"; return 1; }
    cargo run --quiet -p xtask -- validate-trace target/trace.json \
        || { echo "    trace export failed structural validation"; return 1; }
}

if [ "${1:-}" = "trace-smoke" ]; then
    run "trace smoke (stitched causal trace + export)" trace_smoke
    if [ "$FAILED" -ne 0 ]; then
        echo "check.sh trace-smoke: FAILED"
        exit 1
    fi
    echo "check.sh trace-smoke: passed"
    exit 0
fi

if [ "${1:-}" = "chaos-smoke" ]; then
    run "chaos smoke (fixed seed)" chaos_smoke
    if [ "$FAILED" -ne 0 ]; then
        echo "check.sh chaos-smoke: FAILED"
        exit 1
    fi
    echo "check.sh chaos-smoke: passed"
    exit 0
fi

if [ "${1:-}" = "plancache-smoke" ]; then
    run "plancache smoke (PREPARE/EXECUTE hit rate)" plancache_smoke
    if [ "$FAILED" -ne 0 ]; then
        echo "check.sh plancache-smoke: FAILED"
        exit 1
    fi
    echo "check.sh plancache-smoke: passed"
    exit 0
fi

if [ "${1:-}" = "txn-smoke" ]; then
    run "txn smoke (serializability replay + txn chaos)" txn_smoke
    if [ "$FAILED" -ne 0 ]; then
        echo "check.sh txn-smoke: FAILED"
        exit 1
    fi
    echo "check.sh txn-smoke: passed"
    exit 0
fi

if [ "${1:-}" = "staleness-smoke" ]; then
    run "staleness smoke (measure-mode replay)" staleness_smoke
    if [ "$FAILED" -ne 0 ]; then
        echo "check.sh staleness-smoke: FAILED"
        exit 1
    fi
    echo "check.sh staleness-smoke: passed"
    exit 0
fi

run "fmt" cargo fmt --all --check
run "xtask lint" cargo xtask lint
run "xtask analyze (interprocedural)" cargo xtask analyze --sarif target/analyze.sarif
run "clippy (deny warnings)" cargo clippy --workspace --all-targets --quiet -- -D warnings

# Concurrency model suite: the lock-order detector's own tests, the
# mini-loom explorer, and the exhaustive flusher-protocol models that pin
# the PR-1 race fixes (checkpoint/drain, shutdown wakeup, failed-drain).
run "lock-order + explorer (cbs-common)" cargo test --quiet -p cbs-common --features lock-order
run "flusher protocol models" cargo test --quiet -p cbs-kv --test flusher_models
run "txn protocol models" cargo test --quiet -p cbs-txn --test txn_models
run "chaos smoke (fixed seed)" chaos_smoke
run "plancache smoke (PREPARE/EXECUTE hit rate)" plancache_smoke
run "txn smoke (serializability replay + txn chaos)" txn_smoke

if [ "$QUICK" -eq 1 ]; then
    if [ "$FAILED" -ne 0 ]; then
        echo "check.sh --quick: FAILED"
        exit 1
    fi
    echo "check.sh --quick: all stages passed"
    exit 0
fi

run "full test suite" cargo test --quiet --workspace

# Observability smoke: drive the cbstats example against a 2-node cluster
# and assert the operator surface comes out populated — per-service op
# counters, non-degenerate percentiles, and at least one slow-op span tree.
cbstats_smoke() {
    local out
    out="$(CBS_NODES=2 CBS_RECORDS=500 CBS_OPS=100 \
        cargo run --quiet --release --example cbstats 2>/dev/null)" || return 1
    echo "$out" | grep -q "kv.engine.sets" || { echo "    missing kv op counters"; return 1; }
    echo "$out" | grep -q "n1ql.query.requests" || { echo "    missing n1ql counters"; return 1; }
    echo "$out" | grep -q "n1ql.query.execute" || { echo "    missing slow-op span tree"; return 1; }
    echo "$out" | grep -q "p50 .* < p99 .*: true" || { echo "    degenerate percentiles"; return 1; }
    echo "$out" | grep -q "replica lag (per vBucket" || { echo "    missing replica lag table"; return 1; }
    echo "$out" | grep -Eq "system:replication via N1QL: [1-9]" \
        || { echo "    replication catalog empty"; return 1; }
}
run "cbstats smoke (2-node cluster)" cbstats_smoke

# Profiling smoke: the same cbstats run must show the query-profiling
# surface — a PROFILE plan with per-operator stats and phase rollups, the
# per-phase histograms, and a non-empty N1QL-queryable request log.
obs_profile_smoke() {
    local out
    out="$(CBS_NODES=2 CBS_RECORDS=500 CBS_OPS=100 \
        cargo run --quiet --release --example cbstats 2>/dev/null)" || return 1
    echo "$out" | grep -q '"#itemsOut"' || { echo "    missing operator #stats"; return 1; }
    echo "$out" | grep -q '"phaseTimes"' || { echo "    missing phase rollups"; return 1; }
    echo "$out" | grep -q "n1ql.phase.plan" || { echo "    missing phase histograms"; return 1; }
    echo "$out" | grep -Eq "system:completed_requests via N1QL: [1-9]" \
        || { echo "    request log empty or not queryable"; return 1; }
}
run "obs-profile smoke (PROFILE + request log)" obs_profile_smoke
run "trace smoke (stitched causal trace + export)" trace_smoke
run "staleness smoke (measure-mode replay)" staleness_smoke

# --- best-effort dynamic analysis -----------------------------------------
# ThreadSanitizer needs nightly + rust-src (to build an instrumented std);
# Miri needs the miri component. Both are optional: absence is a skip, not
# a failure, so the gate stays runnable on minimal toolchains.
has_component() {
    rustup component list --toolchain nightly 2>/dev/null \
        | grep -q "^$1.*(installed)"
}

if rustup run nightly rustc --version >/dev/null 2>&1 && has_component rust-src; then
    run "TSan (flusher tests)" env RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -Zbuild-std --target x86_64-unknown-linux-gnu \
        --quiet -p cbs-kv --test flusher_models
else
    echo "==> TSan: skipped (needs nightly toolchain with rust-src)"
fi

if has_component miri; then
    run "Miri (cbs-common)" cargo +nightly miri test --quiet -p cbs-common
else
    echo "==> Miri: skipped (miri component not installed)"
fi

if [ "$FAILED" -ne 0 ]; then
    echo "check.sh: FAILED"
    exit 1
fi
echo "check.sh: all stages passed"
