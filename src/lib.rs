//! Root facade: re-exports the public SDK (`cbs_core`).
pub use cbs_core::*;
